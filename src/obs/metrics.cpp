#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace lph {
namespace obs {

void MetricsRegistry::add(const std::string& name, double delta) {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Histogram& h = histograms_[name];
    if (h.count == 0) {
        h.min = value;
        h.max = value;
    } else {
        h.min = std::min(h.min, value);
        h.max = std::max(h.max, value);
    }
    ++h.count;
    h.sum += value;
}

void MetricsRegistry::absorb(const std::string& prefix, const MetricList& values) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : values) {
        gauges_[prefix + name] = value;
    }
}

void MetricsRegistry::accumulate(const std::string& prefix,
                                 const MetricList& values) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : values) {
        counters_[prefix + name] += value;
    }
}

MetricList MetricsRegistry::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    MetricList out;
    out.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
    for (const auto& [name, value] : counters_) {
        out.emplace_back(name, value);
    }
    for (const auto& [name, value] : gauges_) {
        out.emplace_back(name, value);
    }
    for (const auto& [name, h] : histograms_) {
        out.emplace_back(name + ".count", static_cast<double>(h.count));
        out.emplace_back(name + ".sum", h.sum);
        out.emplace_back(name + ".min", h.min);
        out.emplace_back(name + ".max", h.max);
        out.emplace_back(name + ".avg",
                         h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string MetricsRegistry::snapshot_json() const {
    const MetricList metrics = snapshot();
    std::string out = "{\n";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", metrics[i].second);
        out += "  \"" + json_escape(metrics[i].first) + "\": " + buf;
        out += i + 1 < metrics.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
}

void MetricsRegistry::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace obs
} // namespace lph
