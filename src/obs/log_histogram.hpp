#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lph {
namespace obs {

/// Fixed-layout log2-bucketed histogram, mergeable across threads and
/// processes.
///
/// Layout (HdrHistogram-style log-linear): values are floored to integers and
/// land in one of 252 buckets — four linear buckets for 0..3, then 62 powers
/// of two each split into 4 sub-buckets by the two bits below the leading
/// bit.  Bucket boundaries are a pure function of the index, so two
/// histograms recorded by different workers merge by adding bucket counts
/// (bit-exact on the counts, associative and commutative).  Relative
/// quantile error is bounded by one sub-bucket, i.e. <= 25%.
///
/// The struct is plain data with no locking; MetricsRegistry guards it with
/// its own mutex, and cross-process merging happens on serialized snapshots.
class LogHistogram {
public:
    static constexpr std::size_t kSubBuckets = 4;   // per power-of-two group
    static constexpr std::size_t kGroups = 62;      // exponents 2..63
    static constexpr std::size_t kBucketCount = kSubBuckets + kGroups * kSubBuckets;

    /// Records one sample.  Negative values clamp to zero; the exact value
    /// still feeds sum/min/max, only the bucket index is quantized.
    void record(double value);

    /// Adds `other` into this histogram.  Associative and commutative:
    /// bucket counts and totals are plain sums, min/max combine.
    void merge(const LogHistogram& other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }
    double avg() const {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /// Quantile estimate for q in [0,1]: the midpoint of the bucket holding
    /// the ceil(q*count)-th sample, clamped to the observed [min, max].
    /// Returns 0 for an empty histogram.
    double percentile(double q) const;

    std::uint64_t bucket(std::size_t index) const {
        return index < kBucketCount ? buckets_[index] : 0;
    }

    /// Non-empty buckets as (index, count) pairs, ascending by index — the
    /// sparse form used on the wire.
    std::vector<std::pair<std::size_t, std::uint64_t>> nonzero_buckets() const;

    /// Maps a value to its bucket index (total order: larger values never map
    /// to smaller indices).
    static std::size_t bucket_index(double value);

    /// Inclusive lower edge of a bucket.
    static double bucket_lower(std::size_t index);

    /// Exclusive upper edge of a bucket (lower edge of the next one; +inf
    /// past the last).
    static double bucket_upper(std::size_t index);

    /// Appends the wire form:
    /// {"count":N,"sum":S,"min":m,"max":M,"buckets":[[index,count],...]}
    /// Counts are exact integers; sum/min/max print with enough digits to
    /// round-trip.
    void append_json(std::string& out) const;

    /// Rebuilds from a parsed wire form: adds `n` samples to bucket `index`
    /// (and to the total count) without touching sum/min/max.  Pair with
    /// set_summary().  Out-of-range indices are ignored.
    void inject(std::size_t index, std::uint64_t n);

    /// Restores the exact-value summary after inject() calls.  Merging the
    /// result with another histogram behaves identically to merging the
    /// originals.
    void set_summary(double sum, double min, double max);

private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t buckets_[kBucketCount] = {};
};

} // namespace obs
} // namespace lph
