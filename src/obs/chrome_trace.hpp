#pragma once

#include "obs/trace.hpp"

#include <string>

namespace lph {
namespace obs {

/// Renders the tracer's current contents as a Chrome trace-event JSON
/// document ({"traceEvents": [...]}), loadable in Perfetto or
/// chrome://tracing.  One track per thread that ever emitted a span
/// (named `worker-<tid>`), duration spans as balanced B/E event pairs with
/// per-track monotone timestamps, instant events as `i` events.
///
/// Span intervals recorded by RAII guards on one thread are properly nested
/// by construction; the renderer still clamps a child's end to its parent's
/// (guarding against clock jitter and torn ring records) so the output is
/// *always* balanced and monotone — `scripts/trace_lint.py` checks exactly
/// these invariants.
std::string chrome_trace_json(const std::vector<Tracer::ThreadTrack>& tracks);

/// Snapshot the global tracer and render it.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false on I/O failure (never throws).
bool write_chrome_trace(const std::string& path);

} // namespace obs
} // namespace lph
