#pragma once

#include "obs/trace.hpp"

#include <string>

namespace lph {
namespace obs {

/// Renders the tracer's current contents as a Chrome trace-event JSON
/// document ({"traceEvents": [...]}), loadable in Perfetto or
/// chrome://tracing.  One track per thread that ever emitted a span
/// (named `worker-<tid>`), duration spans as balanced B/E event pairs with
/// per-track monotone timestamps, instant events as `i` events.
///
/// Span intervals recorded by RAII guards on one thread are properly nested
/// by construction; the renderer still clamps a child's end to its parent's
/// (guarding against clock jitter and torn ring records) so the output is
/// *always* balanced and monotone — `scripts/trace_lint.py` checks exactly
/// these invariants.
///
/// Events carry the real process id (`pid`) and the document's otherData
/// records `pid` plus `epoch_realtime_us` — the wall-clock instant of the
/// tracer's steady-clock zero — so scripts/trace_merge.py can stitch traces
/// from several processes (supervised workers + supervisor) onto one
/// timeline.  `process_name` labels the process track in the viewer.
std::string chrome_trace_json(const std::vector<Tracer::ThreadTrack>& tracks,
                              std::int64_t pid,
                              std::uint64_t epoch_realtime_us,
                              const std::string& process_name = "lph");

/// Snapshot the global tracer and render it with this process's identity
/// (getpid + the global tracer's wall-clock epoch).
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path` with this process's identity and
/// `process_name` as the viewer label; false on I/O failure (never throws).
bool write_chrome_trace(const std::string& path,
                        const std::string& process_name = "lph");

} // namespace obs
} // namespace lph
