#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/log_histogram.hpp"

namespace lph {
namespace obs {

/// Flat name -> value list, the interchange format between the stats structs
/// scattered across the engine (GameStats, ViewCacheStats, pool stats...) and
/// the registry.  Also exactly the shape of the `metrics` object on a BENCH
/// report row, so a snapshot can be dropped onto an Instance verbatim.
using MetricList = std::vector<std::pair<std::string, double>>;

/// Thread-safe registry of named counters, gauges, and histograms.
///
/// Naming scheme (see DESIGN.md "Observability"): dot-separated
/// `<subsystem>.<metric>`, e.g. `game.leaves_processed`, `cache.hits`,
/// `pool.steals`, `oracle.instances`.  Counters are monotone sums, gauges are
/// last-write-wins, histograms are log2-bucketed (LogHistogram) and expand in
/// the snapshot to `<name>.count/.sum/.min/.max/.avg/.p50/.p90/.p99/.p999`.
///
/// Updates are coarse-grained (end of a solve, end of a check corpus), so a
/// single mutex is deliberate; the per-event hot path belongs to the tracer,
/// not the registry.
class MetricsRegistry {
public:
    /// Adds `delta` to the named counter (creating it at zero).
    void add(const std::string& name, double delta = 1.0);

    /// Sets the named gauge.
    void set(const std::string& name, double value);

    /// Records one histogram sample.
    void observe(const std::string& name, double value);

    /// Merges a whole histogram into the named one (creating it empty) — the
    /// cross-process aggregation point used by lph_top and publish paths.
    void merge_histogram(const std::string& name, const LogHistogram& h);

    /// Replaces the named histogram wholesale.  The idempotent counterpart of
    /// merge_histogram for publish paths that run repeatedly (republishing a
    /// merge would double-count every sample).
    void set_histogram(const std::string& name, const LogHistogram& h);

    /// Sets one gauge per entry, each name prefixed with `prefix` — the
    /// absorption point for the stats structs' to_metrics() lists.
    void absorb(const std::string& prefix, const MetricList& values);

    /// Adds each entry onto the matching counter (prefix as in absorb) —
    /// for accumulating the same stats struct across many runs.
    void accumulate(const std::string& prefix, const MetricList& values);

    /// All metrics, sorted by name.  Counters and gauges appear under their
    /// own names; histograms expand to the derived scalars.
    MetricList snapshot() const;

    /// The snapshot as a JSON object (name -> number), pretty-printed.
    std::string snapshot_json() const;

    /// Copies of every histogram, sorted by name — the bucket-level export
    /// behind the `detail:"full"` stats response and lph_top's merge.
    std::vector<std::pair<std::string, LogHistogram>> histograms() const;

    void clear();

private:
    mutable std::mutex mutex_;
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, LogHistogram> histograms_;
};

/// Escapes a string for embedding in a JSON string literal (obs keeps its own
/// copy so the library stays dependency-free below core).
std::string json_escape(const std::string& s);

/// Renders a metric list as a JSON object (name -> number).  pretty = one
/// entry per line (the --metrics= file form); compact = a single line, for
/// embedding inside a wire response.  Every consumer of the registry renders
/// through here, so the file and wire forms can never drift apart.
std::string render_metrics_json(const MetricList& metrics, bool pretty);

} // namespace obs
} // namespace lph
