#include "hierarchy/hamiltonian_game.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <deque>

namespace lph {

EdgeSet edge_set_from_cycle(const std::vector<NodeId>& cycle) {
    EdgeSet h;
    check(cycle.size() >= 3, "edge_set_from_cycle: need at least three nodes");
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const NodeId a = cycle[i];
        const NodeId b = cycle[(i + 1) % cycle.size()];
        h.emplace(std::min(a, b), std::max(a, b));
    }
    return h;
}

namespace {

std::vector<std::size_t> h_degrees(const LabeledGraph& g, const EdgeSet& h) {
    std::vector<std::size_t> degree(g.num_nodes(), 0);
    for (const auto& [a, b] : h) {
        ++degree[a];
        ++degree[b];
    }
    return degree;
}

std::vector<std::vector<NodeId>> adjacency_of(const LabeledGraph& g,
                                              const EdgeSet& h) {
    std::vector<std::vector<NodeId>> adj(g.num_nodes());
    for (const auto& [a, b] : h) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    return adj;
}

} // namespace

bool all_degree_two(const LabeledGraph& g, const EdgeSet& h) {
    const auto degree = h_degrees(g, h);
    return std::all_of(degree.begin(), degree.end(),
                       [](std::size_t d) { return d == 2; });
}

std::vector<std::vector<NodeId>> h_components(const LabeledGraph& g,
                                              const EdgeSet& h) {
    const auto adj = adjacency_of(g, h);
    std::vector<int> component(g.num_nodes(), -1);
    std::vector<std::vector<NodeId>> components;
    for (NodeId start = 0; start < g.num_nodes(); ++start) {
        if (component[start] >= 0) {
            continue;
        }
        const int index = static_cast<int>(components.size());
        components.emplace_back();
        std::deque<NodeId> queue{start};
        component[start] = index;
        while (!queue.empty()) {
            const NodeId u = queue.front();
            queue.pop_front();
            components.back().push_back(u);
            for (NodeId v : adj[u]) {
                if (component[v] < 0) {
                    component[v] = index;
                    queue.push_back(v);
                }
            }
        }
    }
    return components;
}

bool has_discontinuity(const EdgeSet& h, const std::vector<bool>& s) {
    for (const auto& [a, b] : h) {
        if (s[a] != s[b]) {
            return true;
        }
    }
    return false;
}

bool eve_answers_s(const LabeledGraph& g, const EdgeSet& h,
                   const std::vector<bool>& s) {
    check(all_degree_two(g, h), "eve_answers_s: H must be 2-regular");
    const std::size_t n = g.num_nodes();
    const bool all_in = std::all_of(s.begin(), s.end(), [](bool b) { return b; });
    const bool all_out = std::none_of(s.begin(), s.end(), [](bool b) { return b; });
    if (all_in || all_out) {
        // Trivial case: C = 0 everywhere; every node sees agreement on S.
        return true;
    }
    // Partitioned case: C = 1 everywhere; Eve needs a forest toward a
    // discontinuity (an H-edge crossing S), then wins the charge game.
    const auto adj = adjacency_of(g, h);
    const NodePredicate discontinuity = [&](const LabeledGraph&, NodeId u) {
        for (NodeId v : adj[u]) {
            if (s[u] != s[v]) {
                return true;
            }
        }
        return false;
    };
    (void)n;
    const auto parents = constructive_parents(g, discontinuity);
    if (!parents.has_value()) {
        return false; // no discontinuity anywhere: Adam exposed a component
    }
    return parents_beat_every_adam_move(g, *parents, discontinuity);
}

bool adam_beats_disconnected(const LabeledGraph& g, const EdgeSet& h) {
    check(all_degree_two(g, h), "adam_beats_disconnected: H must be 2-regular");
    const auto components = h_components(g, h);
    check(components.size() >= 2, "adam_beats_disconnected: H is connected");
    // Adam's move: S = the first component.
    std::vector<bool> s(g.num_nodes(), false);
    for (NodeId u : components[0]) {
        s[u] = true;
    }
    // Eve's option C = 0 (uniform): requires S trivial — it is not.
    const bool s_trivial = components[0].size() == g.num_nodes();
    if (s_trivial) {
        return false;
    }
    // Eve's option C = 1 (uniform): requires a discontinuity — there is
    // none, because S is a union of H-components.
    if (has_discontinuity(h, s)) {
        return false;
    }
    // Non-uniform C fails InAgreementOn[C] at some edge of the (connected)
    // input graph, so Eve has no further options.
    return true;
}

std::vector<EdgeSet> all_two_factors(const LabeledGraph& g, std::uint64_t guard) {
    // Backtracking over the edge list with degree bounds.
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (u < v) {
                edges.emplace_back(u, v);
            }
        }
    }
    std::vector<EdgeSet> factors;
    std::vector<std::size_t> degree(g.num_nodes(), 0);
    std::vector<std::size_t> remaining(g.num_nodes(), 0);
    for (const auto& [a, b] : edges) {
        ++remaining[a];
        ++remaining[b];
    }
    EdgeSet current;
    std::uint64_t visited = 0;

    std::function<void(std::size_t)> recurse = [&](std::size_t index) {
        check(++visited <= guard, "all_two_factors: search guard exceeded");
        if (index == edges.size()) {
            if (std::all_of(degree.begin(), degree.end(),
                            [](std::size_t d) { return d == 2; })) {
                factors.push_back(current);
            }
            return;
        }
        const auto [a, b] = edges[index];
        --remaining[a];
        --remaining[b];
        // Option 1: skip the edge, if both endpoints can still reach 2.
        if (degree[a] + remaining[a] >= 2 && degree[b] + remaining[b] >= 2) {
            recurse(index + 1);
        }
        // Option 2: take the edge, if neither endpoint exceeds 2.
        if (degree[a] < 2 && degree[b] < 2) {
            ++degree[a];
            ++degree[b];
            current.emplace(a, b);
            recurse(index + 1);
            current.erase({a, b});
            --degree[a];
            --degree[b];
        }
        ++remaining[a];
        ++remaining[b];
    };
    recurse(0);
    return factors;
}

HamiltonianGameResult hamiltonian_game(const LabeledGraph& g,
                                       std::uint64_t max_two_factors) {
    HamiltonianGameResult result;
    check(g.num_nodes() <= 16, "hamiltonian_game: graph too large");
    const auto factors = all_two_factors(g, max_two_factors);
    const std::uint64_t adam_moves = std::uint64_t{1} << g.num_nodes();
    for (const EdgeSet& h : factors) {
        ++result.two_factors_tried;
        const auto components = h_components(g, h);
        if (components.size() >= 2) {
            // Eve's claim is false here; confirm Adam's winning move exists.
            check(adam_beats_disconnected(g, h),
                  "hamiltonian_game: Adam must beat a disconnected 2-factor");
            continue;
        }
        // A connected 2-factor is a Hamiltonian cycle; Eve must beat every
        // Adam move — replay them all.
        bool beats_all = true;
        for (std::uint64_t mask = 0; mask < adam_moves && beats_all; ++mask) {
            std::vector<bool> s(g.num_nodes());
            for (std::size_t i = 0; i < g.num_nodes(); ++i) {
                s[i] = (mask >> i) & 1;
            }
            beats_all = eve_answers_s(g, h, s);
        }
        check(beats_all, "hamiltonian_game: Eve must beat every S on a cycle");
        result.eve_wins = true;
        result.winning_h = h;
        return result;
    }
    return result;
}

NonHamiltonianGameResult non_hamiltonian_game(const LabeledGraph& g,
                                              std::uint64_t max_subgraphs) {
    NonHamiltonianGameResult result;
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (u < v) {
                edges.emplace_back(u, v);
            }
        }
    }
    check(edges.size() < 63 &&
              (std::uint64_t{1} << edges.size()) <= max_subgraphs,
          "non_hamiltonian_game: Adam's subgraph space exceeds the guard");

    const std::uint64_t count = std::uint64_t{1} << edges.size();
    for (std::uint64_t mask = 0; mask < count; ++mask) {
        ++result.adam_subgraphs_tried;
        EdgeSet h;
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if ((mask >> i) & 1) {
                h.insert(edges[i]);
            }
        }
        if (!all_degree_two(g, h)) {
            // Eve: C = 0 and a forest toward a DegreeTwo violation.
            const auto degree = h_degrees(g, h);
            const NodePredicate violated = [&](const LabeledGraph&, NodeId u) {
                return degree[u] != 2;
            };
            const auto parents = constructive_parents(g, violated);
            check(parents.has_value() &&
                      parents_beat_every_adam_move(g, *parents, violated),
                  "non_hamiltonian_game: Eve must expose a degree violation");
            continue;
        }
        const auto components = h_components(g, h);
        if (components.size() == 1) {
            // Adam produced a Hamiltonian cycle: Eve cannot refute it.
            result.eve_wins = false;
            return result;
        }
        // Eve: C = 1, S = first component (no discontinuity), forest toward
        // a division witness (a graph edge crossing S).
        std::vector<bool> s(g.num_nodes(), false);
        for (NodeId u : components[0]) {
            s[u] = true;
        }
        check(!has_discontinuity(h, s),
              "non_hamiltonian_game: a component cannot be cut by H");
        const NodePredicate division = [&](const LabeledGraph& graph, NodeId u) {
            for (NodeId v : graph.neighbors(u)) {
                if (s[u] != s[v]) {
                    return true;
                }
            }
            return false;
        };
        const auto parents = constructive_parents(g, division);
        check(parents.has_value() &&
                  parents_beat_every_adam_move(g, *parents, division),
              "non_hamiltonian_game: Eve must expose the division");
    }
    result.eve_wins = true;
    return result;
}

} // namespace lph
