#pragma once

#include "dtm/local.hpp"
#include "obs/metrics.hpp"

#include <memory>
#include <optional>

namespace lph {

class ViewCache;
class CompiledGameCore;
struct CompiledLimits;

namespace obs {
class Session;
}

/// A per-node enumerable space of certificates for one quantifier layer.
///
/// The paper quantifies over all (r,p)-bounded bit strings; the game engine
/// instead enumerates *structured* domains — exactly the certificate shapes
/// the paper's proofs use (a color, a parent pointer, a relation slice...) —
/// as recorded in DESIGN.md (substitution 2).  RawBitStringDomain recovers
/// the unstructured case for small p.
class CertificateDomain {
public:
    virtual ~CertificateDomain() = default;
    virtual std::vector<BitString> options(const LabeledGraph& g,
                                           const IdentifierAssignment& id,
                                           NodeId u) const = 0;
};

/// The same fixed option list at every node (e.g. the k colors).
class FixedOptionsDomain : public CertificateDomain {
public:
    explicit FixedOptionsDomain(std::vector<BitString> options)
        : options_(std::move(options)) {}
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

/// Every bit string of length <= max_length — the paper's raw certificate
/// space for a constant bound (2^(L+1)-1 options; keep L tiny).
class RawBitStringDomain : public CertificateDomain {
public:
    explicit RawBitStringDomain(std::size_t max_length);
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

/// The alternation game of Section 4: layers of certificate assignments
/// chosen alternately by Eve (existential) and Adam (universal), arbitrated
/// by a local machine.
struct GameSpec {
    const LocalMachine* machine = nullptr;
    std::vector<const CertificateDomain*> layers;
    /// True for Sigma-side games (Eve moves first), false for Pi-side.
    bool starts_existential = true;
};

/// Per-layer, per-node certificate option tables, built once per
/// (spec, graph, identifiers) and shared between play_game and
/// game_tree_size so callers stop paying the domain enumeration twice.
class GameTables {
public:
    GameTables(const GameSpec& spec, const LabeledGraph& g,
               const IdentifierAssignment& id);

    std::size_t layers() const { return tables_.size(); }
    const std::vector<std::vector<BitString>>& layer(std::size_t i) const {
        return tables_.at(i);
    }

    /// Product of per-node option counts for one layer (saturating).
    std::uint64_t layer_product(std::size_t i) const;

    /// Number of leaf evaluations an exhaustive game would need (saturating).
    std::uint64_t tree_size() const;

    /// The compiled decision-table core for this context, built on first use
    /// and cached on the tables (the per-batch-flavor home: BatchContext
    /// shares one GameTables across a micro-batch, so the whole batch pays
    /// one compilation).  Returns nullptr when the context is not compilable
    /// (see CompiledGameCore::compile).  A later call with execution options
    /// whose verdict-relevant fields differ recompiles; when `built_now_ms`
    /// is non-null it receives the compile time this call paid (0 on reuse).
    /// `max_cost_ratio` is the profitability gate
    /// (CompiledLimits::max_cost_ratio; 0 = always compile).  Thread-safe.
    const CompiledGameCore* compiled(const GameSpec& spec, const LabeledGraph& g,
                                     const IdentifierAssignment& id,
                                     const ExecutionOptions& exec,
                                     double* built_now_ms = nullptr,
                                     double max_cost_ratio = 0) const;

private:
    struct CompiledSlot; // defined in game.cpp (holds the slot mutex)

    std::vector<std::vector<std::vector<BitString>>> tables_;
    std::shared_ptr<CompiledSlot> slot_;
};

/// Which leaf-evaluation core play_game uses.
enum class GameBackend {
    /// Per-leaf whole-graph machine interpretation (with the view cache).
    Interpreted,
    /// Compiled per-view decision tables with 64-wide packed evaluation and
    /// orbit sharing; falls back to Interpreted automatically when the
    /// context is not compilable (fault plans, deadlines, byte caps,
    /// non-locally-unique ids, leaf-only games).  Both backends produce
    /// bit-identical GameResults apart from stats.
    Compiled,
};

struct GameOptions {
    /// Guard on the product of per-node option counts for one layer.
    std::uint64_t max_assignments_per_layer = 50'000'000;
    ExecutionOptions exec;

    /// When true, a leaf probe whose run faults (a bound violation, an
    /// injected fault escalating to an abort, a malformed certificate) is
    /// scored as a loss for Eve and recorded on the GameResult, instead of
    /// aborting the whole game.  The paper's arbiter must *accept* for Eve
    /// to win, so a machine that cannot finish cleanly cannot witness
    /// acceptance.
    bool tolerate_faults = false;

    /// Worker threads fanning out the outermost quantifier layer: 1 forces
    /// the fully sequential reference path, 0 uses one worker per hardware
    /// thread.  Both paths produce bit-identical GameResults (verdict,
    /// counters, fault records, witness); only GameResult::stats differs.
    unsigned threads = 0;

    /// Memoize per-node run_local verdicts keyed by canonical r-ball views
    /// (sound for the paper's deterministic machines; see DESIGN.md).  The
    /// cache never changes verdicts or the deterministic counters, only the
    /// perf stats.  Automatically disabled when the execution options carry
    /// run-global couplings (fault plans, deadlines, byte caps).
    bool memoize_views = true;

    /// Optional shared cache (e.g. across instances of the same machine);
    /// nullptr gives the game a private cache of view_cache_entries.
    ViewCache* view_cache = nullptr;
    std::size_t view_cache_entries = 1 << 20;

    /// Leaf-evaluation core.  Compiled replaces the per-leaf interpreter
    /// (and the view cache) with flat decision tables evaluated 64 leaves
    /// per word; results stay bit-identical either way.  Interpreted is the
    /// default so existing engine-level callers keep their exact perf-stat
    /// profile; the serving layer and the benches opt into Compiled.
    GameBackend backend = GameBackend::Interpreted;

    /// Compilation profitability gate (CompiledLimits::max_cost_ratio):
    /// with a positive ratio, the Compiled backend declines to build tables
    /// whose up-front ball runs exceed ratio x the exhaustive leaf space and
    /// falls back to Interpreted.  0 always compiles — the oracle and the
    /// benches want the compiled path exercised regardless of payoff; the
    /// serving layer gates at 1.0 so tiny one-shot requests keep the
    /// interpreter's short-circuit exits.
    double compile_cost_ratio = 0;

    /// Partial leaf recomputation for dynamic-graph serving (DESIGN.md
    /// "Incremental serving").  When the context is cacheable, a leaf whose
    /// view-cache probe misses on some nodes re-derives just those nodes'
    /// verdicts by running the machine on their induced radius-R balls —
    /// sound by r-locality (the ball preserves the center's radius-R view,
    /// so a clean completed ball run reproduces the full-graph verdict) —
    /// and merges them with the cached verdicts of the untouched region.
    /// Any unclean or incomplete ball run falls back to the ordinary
    /// full-graph leaf run, keeping the deterministic counters and fault
    /// ordering bit-identical to a full solve.  Interpreted backend only
    /// (the Compiled backend already evaluates per-ball).
    bool partial_leaves = false;

    /// Optional node subset expected to miss the view cache (the dirty
    /// region of a graph_patch); their ball simulations are prebuilt up
    /// front instead of lazily on the first missing leaf.
    const std::vector<NodeId>* recompute_nodes = nullptr;

    /// Optional observability session: when set, the solve accumulates its
    /// GameStats into the session's MetricsRegistry under the `game.` naming
    /// scheme (DESIGN.md Observability).  Span tracing is independent of
    /// this — spans go to the ambient obs::Tracer whenever it is enabled.
    obs::Session* obs = nullptr;
};

/// Perf counters of one play_game call.  Unlike the GameResult counters
/// these describe the *actual* work done — including leaves evaluated
/// speculatively by workers past the deciding assignment — so they are not
/// deterministic across thread counts or cache settings.
struct GameStats {
    std::uint64_t leaves_processed = 0; ///< leaf probes actually performed
    std::uint64_t local_runs = 0;       ///< run_local invocations (cache misses)
    std::uint64_t leaf_cache_hits = 0;  ///< leaves served fully from the cache
    std::uint64_t node_cache_hits = 0;
    std::uint64_t node_cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    double wall_ms = 0;     ///< wall-clock of the whole solve
    double busy_ms = 0;     ///< summed per-worker processing time
    unsigned workers = 1;   ///< participants in the fan-out
    std::uint64_t chunks = 1;

    // Compiled-backend counters (all zero on the interpreted path).
    double compile_ms = 0;  ///< table compilation paid by THIS solve (0 on reuse)
    std::uint64_t orbit_hits = 0; ///< nodes served by another node's class table
    std::uint64_t compiled_classes = 0;
    /// 64-leaf pattern words ANDed during packed evaluation (per node, per
    /// word — the packed path's unit of work).
    std::uint64_t packed_words_evaluated = 0;

    // Partial-leaf counters (all zero unless GameOptions::partial_leaves).
    std::uint64_t partial_leaf_evals = 0; ///< leaves completed from ball runs
    std::uint64_t ball_runs = 0;          ///< induced-ball run_local calls
    std::uint64_t partial_fallbacks = 0;  ///< eligible leaves that ran fully

    double leaves_per_sec() const {
        return wall_ms > 0 ? 1000.0 * static_cast<double>(leaves_processed) / wall_ms
                           : 0.0;
    }
    double cache_hit_rate() const {
        const double total =
            static_cast<double>(node_cache_hits + node_cache_misses);
        return total > 0 ? static_cast<double>(node_cache_hits) / total : 0.0;
    }
    double worker_utilization() const {
        return wall_ms > 0 && workers > 0
                   ? busy_ms / (wall_ms * static_cast<double>(workers))
                   : 0.0;
    }

    /// Metric list in the BENCH report vocabulary (leaves, leaves_per_sec,
    /// cache_hit_rate, ...), the names the committed baselines already use.
    /// bench_report.hpp absorbs this into a registry instead of hand-copying
    /// the fields.
    obs::MetricList to_metrics() const;
};

struct GameResult {
    bool accepted = false;           ///< Eve has a winning strategy
    std::uint64_t machine_runs = 0;  ///< leaves evaluated (in sequential order)
    std::uint64_t faulted_runs = 0;  ///< leaves scored as losses due to faults
    /// First few faults from faulted leaves (bounded sample for reporting),
    /// in deterministic leaf order.
    std::vector<RunFault> probe_faults;
    /// When the outermost layer is existential and Eve wins, her winning
    /// outermost assignment (any alternation depth; for Sigma_1 games this
    /// is the accepting certificate assignment).  Unset for Pi-side games.
    std::optional<CertificateAssignment> witness;
    /// Perf counters (excluded from the determinism guarantee).
    GameStats stats;
};

/// Solves the game exactly by enumeration with early exit.  The outermost
/// quantifier layer is fanned out across a work-stealing thread pool
/// (GameOptions::threads) with deterministic merging: the parallel and
/// sequential paths return bit-identical results apart from stats.
GameResult play_game(const GameSpec& spec, const LabeledGraph& g,
                     const IdentifierAssignment& id, const GameOptions& options = {});

/// Same, with prebuilt option tables (see GameTables).
GameResult play_game(const GameSpec& spec, const GameTables& tables,
                     const LabeledGraph& g, const IdentifierAssignment& id,
                     const GameOptions& options = {});

/// Convenience for NLP (Sigma_1): searches for a certificate assignment the
/// verifier accepts.
std::optional<CertificateAssignment>
find_accepting_certificate(const LocalMachine& verifier, const CertificateDomain& domain,
                           const LabeledGraph& g, const IdentifierAssignment& id,
                           const GameOptions& options = {});

/// Number of leaf evaluations an exhaustive game would need (saturating).
std::uint64_t game_tree_size(const GameSpec& spec, const LabeledGraph& g,
                             const IdentifierAssignment& id);

/// Same, from prebuilt tables (no re-enumeration of the domains).
std::uint64_t game_tree_size(const GameTables& tables);

} // namespace lph
