#pragma once

#include "dtm/local.hpp"

#include <memory>
#include <optional>

namespace lph {

/// A per-node enumerable space of certificates for one quantifier layer.
///
/// The paper quantifies over all (r,p)-bounded bit strings; the game engine
/// instead enumerates *structured* domains — exactly the certificate shapes
/// the paper's proofs use (a color, a parent pointer, a relation slice...) —
/// as recorded in DESIGN.md (substitution 2).  RawBitStringDomain recovers
/// the unstructured case for small p.
class CertificateDomain {
public:
    virtual ~CertificateDomain() = default;
    virtual std::vector<BitString> options(const LabeledGraph& g,
                                           const IdentifierAssignment& id,
                                           NodeId u) const = 0;
};

/// The same fixed option list at every node (e.g. the k colors).
class FixedOptionsDomain : public CertificateDomain {
public:
    explicit FixedOptionsDomain(std::vector<BitString> options)
        : options_(std::move(options)) {}
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

/// Every bit string of length <= max_length — the paper's raw certificate
/// space for a constant bound (2^(L+1)-1 options; keep L tiny).
class RawBitStringDomain : public CertificateDomain {
public:
    explicit RawBitStringDomain(std::size_t max_length);
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

/// The alternation game of Section 4: layers of certificate assignments
/// chosen alternately by Eve (existential) and Adam (universal), arbitrated
/// by a local machine.
struct GameSpec {
    const LocalMachine* machine = nullptr;
    std::vector<const CertificateDomain*> layers;
    /// True for Sigma-side games (Eve moves first), false for Pi-side.
    bool starts_existential = true;
};

struct GameOptions {
    /// Guard on the product of per-node option counts for one layer.
    std::uint64_t max_assignments_per_layer = 50'000'000;
    ExecutionOptions exec;

    /// When true, a leaf probe whose run faults (a bound violation, an
    /// injected fault escalating to an abort, a malformed certificate) is
    /// scored as a loss for Eve and recorded on the GameResult, instead of
    /// aborting the whole game.  The paper's arbiter must *accept* for Eve
    /// to win, so a machine that cannot finish cleanly cannot witness
    /// acceptance.
    bool tolerate_faults = false;
};

struct GameResult {
    bool accepted = false;           ///< Eve has a winning strategy
    std::uint64_t machine_runs = 0;  ///< leaves actually evaluated
    std::uint64_t faulted_runs = 0;  ///< leaves scored as losses due to faults
    /// First few faults from faulted leaves (bounded sample for reporting).
    std::vector<RunFault> probe_faults;
    /// For a winning Sigma_1 game: Eve's witness certificate assignment.
    std::optional<CertificateAssignment> witness;
};

/// Solves the game exactly by enumeration with early exit.
GameResult play_game(const GameSpec& spec, const LabeledGraph& g,
                     const IdentifierAssignment& id, const GameOptions& options = {});

/// Convenience for NLP (Sigma_1): searches for a certificate assignment the
/// verifier accepts.
std::optional<CertificateAssignment>
find_accepting_certificate(const LocalMachine& verifier, const CertificateDomain& domain,
                           const LabeledGraph& g, const IdentifierAssignment& id,
                           const GameOptions& options = {});

/// Number of leaf evaluations an exhaustive game would need (saturating).
std::uint64_t game_tree_size(const GameSpec& spec, const LabeledGraph& g,
                             const IdentifierAssignment& id);

} // namespace lph
