#include "hierarchy/pointsto_game.hpp"

#include "core/check.hpp"

#include <deque>

namespace lph {

namespace {

/// True when the pointer graph of p (ignoring self-loops at roots) is
/// acyclic, i.e. following parents from any node reaches a root.
bool is_pointer_forest(const LabeledGraph& g, const ParentAssignment& p) {
    const std::size_t n = g.num_nodes();
    // 0 = unvisited, 1 = on the current path, 2 = proven to reach a root.
    std::vector<int> state(n, 0);
    for (NodeId start = 0; start < n; ++start) {
        if (state[start] == 2) {
            continue;
        }
        std::vector<NodeId> path;
        NodeId u = start;
        while (true) {
            if (p[u] == u || state[u] == 2) {
                break; // reached a root or a known-good node
            }
            if (state[u] == 1) {
                return false; // cycle
            }
            state[u] = 1;
            path.push_back(u);
            u = p[u];
        }
        for (NodeId v : path) {
            state[v] = 2;
        }
    }
    return true;
}

bool parents_well_formed(const LabeledGraph& g, const ParentAssignment& p) {
    if (p.size() != g.num_nodes()) {
        return false;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (p[u] != u && !g.has_edge(u, p[u])) {
            return false;
        }
    }
    return true;
}

} // namespace

std::optional<std::vector<bool>> forced_charges(const LabeledGraph& g,
                                                const ParentAssignment& p,
                                                const std::vector<bool>& x,
                                                const NodePredicate& theta) {
    check(parents_well_formed(g, p), "forced_charges: invalid parent assignment");
    check(x.size() == g.num_nodes(), "forced_charges: X size mismatch");
    const std::size_t n = g.num_nodes();

    // Roots must satisfy theta and be positively charged; each child's charge
    // is determined by its parent's (copied outside X, inverted inside X).
    // Propagate top-down; a pointer cycle leaves some node's charge
    // over-constrained, which surfaces as a contradiction when we close the
    // loop.
    std::vector<int> charge(n, -1); // -1 unknown, 0 negative, 1 positive
    for (NodeId u = 0; u < n; ++u) {
        if (p[u] == u) {
            if (!theta(g, u)) {
                return std::nullopt; // RootCase violated: Eve loses outright
            }
            charge[u] = 1;
        }
    }
    auto resolve_chains = [&]() {
        bool changed = true;
        while (changed) {
            changed = false;
            for (NodeId u = 0; u < n; ++u) {
                if (charge[u] >= 0 || charge[p[u]] < 0) {
                    continue;
                }
                // ChildCase: Y(u) = Y(parent) XOR X(u).
                charge[u] = x[u] ? 1 - charge[p[u]] : charge[p[u]];
                changed = true;
            }
        }
    };
    resolve_chains();
    // Remaining unresolved nodes hang off pointer cycles.  A cycle admits a
    // consistent charging iff the X-inversions around it cancel out; Adam's
    // singleton X on a cycle therefore always defeats a cyclic P.
    while (true) {
        NodeId unresolved = n;
        for (NodeId u = 0; u < n; ++u) {
            if (charge[u] < 0) {
                unresolved = u;
                break;
            }
        }
        if (unresolved == n) {
            break;
        }
        // Follow parents to find the cycle (every unresolved chain ends in
        // one, or chain resolution would have fired).
        std::vector<int> seen(n, 0);
        NodeId u = unresolved;
        while (seen[u] == 0) {
            seen[u] = 1;
            u = p[u];
        }
        const NodeId cycle_start = u;
        int inversions = 0;
        do {
            inversions ^= x[u] ? 1 : 0;
            u = p[u];
        } while (u != cycle_start);
        if (inversions != 0) {
            return std::nullopt; // Adam's X breaks this cycle: Eve loses
        }
        // Consistent: pick Y(cycle_start) = positive and propagate backwards
        // along the cycle via Y(parent) = Y(child) XOR X(child).
        int c = 1;
        u = cycle_start;
        do {
            charge[u] = c;
            c = x[u] ? 1 - c : c;
            u = p[u];
        } while (u != cycle_start);
        resolve_chains();
    }
    std::vector<bool> y(n);
    for (NodeId u = 0; u < n; ++u) {
        y[u] = charge[u] == 1;
    }
    return y;
}

bool parents_beat_every_adam_move(const LabeledGraph& g, const ParentAssignment& p,
                                  const NodePredicate& theta) {
    if (!parents_well_formed(g, p)) {
        return false;
    }
    // Roots must satisfy theta.
    bool has_root = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (p[u] == u) {
            has_root = true;
            if (!theta(g, u)) {
                return false;
            }
        }
    }
    if (!has_root) {
        return false; // pure cycles: Adam wins (see below)
    }
    // A forest beats every X (Eve propagates charges); a cycle loses to the
    // singleton X on that cycle (odd inversion count).
    return is_pointer_forest(g, p);
}

PointsToGameResult play_points_to_game(const LabeledGraph& g,
                                       const NodePredicate& theta,
                                       std::uint64_t max_parent_assignments) {
    const std::size_t n = g.num_nodes();
    // Option lists: self plus each neighbor.
    std::vector<std::vector<NodeId>> options(n);
    std::uint64_t total = 1;
    for (NodeId u = 0; u < n; ++u) {
        options[u].push_back(u);
        for (NodeId v : g.neighbors(u)) {
            options[u].push_back(v);
        }
        total = total > max_parent_assignments / options[u].size()
                    ? max_parent_assignments + 1
                    : total * options[u].size();
    }
    check(total <= max_parent_assignments,
          "play_points_to_game: parent space exceeds the guard");

    PointsToGameResult result;
    std::vector<std::size_t> idx(n, 0);
    while (true) {
        ParentAssignment p(n);
        for (NodeId u = 0; u < n; ++u) {
            p[u] = options[u][idx[u]];
        }
        ++result.parent_assignments_tried;
        // Verify Eve's claim against every Adam move explicitly (the literal
        // Forall X), cross-checked against the analytic criterion.
        const bool analytic = parents_beat_every_adam_move(g, p, theta);
        bool literal = true;
        const std::uint64_t moves = std::uint64_t{1} << n;
        for (std::uint64_t mask = 0; mask < moves && literal; ++mask) {
            std::vector<bool> x(n);
            for (std::size_t i = 0; i < n; ++i) {
                x[i] = (mask >> i) & 1;
            }
            ++result.adam_moves_tried;
            literal = forced_charges(g, p, x, theta).has_value();
        }
        check(analytic == literal,
              "play_points_to_game: analytic and literal game values differ");
        if (literal) {
            result.eve_wins = true;
            result.winning_parents = std::move(p);
            return result;
        }
        // Odometer.
        std::size_t pos = 0;
        while (pos < n) {
            if (++idx[pos] < options[pos].size()) {
                break;
            }
            idx[pos] = 0;
            ++pos;
        }
        if (pos == n) {
            return result;
        }
    }
}

std::optional<ParentAssignment> constructive_parents(const LabeledGraph& g,
                                                     const NodePredicate& theta) {
    const std::size_t n = g.num_nodes();
    ParentAssignment p(n, n);
    std::deque<NodeId> queue;
    for (NodeId u = 0; u < n; ++u) {
        if (theta(g, u)) {
            p[u] = u;
            queue.push_back(u);
        }
    }
    if (queue.empty()) {
        return std::nullopt;
    }
    while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : g.neighbors(u)) {
            if (p[v] == n) {
                p[v] = u;
                queue.push_back(v);
            }
        }
    }
    return p;
}

bool exists_unselected_by_game(const LabeledGraph& g) {
    const NodePredicate unselected = [](const LabeledGraph& h, NodeId u) {
        return h.label(u) != "1";
    };
    // Eve's constructive strategy suffices (and is checked); when she has no
    // theta-node to point at, no parent assignment can win.
    const auto p = constructive_parents(g, unselected);
    if (!p.has_value()) {
        return false;
    }
    check(parents_beat_every_adam_move(g, *p, unselected),
          "exists_unselected_by_game: constructive strategy must win");
    return true;
}

NonColorableGameResult
non_three_colorable_by_game(const LabeledGraph& g, std::uint64_t max_colorings) {
    const std::size_t n = g.num_nodes();
    check(n <= 20, "non_three_colorable_by_game: graph too large");
    // Adam assigns each node a subset of {0,1,2} (its memberships in
    // C0,C1,C2); 8 options per node.
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < n; ++i) {
        total = total > max_colorings / 8 ? max_colorings + 1 : total * 8;
    }
    check(total <= max_colorings,
          "non_three_colorable_by_game: coloring space exceeds the guard");

    NonColorableGameResult result;
    std::vector<int> sets(n, 0); // 3-bit membership mask per node
    while (true) {
        ++result.adam_colorings_tried;
        // Eve's target: ill-colored nodes under Adam's proposal.
        const NodePredicate ill_colored = [&](const LabeledGraph& h, NodeId u) {
            const int mask = sets[u];
            const int count = (mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);
            if (count != 1) {
                return true;
            }
            for (NodeId v : h.neighbors(u)) {
                if (sets[v] & mask) {
                    return true;
                }
            }
            return false;
        };
        const auto p = constructive_parents(g, ill_colored);
        if (!p.has_value() || !parents_beat_every_adam_move(g, *p, ill_colored)) {
            // Adam found a proper coloring Eve cannot refute.
            result.non_colorable = false;
            return result;
        }
        // Odometer over Adam's proposals.
        std::size_t pos = 0;
        while (pos < n) {
            if (++sets[pos] < 8) {
                break;
            }
            sets[pos] = 0;
            ++pos;
        }
        if (pos == n) {
            result.non_colorable = true;
            return result;
        }
    }
}

} // namespace lph
