#pragma once

#include "graph/graph.hpp"
#include "hierarchy/pointsto_game.hpp"

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace lph {

/// Examples 6 and 7, executed: the Sigma_5 game for HAMILTONIAN and the
/// Pi_4 game for NON-HAMILTONIAN, with both players following the
/// constructive strategies of the paper's proofs.
///
/// Eve's Sigma_5 position: she proposes a 2-regular spanning subgraph H
/// (claiming a Hamiltonian cycle); Adam answers with a node set S (claiming
/// a proper component of H); Eve then labels the nodes with a bit C (all
/// equal: was Adam's S trivial, or does it cut the cycle?) and, in the
/// second case, a PointsTo forest toward a discontinuity (an H-edge with
/// endpoints on both sides of S); Adam's X and Eve's Y are the charge game
/// of Example 4.

/// An undirected edge set representing H (pairs with first < second).
using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

/// H from a Hamiltonian cycle (node sequence).
EdgeSet edge_set_from_cycle(const std::vector<NodeId>& cycle);

/// Is every node H-degree exactly 2 (the DegreeTwo(x) condition for all x)?
bool all_degree_two(const LabeledGraph& g, const EdgeSet& h);

/// Connected components of the subgraph (V, h).
std::vector<std::vector<NodeId>> h_components(const LabeledGraph& g,
                                              const EdgeSet& h);

/// Does some H-edge cross S (the DiscontinuityAt witness)?
bool has_discontinuity(const EdgeSet& h, const std::vector<bool>& s);

/// Eve's reply to Adam's S when her H is a genuine Hamiltonian cycle:
/// the C bit and, in the partitioned case, the PointsTo forest toward a
/// discontinuity.  Returns false only if her reply fails some node's check
/// — which the paper proves cannot happen.
bool eve_answers_s(const LabeledGraph& g, const EdgeSet& h,
                   const std::vector<bool>& s);

/// Adam's winning argument against a disconnected 2-regular H: S = one
/// component leaves no discontinuity and no trivial case, so every Eve
/// reply fails.  Verified by enumerating her C choices and the PointsTo
/// criterion.
bool adam_beats_disconnected(const LabeledGraph& g, const EdgeSet& h);

/// The Sigma_5 game value by enumerating Eve's 2-regular spanning subgraphs
/// and, per the above, Adam's component answers; equals HAMILTONIAN (the
/// content of Example 6).  Guarded enumeration: fine up to ~10 nodes.
struct HamiltonianGameResult {
    bool eve_wins = false;
    std::uint64_t two_factors_tried = 0;
    std::optional<EdgeSet> winning_h;
};

HamiltonianGameResult hamiltonian_game(const LabeledGraph& g,
                                       std::uint64_t max_two_factors = 1'000'000);

/// Example 7: the Pi_4 game value for NON-HAMILTONIAN.  Adam proposes any
/// edge subset H; Eve refutes with C = 0 plus a forest toward a DegreeTwo
/// violation, or C = 1 plus S = one component and a forest toward a
/// division witness.  Equals NON-HAMILTONIAN on the instance; enumeration
/// over H is 2^|E| — keep graphs tiny.
struct NonHamiltonianGameResult {
    bool eve_wins = false;
    std::uint64_t adam_subgraphs_tried = 0;
};

NonHamiltonianGameResult
non_hamiltonian_game(const LabeledGraph& g,
                     std::uint64_t max_subgraphs = 5'000'000);

/// Enumerates all 2-regular spanning edge subsets of g (the 2-factors) by
/// backtracking; used by the Sigma_5 game and exposed for tests.
std::vector<EdgeSet> all_two_factors(const LabeledGraph& g,
                                     std::uint64_t guard = 1'000'000);

} // namespace lph
