#pragma once

#include "dtm/gather.hpp"
#include "hierarchy/game.hpp"

#include <functional>
#include <optional>

namespace lph {

// ---------------------------------------------------------------------------
// Proposition 21: LP < NLP via symmetry breaking on glued cycles.
// ---------------------------------------------------------------------------

/// A locally plausible LP candidate for 2-COLORABLE: accepts iff the node's
/// r-neighborhood is bipartite.  On any cycle every neighborhood is a path,
/// so this machine accepts all cycles — including odd ones.  Proposition 21
/// shows every LP machine fails similarly.
class LocalBipartiteDecider : public NeighborhoodGatherMachine {
public:
    explicit LocalBipartiteDecider(int radius) : NeighborhoodGatherMachine(radius) {}
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;
};

/// The Proposition 21 experiment: runs `decider` on an odd cycle G of length
/// n and on the even cycle G' obtained by gluing two copies of G, with the
/// identifier assignment of G replicated on both halves of G'.  Any machine
/// whose id-radius fits produces identical per-node verdicts on G and G',
/// although only G' is 2-colorable.
struct SymmetryExperiment {
    std::size_t odd_length = 0;
    bool g_bipartite = false;       ///< ground truth for G (false: odd cycle)
    bool g2_bipartite = false;      ///< ground truth for G' (true: even cycle)
    bool g_accepted = false;
    bool g2_accepted = false;
    bool transcripts_match = false; ///< verdict(u_i) == verdict(u'_i) for all i
};

SymmetryExperiment run_prop21_experiment(const LocalMachine& decider,
                                         std::size_t odd_length);

// ---------------------------------------------------------------------------
// Proposition 23: NOT-ALL-SELECTED is not in NLP — the two failure modes of
// bounded-certificate verifiers on labeled cycles.
// ---------------------------------------------------------------------------

/// Candidate NOT-ALL-SELECTED verifier #1: the certificate is an exact
/// distance counter d with `bits` bits.  A node accepts iff
/// (label != "1") <-> (d == 0), and d > 0 implies some neighbor carries d-1.
/// Sound (never accepts an all-selected cycle) but incomplete: a yes-cycle
/// longer than 2^(bits+1) has nodes whose true distance does not fit.
class BoundedDistanceVerifier : public NeighborhoodGatherMachine {
public:
    explicit BoundedDistanceVerifier(int bits);
    int bits() const { return bits_; }
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;

private:
    int bits_;
};

/// The certificate domain matching BoundedDistanceVerifier: all fixed-width
/// counters 0 .. 2^bits - 1.
class DistanceCertificateDomain : public CertificateDomain {
public:
    explicit DistanceCertificateDomain(int bits);
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

/// Candidate NOT-ALL-SELECTED verifier #2: the certificate is one bit naming
/// which neighbor (in ascending identifier order) the node "points at",
/// claiming an unselected node lies that way.  A node accepts iff its label
/// is not "1", or its target has a non-"1" label, or its target does not
/// point straight back at it.  Complete on cycles, but unsound — the
/// pigeonhole splice of Proposition 23 exhibits an accepted all-selected
/// cycle.  Radius 2 (a node must see its target's target).
class PointerChainVerifier : public NeighborhoodGatherMachine {
public:
    PointerChainVerifier() : NeighborhoodGatherMachine(2) {}
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;
};

/// The Proposition 23 pigeonhole splice.  Builds the labeled cycle of length
/// `cycle_length` with exactly one "0"-labeled node and cyclic identifiers of
/// period `id_period`, asks the game engine for an accepting certificate of
/// `verifier`, locates two nodes with identical (label, id, certificate)
/// windows of radius `window_radius`, and splices out the arc between them
/// that contains the unselected node.  The result is an all-selected cycle
/// the verifier still accepts.
struct SpliceExperiment {
    bool original_accepted = false; ///< verifier accepts the yes-instance
    bool window_pair_found = false;
    std::size_t original_length = 0;
    std::size_t spliced_length = 0;
    bool spliced_all_selected = false; ///< ground truth: spliced is a no-instance
    bool spliced_accepted = false;     ///< the verifier's (wrong) answer
};

/// Eve's strategy: produces the certificate assignment she plays on a given
/// instance, or nullopt when she has no accepting play (the incompleteness
/// horn).  Exhaustive search via the game engine is also possible for tiny
/// instances; strategies keep large instances tractable, mirroring the
/// constructive strategies in the paper's proofs.
using EveStrategy = std::function<std::optional<CertificateAssignment>(
    const LabeledGraph&, const IdentifierAssignment&)>;

SpliceExperiment run_prop23_splice(const NeighborhoodGatherMachine& verifier,
                                   const EveStrategy& strategy,
                                   std::size_t cycle_length, std::size_t id_period,
                                   int window_radius,
                                   const ExecutionOptions& exec = {});

/// Builds the Proposition 23 instance: a cycle of `length` nodes labeled "1"
/// except node 0 labeled "0".
LabeledGraph one_unselected_cycle(std::size_t length);

/// Eve's strategy for BoundedDistanceVerifier: true distances to the
/// unselected node, nullopt when some distance does not fit in `bits` bits.
std::optional<CertificateAssignment> distance_certificates(const LabeledGraph& g,
                                                           int bits);

/// Eve's strategy for PointerChainVerifier on cycles: every selected node
/// points along the shorter arc toward the unselected node.
std::optional<CertificateAssignment>
pointer_certificates(const LabeledGraph& g, const IdentifierAssignment& id);

} // namespace lph
