#include "hierarchy/separations.hpp"

#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"

#include <algorithm>
#include <map>

namespace lph {

std::string LocalBipartiteDecider::decide(const NeighborhoodView& view,
                                          StepMeter& meter) const {
    meter.charge(view.graph.num_nodes() + 2 * view.graph.num_edges());
    return is_bipartite(view.graph) ? "1" : "0";
}

SymmetryExperiment run_prop21_experiment(const LocalMachine& decider,
                                         std::size_t odd_length) {
    check(odd_length % 2 == 1 && odd_length >= 3,
          "run_prop21_experiment: need an odd cycle length >= 3");
    const std::size_t r_id = static_cast<std::size_t>(decider.id_radius());
    check(odd_length > 2 * r_id,
          "run_prop21_experiment: cycle too short for the machine's id radius");

    // G: the odd cycle; G': two copies glued into a cycle of double length,
    // with the identifiers of G replicated on both halves (proof of Prop 21).
    const LabeledGraph g = cycle_graph(odd_length, "");
    const LabeledGraph g2 = cycle_graph(2 * odd_length, "");
    const IdentifierAssignment id = make_global_ids(g);
    std::vector<BitString> doubled(2 * odd_length);
    for (std::size_t i = 0; i < odd_length; ++i) {
        doubled[i] = id(i);
        doubled[i + odd_length] = id(i);
    }
    const IdentifierAssignment id2{std::move(doubled)};

    SymmetryExperiment result;
    result.odd_length = odd_length;
    result.g_bipartite = is_bipartite(g);
    result.g2_bipartite = is_bipartite(g2);

    const ExecutionResult run_g = run_local(decider, g, id);
    const ExecutionResult run_g2 = run_local(decider, g2, id2);
    result.g_accepted = run_g.accepted;
    result.g2_accepted = run_g2.accepted;
    result.transcripts_match = true;
    for (std::size_t i = 0; i < odd_length; ++i) {
        if (run_g.outputs[i] != run_g2.outputs[i] ||
            run_g.outputs[i] != run_g2.outputs[i + odd_length]) {
            result.transcripts_match = false;
            break;
        }
    }
    return result;
}

LabeledGraph one_unselected_cycle(std::size_t length) {
    LabeledGraph g = cycle_graph(length, "1");
    g.set_label(0, "0");
    return g;
}

BoundedDistanceVerifier::BoundedDistanceVerifier(int bits)
    : NeighborhoodGatherMachine(1), bits_(bits) {
    check(bits >= 1 && bits <= 20, "BoundedDistanceVerifier: bits out of range");
}

namespace {

std::string first_certificate(const std::string& list) {
    const auto parts = split_hash(list);
    return parts.empty() ? "" : parts[0];
}

/// Decodes a fixed-width counter certificate; -1 when malformed.
std::int64_t decode_counter(const std::string& cert, int bits) {
    if (cert.size() != static_cast<std::size_t>(bits) || !is_bit_string(cert)) {
        return -1;
    }
    return static_cast<std::int64_t>(decode_unsigned(cert));
}

} // namespace

std::string BoundedDistanceVerifier::decide(const NeighborhoodView& view,
                                            StepMeter& meter) const {
    meter.charge(view.certs[view.self].size() + 4);
    const std::int64_t mine =
        decode_counter(first_certificate(view.certs[view.self]), bits_);
    if (mine < 0) {
        return "0";
    }
    const bool selected = view.graph.label(view.self) == "1";
    if ((mine == 0) == selected) {
        return "0"; // counter 0 iff unselected, violated
    }
    if (mine == 0) {
        return "1";
    }
    for (NodeId v : view.graph.neighbors(view.self)) {
        meter.charge(view.certs[v].size() + 1);
        if (decode_counter(first_certificate(view.certs[v]), bits_) == mine - 1) {
            return "1";
        }
    }
    return "0";
}

DistanceCertificateDomain::DistanceCertificateDomain(int bits) {
    check(bits >= 1 && bits <= 12, "DistanceCertificateDomain: bits out of range");
    const std::uint64_t count = std::uint64_t{1} << bits;
    for (std::uint64_t value = 0; value < count; ++value) {
        options_.push_back(encode_unsigned_width(value, bits));
    }
}

std::string PointerChainVerifier::decide(const NeighborhoodView& view,
                                         StepMeter& meter) const {
    meter.charge(view.certs[view.self].size() + view.graph.num_nodes());
    if (view.graph.label(view.self) != "1") {
        return "1";
    }
    // Neighbors in ascending identifier order.
    auto sorted_neighbors = [&](NodeId u) {
        std::vector<NodeId> nb = view.graph.neighbors(u);
        std::sort(nb.begin(), nb.end(),
                  [&](NodeId a, NodeId b) { return view.ids[a] < view.ids[b]; });
        return nb;
    };
    auto target_of = [&](NodeId u) -> std::optional<NodeId> {
        const std::string cert = first_certificate(view.certs[u]);
        if (cert != "0" && cert != "1") {
            return std::nullopt;
        }
        const auto nb = sorted_neighbors(u);
        const std::size_t index = cert == "1" ? 1 : 0;
        if (index >= nb.size()) {
            return std::nullopt;
        }
        return nb[index];
    };
    const auto target = target_of(view.self);
    if (!target.has_value()) {
        return "0";
    }
    if (view.graph.label(*target) != "1") {
        return "1";
    }
    const auto target_target = target_of(*target);
    if (!target_target.has_value()) {
        return "0";
    }
    return *target_target == view.self ? "0" : "1";
}

std::optional<CertificateAssignment> distance_certificates(const LabeledGraph& g,
                                                           int bits) {
    // Multi-source BFS from every unselected node.
    std::vector<int> dist(g.num_nodes(), -1);
    std::vector<NodeId> frontier;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u) != "1") {
            dist[u] = 0;
            frontier.push_back(u);
        }
    }
    if (frontier.empty()) {
        return std::nullopt; // all selected: Eve has no play
    }
    while (!frontier.empty()) {
        std::vector<NodeId> next;
        for (NodeId u : frontier) {
            for (NodeId v : g.neighbors(u)) {
                if (dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    next.push_back(v);
                }
            }
        }
        frontier = std::move(next);
    }
    const std::int64_t limit = (std::int64_t{1} << bits) - 1;
    std::vector<BitString> certs(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (dist[u] > limit) {
            return std::nullopt; // distance does not fit: incompleteness horn
        }
        certs[u] = encode_unsigned_width(static_cast<std::uint64_t>(dist[u]), bits);
    }
    return CertificateAssignment(std::move(certs));
}

std::optional<CertificateAssignment>
pointer_certificates(const LabeledGraph& g, const IdentifierAssignment& id) {
    // BFS parent pointers toward the nearest unselected node.
    std::vector<NodeId> toward(g.num_nodes(), g.num_nodes());
    std::vector<int> dist(g.num_nodes(), -1);
    std::vector<NodeId> frontier;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u) != "1") {
            dist[u] = 0;
            frontier.push_back(u);
        }
    }
    if (frontier.empty()) {
        return std::nullopt;
    }
    while (!frontier.empty()) {
        std::vector<NodeId> next;
        for (NodeId u : frontier) {
            for (NodeId v : g.neighbors(u)) {
                if (dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    toward[v] = u;
                    next.push_back(v);
                }
            }
        }
        frontier = std::move(next);
    }
    std::vector<BitString> certs(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        NodeId target = toward[u];
        if (target == g.num_nodes()) {
            target = g.neighbors(u).front(); // unselected nodes point anywhere
        }
        std::vector<NodeId> nb = g.neighbors(u);
        std::sort(nb.begin(), nb.end(),
                  [&](NodeId a, NodeId b) { return id(a) < id(b); });
        const auto it = std::find(nb.begin(), nb.end(), target);
        certs[u] = it - nb.begin() == 0 ? "0" : "1";
    }
    return CertificateAssignment(std::move(certs));
}

SpliceExperiment run_prop23_splice(const NeighborhoodGatherMachine& verifier,
                                   const EveStrategy& strategy,
                                   std::size_t cycle_length, std::size_t id_period,
                                   int window_radius, const ExecutionOptions& exec) {
    check(window_radius >= verifier.radius(),
          "run_prop23_splice: window radius must cover the verifier's radius");
    check(id_period >= 2 * static_cast<std::size_t>(verifier.id_radius()) + 1,
          "run_prop23_splice: id period too small for the verifier's id radius");

    SpliceExperiment result;
    result.original_length = cycle_length;

    const LabeledGraph g = one_unselected_cycle(cycle_length);
    const IdentifierAssignment id = make_cyclic_ids(g, id_period);

    const auto certs = strategy(g, id);
    if (!certs.has_value()) {
        return result; // Eve cannot even play: the incompleteness horn
    }
    const auto list =
        CertificateListAssignment::concatenate({*certs}, g.num_nodes());
    result.original_accepted = run_local(verifier, g, id, list, exec).accepted;
    if (!result.original_accepted) {
        return result;
    }

    // Pigeonhole: find i < j with identical (label, id, certificate) windows,
    // both windows and the kept arc [i, j) avoiding the unselected node 0,
    // with j - i >= max(3, id_period) so the spliced cycle is well-formed.
    const std::size_t wr = static_cast<std::size_t>(window_radius);
    auto window_key = [&](std::size_t center) {
        std::string key;
        for (std::size_t off = 0; off <= 2 * wr; ++off) {
            const std::size_t v = (center + cycle_length - wr + off) % cycle_length;
            key += g.label(v) + "/" + id(v) + "/" + (*certs)(v) + ";";
        }
        return key;
    };
    std::map<std::string, std::size_t> seen;
    std::size_t found_i = 0;
    std::size_t found_j = 0;
    for (std::size_t v = wr + 1; v + wr < cycle_length; ++v) {
        const std::string key = window_key(v);
        const auto it = seen.find(key);
        if (it != seen.end()) {
            const std::size_t gap = v - it->second;
            if (gap >= std::max<std::size_t>(3, id_period)) {
                found_i = it->second;
                found_j = v;
                result.window_pair_found = true;
                break;
            }
        } else {
            seen.emplace(key, v);
        }
    }
    if (!result.window_pair_found) {
        return result;
    }

    // Splice: keep nodes found_i .. found_j-1 as a cycle (identifying
    // found_j with found_i); node 0 is cut away.
    const std::size_t m = found_j - found_i;
    result.spliced_length = m;
    LabeledGraph spliced = cycle_graph(m, "1");
    std::vector<BitString> spliced_ids(m);
    std::vector<BitString> spliced_certs(m);
    result.spliced_all_selected = true;
    for (std::size_t k = 0; k < m; ++k) {
        const std::size_t v = found_i + k;
        spliced.set_label(k, g.label(v));
        if (g.label(v) != "1") {
            result.spliced_all_selected = false;
        }
        spliced_ids[k] = id(v);
        spliced_certs[k] = (*certs)(v);
    }
    const IdentifierAssignment id2{std::move(spliced_ids)};
    const auto list2 = CertificateListAssignment::concatenate(
        {CertificateAssignment(std::move(spliced_certs))}, m);
    result.spliced_accepted = run_local(verifier, spliced, id2, list2, exec).accepted;
    return result;
}

} // namespace lph
