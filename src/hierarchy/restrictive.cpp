#include "hierarchy/restrictive.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <functional>

namespace lph {

NeighborhoodView subview(const NeighborhoodView& view, NodeId center, int radius) {
    const auto sub = view.graph.neighborhood(center, radius);
    NeighborhoodView result;
    result.graph = sub.graph;
    result.self = sub.from_original.at(center);
    result.ids.resize(sub.to_original.size());
    result.certs.resize(sub.to_original.size());
    for (NodeId w = 0; w < sub.to_original.size(); ++w) {
        result.ids[w] = view.ids[sub.to_original[w]];
        result.certs[w] = view.certs[sub.to_original[w]];
    }
    return result;
}

std::vector<std::string> truncate_certificates(const std::vector<std::string>& certs,
                                               std::size_t layers) {
    std::vector<std::string> truncated;
    truncated.reserve(certs.size());
    for (const auto& list : certs) {
        const auto parts = split_hash(list);
        std::vector<std::string> kept;
        for (std::size_t i = 0; i < layers && i < parts.size(); ++i) {
            kept.push_back(parts[i]);
        }
        truncated.push_back(join_hash(kept));
    }
    return truncated;
}

namespace {

/// Runs a gather component "virtually" at node `center` of a larger view:
/// extracts the component's sub-view (optionally with certificates truncated
/// to `layers`) and calls its decide().
std::string component_verdict(const NeighborhoodGatherMachine& component,
                              const NeighborhoodView& view, NodeId center,
                              std::size_t layers, StepMeter& meter) {
    NeighborhoodView sub = subview(view, center, component.radius());
    sub.certs = truncate_certificates(sub.certs, layers);
    return component.decide(sub, meter);
}

} // namespace

GameResult play_restrictive_game(const RestrictiveGameSpec& spec,
                                 const LabeledGraph& g,
                                 const IdentifierAssignment& id,
                                 const GameOptions& options) {
    check(spec.arbiter != nullptr, "play_restrictive_game: no arbiter");
    check(spec.layers.size() == spec.restrictors.size(),
          "play_restrictive_game: one restrictor slot per layer");

    // Option tables per layer.
    std::vector<std::vector<std::vector<BitString>>> tables;
    for (const CertificateDomain* domain : spec.layers) {
        std::vector<std::vector<BitString>> table(g.num_nodes());
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
            table[u] = domain->options(g, id, u);
            check(!table[u].empty(), "play_restrictive_game: empty domain");
        }
        tables.push_back(std::move(table));
    }

    GameResult result;

    // Recursive relativized game.
    std::vector<CertificateAssignment> chosen;
    std::function<bool(std::size_t)> value = [&](std::size_t layer) -> bool {
        if (layer == spec.layers.size()) {
            const auto list =
                CertificateListAssignment::concatenate(chosen, g.num_nodes());
            ++result.machine_runs;
            return run_local(*spec.arbiter, g, id, list, options.exec).accepted;
        }
        const bool want =
            spec.starts_existential ? layer % 2 == 0 : layer % 2 == 1;
        const auto& table = tables[layer];
        std::vector<std::size_t> idx(g.num_nodes(), 0);
        while (true) {
            std::vector<BitString> certs(g.num_nodes());
            for (NodeId u = 0; u < g.num_nodes(); ++u) {
                certs[u] = table[u][idx[u]];
            }
            chosen.emplace_back(std::move(certs));
            // Relativization: the assignment must pass this layer's
            // restrictor (prior layers were already validated).
            bool admissible = true;
            if (spec.restrictors[layer] != nullptr) {
                const auto list =
                    CertificateListAssignment::concatenate(chosen, g.num_nodes());
                admissible = run_local(*spec.restrictors[layer], g, id, list,
                                       options.exec)
                                 .accepted;
            }
            bool inner = false;
            if (admissible) {
                inner = value(layer + 1);
            }
            chosen.pop_back();
            if (admissible && inner == want) {
                return want;
            }
            std::size_t pos = 0;
            while (pos < idx.size()) {
                if (++idx[pos] < table[pos].size()) {
                    break;
                }
                idx[pos] = 0;
                ++pos;
            }
            if (pos == idx.size()) {
                return !want;
            }
        }
    };
    result.accepted = value(0);
    return result;
}

namespace {

int max_component_radius(const NeighborhoodGatherMachine& arbiter,
                         const std::vector<const NeighborhoodGatherMachine*>& rs) {
    int radius = arbiter.radius();
    for (const auto* r : rs) {
        if (r != nullptr) {
            radius = std::max(radius, r->radius());
        }
    }
    return radius;
}

} // namespace

PermissiveWrapper::PermissiveWrapper(
    const NeighborhoodGatherMachine& arbiter,
    std::vector<const NeighborhoodGatherMachine*> restrictors,
    bool starts_existential)
    : NeighborhoodGatherMachine(max_component_radius(arbiter, restrictors) +
                                arbiter.round_bound()),
      arbiter_(arbiter), restrictors_(std::move(restrictors)),
      starts_existential_(starts_existential),
      flag_range_(arbiter.round_bound()) {}

int PermissiveWrapper::id_radius() const {
    int r = NeighborhoodGatherMachine::id_radius();
    r = std::max(r, arbiter_.id_radius());
    for (const auto* restrictor : restrictors_) {
        if (restrictor != nullptr) {
            r = std::max(r, restrictor->id_radius());
        }
    }
    return r;
}

std::string PermissiveWrapper::decide(const NeighborhoodView& view,
                                      StepMeter& meter) const {
    // ok_i = AND of restrictor-i verdicts over the flag-propagation ball
    // (the proof's error flags after round_bound rounds of flooding).
    const auto nearby = view.graph.ball(view.self, flag_range_);
    for (std::size_t layer = 0; layer < restrictors_.size(); ++layer) {
        if (restrictors_[layer] == nullptr) {
            continue; // trivial restrictor
        }
        bool ok = true;
        for (NodeId v : nearby) {
            if (component_verdict(*restrictors_[layer], view, v, layer + 1,
                                  meter) != "1") {
                ok = false;
                break;
            }
        }
        if (!ok) {
            // Early verdict per the quantifier's polarity (proof of Lemma 8):
            // an invalid existential choice is rejected, an invalid universal
            // choice is accepted.
            return layer_existential(layer) ? "0" : "1";
        }
    }
    return component_verdict(arbiter_, view, view.self,
                             restrictors_.size(), meter);
}

} // namespace lph
