#pragma once

#include "dtm/execution.hpp"
#include "graph/identifiers.hpp"
#include "logic/eval.hpp"
#include "logic/formula.hpp"
#include "machines/formula_arbiter.hpp"

#include <cstdint>

namespace lph {

/// Options for checking Theorem 12 agreement on a bounded instance.
struct FaginOptions {
    /// Tuple locality: relation tuples keep all elements within this graph
    /// distance of the first element's owner (0 means "use the sentence's
    /// own radius times two", the Theorem 12 restriction).
    int locality_radius = 0;

    /// When true, relations range over node elements only.  Exact for
    /// sentences whose relation atoms are all guarded by IsNode — true of
    /// every Section 5.2 formula — and shrinks the search space massively.
    bool node_elements_only = true;

    /// Guard: a relation variable whose tuple universe exceeds this many
    /// tuples aborts (the enumeration is 2^universe).
    std::size_t max_tuples_per_variable = 22;

    /// Run the machine side as well (formula side alone is much cheaper).
    bool run_machine_side = true;

    ExecutionOptions exec;
};

/// Outcome of the two-sided evaluation of one sentence on one instance.
struct FaginReport {
    bool formula_value = false;   ///< game value with matrix evaluation leaves
    bool machine_value = false;   ///< game value with FormulaArbiter leaves
    bool agree = true;            ///< formula_value == machine_value (or machine skipped)
    std::uint64_t formula_leaves = 0;
    std::uint64_t machine_leaves = 0;
};

/// Evaluates a Sigma_l/Pi_l^LFO sentence on a graph by playing the
/// second-order quantifier game over a shared local tuple universe, twice:
/// once evaluating the LFO matrix directly (the logic side of Theorem 12),
/// and once handing sliced relation certificates to the generic
/// FormulaArbiter machine (the machine side).  Agreement of the two values
/// is the empirical content of Theorem 12 on this instance.
FaginReport check_fagin_agreement(const Formula& sentence, const LabeledGraph& g,
                                  const IdentifierAssignment& id,
                                  const FaginOptions& options = {});

/// Just the formula value (logic side), using the same structured
/// enumeration; usable as a reference decision procedure for any Section 5.2
/// sentence on small graphs.
bool eval_sentence_on_graph(const Formula& sentence, const LabeledGraph& g,
                            const FaginOptions& options = {});

/// The tuple universe used for one relation variable of the sentence.
std::vector<ElementTuple> local_tuple_universe(const GraphStructure& gs,
                                               std::size_t arity, int radius,
                                               bool node_elements_only);

} // namespace lph
