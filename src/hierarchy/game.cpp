#include "hierarchy/game.hpp"

#include "core/check.hpp"
#include "core/thread_pool.hpp"
#include "dtm/view_cache.hpp"
#include "hierarchy/compiled.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace lph {

RawBitStringDomain::RawBitStringDomain(std::size_t max_length) {
    check(max_length <= 16, "RawBitStringDomain: keep max_length tiny");
    options_.push_back("");
    for (std::size_t len = 1; len <= max_length; ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t value = 0; value < count; ++value) {
            options_.push_back(encode_unsigned_width(value, static_cast<int>(len)));
        }
    }
}

namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kNoTerminal = std::numeric_limits<std::uint64_t>::max();
constexpr std::size_t kMaxRecordedFaults = 64;
constexpr std::uint64_t kChunksPerWorker = 8;
/// Cap on the packed low-block width (leaves per pattern rebuild).  A single
/// node whose option list alone exceeds this also blows the per-class compile
/// budget, so nothing real is lost by falling back wholesale.
constexpr std::uint64_t kMaxBlockLeaves = std::uint64_t{1} << 16;

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) {
        return 0;
    }
    return a > kSaturated / b ? kSaturated : a * b;
}

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

} // namespace

/// Lazily-built compiled core, cached on the tables so a whole batch flavor
/// pays one compilation.  Lives behind a shared_ptr so GameTables stays
/// movable (std::mutex is not).
struct GameTables::CompiledSlot {
    std::mutex mutex;
    bool attempted = false;
    std::string signature;
    std::unique_ptr<CompiledGameCore> core;
};

namespace {

/// The execution-option fields a compiled table's entries depend on (plus
/// the machine identity and the compilability gates).  on_violation is
/// deliberately absent: tables only ever hold clean runs, where the
/// violation policy never fires.
std::string compile_signature(const GameSpec& spec, const ExecutionOptions& exec,
                              double max_cost_ratio) {
    std::ostringstream sig;
    sig << static_cast<const void*>(spec.machine) << '|' << exec.max_rounds
        << '|' << exec.max_steps_per_round << '|'
        << exec.enforce_declared_bounds << '|' << exec.max_space_per_node
        << '|' << exec.validate_certificates << '|' << (exec.faults != nullptr)
        << '|' << (exec.deadline_ms > 0) << '|'
        << (exec.max_total_message_bytes > 0) << '|' << max_cost_ratio;
    return sig.str();
}

} // namespace

const CompiledGameCore* GameTables::compiled(const GameSpec& spec,
                                             const LabeledGraph& g,
                                             const IdentifierAssignment& id,
                                             const ExecutionOptions& exec,
                                             double* built_now_ms,
                                             double max_cost_ratio) const {
    if (built_now_ms != nullptr) {
        *built_now_ms = 0;
    }
    const std::string signature = compile_signature(spec, exec, max_cost_ratio);
    const std::lock_guard<std::mutex> lock(slot_->mutex);
    if (slot_->attempted && slot_->signature == signature) {
        return slot_->core.get();
    }
    CompiledLimits limits;
    limits.max_cost_ratio = max_cost_ratio;
    auto fresh = CompiledGameCore::compile(spec, *this, g, id, exec, limits);
    if (fresh != nullptr) {
        if (built_now_ms != nullptr) {
            *built_now_ms = fresh->compile_ms();
        }
        slot_->core = std::move(fresh);
        slot_->signature = signature;
        slot_->attempted = true;
        return slot_->core.get();
    }
    // Keep an existing core built under a different signature: a deadline'd
    // request in the middle of a batch must not evict the batch's tables.
    if (!slot_->attempted) {
        slot_->signature = signature;
        slot_->attempted = true;
    }
    return nullptr;
}

GameTables::GameTables(const GameSpec& spec, const LabeledGraph& g,
                       const IdentifierAssignment& id)
    : slot_(std::make_shared<CompiledSlot>()) {
    for (const CertificateDomain* domain : spec.layers) {
        std::vector<std::vector<BitString>> table(g.num_nodes());
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
            table[u] = domain->options(g, id, u);
            check(!table[u].empty(), "play_game: a certificate domain is empty");
        }
        tables_.push_back(std::move(table));
    }
}

std::uint64_t GameTables::layer_product(std::size_t i) const {
    std::uint64_t product = 1;
    for (const auto& options : tables_.at(i)) {
        product = saturating_mul(product, options.size());
    }
    return product;
}

std::uint64_t GameTables::tree_size() const {
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < tables_.size(); ++i) {
        total = saturating_mul(total, layer_product(i));
    }
    return total;
}

namespace {

/// Deterministic per-leaf-order counters: everything the sequential engine
/// would have accumulated up to (and including) one outer assignment.
struct Tally {
    std::uint64_t machine_runs = 0;
    std::uint64_t faulted_runs = 0;
    std::vector<RunFault> faults; ///< capped at kMaxRecordedFaults

    void add_fault(const RunFault& f) {
        if (faults.size() < kMaxRecordedFaults) {
            faults.push_back(f);
        }
    }
};

/// What one contiguous range of outer assignments produced.
struct ChunkOutcome {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    /// Index of the assignment that decided the outer quantifier (or threw);
    /// kNoTerminal when the whole range was exhausted without one.
    std::uint64_t terminal = kNoTerminal;
    std::exception_ptr error; ///< set when `terminal` threw
    Tally tally;              ///< covers the processed prefix of the range
    double busy_ms = 0;
};

/// Per-worker state of the packed (compiled-backend) deepest-layer scan:
/// for every node, the configuration contribution of all digits outside the
/// low block ("base") and the node's known/accept pattern words over the low
/// block.  Patterns are rebuilt lazily: a digit change dirties exactly the
/// nodes whose cert ball contains the changed position (the compiled core's
/// affected lists), so most patterns survive across blocks and across inner
/// scans.
struct PackedState {
    bool ready = false;
    std::vector<std::uint64_t> base;    ///< per node
    std::vector<std::uint64_t> known;   ///< node * words + w
    std::vector<std::uint64_t> accept;  ///< node * words + w
    std::vector<std::uint8_t> dirty;    ///< per node
    std::vector<std::size_t> low_digits; ///< odometer scratch
};

/// One node's frozen induced radius-R ball, reused across leaves of a
/// solve: running the machine on it reproduces the node's full-graph
/// verdict whenever the run is clean and completed (the ball preserves the
/// center's radius-R view — the same fact the compiled core's tables and
/// the view-cache keys rest on).
struct BallSim {
    InducedSubgraph sub;
    IdentifierAssignment id;
    NodeId center;
};

/// Everything one worker mutates while walking its share of the game tree.
struct WorkerContext {
    std::vector<CertificateAssignment> chosen;
    std::vector<std::vector<std::size_t>> idx;
    Tally tally;
    std::string key_scratch;
    std::vector<NodeId> miss_scratch;
    PackedState packed;
    // Perf counters (accumulated across this worker's chunks).
    std::uint64_t leaves_processed = 0;
    std::uint64_t local_runs = 0;
    std::uint64_t leaf_cache_hits = 0;
    std::uint64_t packed_words = 0;
    std::uint64_t partial_leaf_evals = 0;
    std::uint64_t ball_runs = 0;
    std::uint64_t partial_fallbacks = 0;

    void ensure(std::size_t layers, std::size_t n) {
        if (chosen.size() != layers) {
            chosen.assign(layers,
                          CertificateAssignment(std::vector<BitString>(n)));
            idx.assign(layers, std::vector<std::size_t>(n, 0));
        }
    }
};

class GameSolver {
public:
    GameSolver(const GameSpec& spec, const GameTables& tables,
               const LabeledGraph& g, const IdentifierAssignment& id,
               const GameOptions& options)
        : spec_(spec), tables_(tables), g_(g), id_(id), options_(options) {
        check(spec.machine != nullptr, "play_game: no machine");
        check(tables.layers() == spec.layers.size(),
              "play_game: tables were built for a different spec");
        for (std::size_t i = 0; i < tables.layers(); ++i) {
            check(tables.layer_product(i) <= options.max_assignments_per_layer,
                  "play_game: layer assignment space exceeds the guard");
        }
        if (options.backend == GameBackend::Compiled && tables.layers() > 0) {
            // Table entries are clean completed ball runs — timing-independent
            // facts — so compile without the wall-clock deadline: it still
            // guards every fallback leaf through options.exec, and stripping
            // it here both keeps the tables deterministic and lets deadline'd
            // service requests share the batch's compiled core.
            ExecutionOptions compile_exec = options.exec;
            compile_exec.deadline_ms = 0;
            compiled_ = tables.compiled(spec, g, id, compile_exec,
                                        &compile_ms_paid_,
                                        options.compile_cost_ratio);
        }
        if (compiled_ != nullptr) {
            setup_packing();
        }
        // The compiled tables replace the view cache (both serve the same
        // per-view verdicts); fallback leaves run the plain interpreter.
        if (compiled_ == nullptr && options.memoize_views) {
            keys_ = std::make_unique<ViewKeyBuilder>(*spec.machine, g, id,
                                                     options.exec);
            if (!keys_->cacheable()) {
                keys_.reset();
            } else if (options.view_cache != nullptr) {
                cache_ = options.view_cache;
            } else {
                owned_cache_ =
                    std::make_unique<ViewCache>(options.view_cache_entries);
                cache_ = owned_cache_.get();
            }
        }
        if (cache_ != nullptr && options.partial_leaves) {
            partial_ = true;
            if (options.recompute_nodes != nullptr) {
                for (const NodeId u : *options.recompute_nodes) {
                    if (u < g.num_nodes()) {
                        ball_sim_for(u);
                    }
                }
            }
        }
    }

    GameResult run() {
        LPH_SPAN_NAMED(span, "game", "game.solve");
        const Clock::time_point start = Clock::now();
        const ViewCacheStats cache_before =
            cache_ != nullptr ? cache_->stats() : ViewCacheStats{};

        GameResult result;
        if (spec_.layers.empty()) {
            run_leaf_only(result);
        } else {
            run_layered(result);
        }

        result.stats.wall_ms = elapsed_ms(start);
        result.stats.compile_ms = compile_ms_paid_;
        if (compiled_ != nullptr) {
            result.stats.orbit_hits = compiled_->orbit_hits();
            result.stats.compiled_classes = compiled_->classes().size();
        }
        if (cache_ != nullptr) {
            const ViewCacheStats after = cache_->stats();
            result.stats.node_cache_hits = after.hits - cache_before.hits;
            result.stats.node_cache_misses = after.misses - cache_before.misses;
            result.stats.cache_evictions = after.evictions - cache_before.evictions;
        }
        span.arg("leaves", result.stats.leaves_processed);
        record_session_metrics(result);
        return result;
    }

private:
    bool existential(std::size_t layer) const {
        return spec_.starts_existential ? layer % 2 == 0 : layer % 2 == 1;
    }

    // --- Odometer over one layer's per-node option table. -----------------

    /// Seeds layer digits to the mixed-radix decomposition of `linear`
    /// (position 0 is the fastest-running digit, matching increment order).
    void seed_layer(std::size_t layer, std::uint64_t linear, WorkerContext& ctx) {
        const auto& table = tables_.layer(layer);
        for (NodeId u = 0; u < g_.num_nodes(); ++u) {
            const std::uint64_t size = table[u].size();
            const std::size_t digit = static_cast<std::size_t>(linear % size);
            linear /= size;
            if (ctx.idx[layer][u] != digit) {
                mark_affected(u, ctx);
            }
            ctx.idx[layer][u] = digit;
            ctx.chosen[layer].set(u, table[u][digit]);
        }
    }

    /// Advances the layer's odometer by one, rewriting only the positions
    /// that changed.  Returns false when the layer wrapped around.
    bool advance_layer(std::size_t layer, WorkerContext& ctx) {
        const auto& table = tables_.layer(layer);
        std::vector<std::size_t>& idx = ctx.idx[layer];
        for (std::size_t pos = 0; pos < idx.size(); ++pos) {
            mark_affected(static_cast<NodeId>(pos), ctx);
            if (++idx[pos] < table[pos].size()) {
                ctx.chosen[layer].set(pos, table[pos][idx[pos]]);
                return true;
            }
            idx[pos] = 0;
            ctx.chosen[layer].set(pos, table[pos][0]);
        }
        return false;
    }

    // --- Packed evaluation over the compiled decision tables. -------------
    //
    // The deepest layer D is scanned 64 leaves per word: its fastest-running
    // digits — the nodes [0, low_count_) — form a "low block" of block_
    // consecutive assignments, and every node keeps a bitset pattern (one
    // known bit + one accept bit per block offset) derived from its class
    // table.  ANDing the per-node pattern words answers 64 leaves at once;
    // Unknown bits fall back to the interpreted per-leaf run, which keeps the
    // deterministic counters and fault records bit-identical to the scalar
    // engine.  Patterns depend only on the digits *outside* the low block
    // (folded into a per-node base index), so they survive across blocks and
    // are rebuilt only for nodes whose cert ball saw a digit change.

    /// Chooses the low block for the deepest layer and precomputes each
    /// node's per-low-digit strides.  Disables the compiled core when a
    /// single node's options exceed the block cap.
    void setup_packing() {
        deepest_ = tables_.layers() - 1;
        const auto& table = tables_.layer(deepest_);
        const std::size_t n = g_.num_nodes();
        block_ = 1;
        low_count_ = 0;
        while (low_count_ < n && block_ < 64) {
            block_ *= table[low_count_].size();
            ++low_count_;
        }
        if (block_ > kMaxBlockLeaves) {
            compiled_ = nullptr;
            compile_ms_paid_ = 0;
            return;
        }
        words_ = static_cast<std::size_t>((block_ + 63) / 64);
        const std::size_t layers = tables_.layers();
        low_strides_.assign(n * low_count_, 0);
        has_low_.assign(n, 0);
        for (NodeId u = 0; u < n; ++u) {
            const auto& node = compiled_->nodes()[u];
            const auto& cls = compiled_->classes()[node.cls];
            for (std::size_t j = 0; j < node.members.size(); ++j) {
                const NodeId m = node.members[j];
                if (m < low_count_) {
                    low_strides_[u * low_count_ + m] =
                        cls.strides[j * layers + deepest_];
                    has_low_[u] = 1;
                }
            }
        }
    }

    /// Marks every node whose table configuration depends on v's digits as
    /// needing a base + pattern rebuild.  No-op until the worker's packed
    /// state exists (initialization computes everything anyway).
    void mark_affected(NodeId v, WorkerContext& ctx) const {
        if (compiled_ == nullptr || !ctx.packed.ready) {
            return;
        }
        for (const NodeId u : compiled_->affected()[v]) {
            ctx.packed.dirty[u] = 1;
        }
    }

    void ensure_packed(WorkerContext& ctx) const {
        PackedState& ps = ctx.packed;
        if (ps.ready) {
            return;
        }
        const std::size_t n = g_.num_nodes();
        ps.base.assign(n, 0);
        ps.known.assign(n * words_, 0);
        ps.accept.assign(n * words_, 0);
        ps.dirty.assign(n, 1);
        ps.low_digits.assign(low_count_, 0);
        ps.ready = true;
    }

    /// u's configuration index with all low-block digits at zero: the sum of
    /// every other (member, layer) digit times its stride.
    std::uint64_t base_for(NodeId u, const WorkerContext& ctx) const {
        const auto& node = compiled_->nodes()[u];
        const auto& cls = compiled_->classes()[node.cls];
        const std::size_t layers = tables_.layers();
        std::uint64_t base = 0;
        for (std::size_t j = 0; j < node.members.size(); ++j) {
            const NodeId m = node.members[j];
            for (std::size_t l = 0; l < layers; ++l) {
                if (l == deepest_ && m < low_count_) {
                    continue;
                }
                base += static_cast<std::uint64_t>(ctx.idx[l][m]) *
                        cls.strides[j * layers + l];
            }
        }
        return base;
    }

    /// Recomputes u's known/accept pattern words over the low block from its
    /// class table, walking the block offsets with an incremental odometer
    /// over the low digits (configuration updated by stride deltas).
    void rebuild_pattern(NodeId u, WorkerContext& ctx) const {
        PackedState& ps = ctx.packed;
        std::uint64_t* known = ps.known.data() + u * words_;
        std::uint64_t* accept = ps.accept.data() + u * words_;
        const std::uint32_t cls = compiled_->nodes()[u].cls;
        if (!has_low_[u]) {
            // No cert member inside the low block: one entry answers the
            // whole block.
            bool acc = false;
            const bool k = compiled_->entry(cls, ps.base[u], acc);
            std::fill(known, known + words_, k ? ~std::uint64_t{0} : 0);
            std::fill(accept, accept + words_, k && acc ? ~std::uint64_t{0} : 0);
            return;
        }
        const std::uint64_t* strides = low_strides_.data() + u * low_count_;
        const auto& table = tables_.layer(deepest_);
        std::fill(known, known + words_, 0);
        std::fill(accept, accept + words_, 0);
        std::fill(ps.low_digits.begin(), ps.low_digits.end(), 0);
        std::uint64_t config = ps.base[u];
        for (std::uint64_t o = 0;; ++o) {
            bool acc = false;
            if (compiled_->entry(cls, config, acc)) {
                known[o >> 6] |= std::uint64_t{1} << (o & 63);
                if (acc) {
                    accept[o >> 6] |= std::uint64_t{1} << (o & 63);
                }
            }
            if (o + 1 == block_) {
                break;
            }
            for (std::size_t v = 0;; ++v) {
                if (++ps.low_digits[v] < table[v].size()) {
                    config += strides[v];
                    break;
                }
                config -= static_cast<std::uint64_t>(ps.low_digits[v] - 1) *
                          strides[v];
                ps.low_digits[v] = 0;
            }
        }
    }

    /// Seeds the deepest layer's digits to the decomposition of `linear`,
    /// dirtying the cert balls of changed *high* digits (low digits are
    /// ranged over by the patterns, so changes there are free).
    void seed_packed_digits(std::uint64_t linear, WorkerContext& ctx) const {
        const auto& table = tables_.layer(deepest_);
        for (NodeId u = 0; u < g_.num_nodes(); ++u) {
            const std::uint64_t size = table[u].size();
            const std::size_t digit = static_cast<std::size_t>(linear % size);
            linear /= size;
            if (u >= low_count_ && ctx.idx[deepest_][u] != digit) {
                mark_affected(u, ctx);
            }
            ctx.idx[deepest_][u] = digit;
        }
    }

    /// Advances the deepest layer's odometer by one whole block (the caller
    /// guarantees no full wrap).
    void advance_high(WorkerContext& ctx) const {
        const auto& table = tables_.layer(deepest_);
        std::vector<std::size_t>& idx = ctx.idx[deepest_];
        for (std::size_t pos = low_count_; pos < idx.size(); ++pos) {
            mark_affected(static_cast<NodeId>(pos), ctx);
            if (++idx[pos] < table[pos].size()) {
                return;
            }
            idx[pos] = 0;
        }
    }

    /// Materializes the full certificate assignment of one packed leaf (low
    /// digits from the block offset, high digits already current) and runs
    /// the interpreted evaluator on it.
    bool materialize_packed_leaf(std::uint64_t offset, WorkerContext& ctx) {
        const auto& table = tables_.layer(deepest_);
        for (NodeId u = 0; u < low_count_; ++u) {
            const std::uint64_t size = table[u].size();
            ctx.idx[deepest_][u] = static_cast<std::size_t>(offset % size);
            offset /= size;
        }
        for (NodeId u = 0; u < g_.num_nodes(); ++u) {
            ctx.chosen[deepest_].set(u, table[u][ctx.idx[deepest_][u]]);
        }
        return evaluate_leaf(ctx);
    }

    /// Scans deepest-layer assignments [begin, end) in order for the first
    /// one whose leaf value equals `want`, 64 leaves per pattern word.
    /// Returns its index, or kNoTerminal when the range is exhausted (or,
    /// for outer scans, when a smaller terminal was already published).
    /// Counters are bit-identical to the scalar scan: table-served leaves
    /// count as leaf cache hits, Unknown leaves run the interpreter (and are
    /// the only source of faults — table entries hold clean runs only).  On
    /// a fallback throw, `*thrown_index` holds the leaf being evaluated.
    std::uint64_t packed_scan(std::uint64_t begin, std::uint64_t end, bool want,
                              bool outer, WorkerContext& ctx,
                              std::uint64_t* thrown_index) {
        ensure_packed(ctx);
        seed_packed_digits(begin, ctx);
        PackedState& ps = ctx.packed;
        const std::size_t n = g_.num_nodes();
        std::uint64_t block_first = begin - begin % block_;
        while (block_first < end) {
            const std::uint64_t bit_lo =
                begin > block_first ? begin - block_first : 0;
            const std::uint64_t bit_hi =
                std::min<std::uint64_t>(block_, end - block_first);
            if (thrown_index != nullptr) {
                *thrown_index = block_first + bit_lo;
            }
            if (outer && block_first + bit_lo >
                             min_terminal_.load(std::memory_order_relaxed)) {
                return kNoTerminal;
            }
            for (NodeId u = 0; u < n; ++u) {
                if (ps.dirty[u]) {
                    ps.base[u] = base_for(u, ctx);
                    rebuild_pattern(u, ctx);
                    ps.dirty[u] = 0;
                }
            }
            for (std::uint64_t w = bit_lo >> 6; (w << 6) < bit_hi; ++w) {
                const std::uint64_t word_base = w << 6;
                const unsigned lo_bit = static_cast<unsigned>(
                    bit_lo > word_base ? bit_lo - word_base : 0);
                const unsigned hi_bit = static_cast<unsigned>(
                    std::min<std::uint64_t>(64, bit_hi - word_base));
                std::uint64_t mask = hi_bit == 64
                                         ? ~std::uint64_t{0}
                                         : (std::uint64_t{1} << hi_bit) - 1;
                mask &= ~((std::uint64_t{1} << lo_bit) - 1);

                std::uint64_t kword = ~std::uint64_t{0};
                std::uint64_t aword = ~std::uint64_t{0};
                for (NodeId u = 0; u < n; ++u) {
                    kword &= ps.known[u * words_ + w];
                    aword &= ps.accept[u * words_ + w];
                }
                ctx.packed_words += n;

                if ((kword & mask) == mask) {
                    // Every leaf in range is table-decided: one AND answers
                    // them all.  A leaf accepts iff every node accepts.
                    const std::uint64_t match = (want ? aword : ~aword) & mask;
                    if (match != 0) {
                        const unsigned pos =
                            static_cast<unsigned>(std::countr_zero(match));
                        const std::uint64_t probed = pos - lo_bit + 1;
                        ctx.tally.machine_runs += probed;
                        ctx.leaves_processed += probed;
                        ctx.leaf_cache_hits += probed;
                        return block_first + word_base + pos;
                    }
                    const std::uint64_t probed = hi_bit - lo_bit;
                    ctx.tally.machine_runs += probed;
                    ctx.leaves_processed += probed;
                    ctx.leaf_cache_hits += probed;
                    continue;
                }
                // Mixed word: walk bits in order, falling back to the
                // interpreter on Unknown entries.
                for (unsigned b = lo_bit; b < hi_bit; ++b) {
                    const std::uint64_t a = block_first + word_base + b;
                    if ((kword >> b) & 1) {
                        ++ctx.tally.machine_runs;
                        ++ctx.leaves_processed;
                        ++ctx.leaf_cache_hits;
                        if ((((aword >> b) & 1) != 0) == want) {
                            return a;
                        }
                        continue;
                    }
                    if (thrown_index != nullptr) {
                        *thrown_index = a;
                    }
                    if (materialize_packed_leaf(a - block_first, ctx) == want) {
                        return a;
                    }
                }
            }
            block_first += block_;
            if (block_first < end) {
                advance_high(ctx);
            }
        }
        return kNoTerminal;
    }

    // --- Leaf evaluation with locality-aware memoization. -----------------

    /// Evaluates one leaf of the game tree.  Under tolerate_faults a probe
    /// that cannot finish cleanly is a recorded loss, not a process abort.
    /// With the view cache on, a leaf all of whose node views were verdicted
    /// by an earlier clean run short-circuits without touching the machine;
    /// faulting leaves never enter the cache, so the deterministic counters
    /// (machine_runs, faulted_runs, probe_faults) are cache-independent.
    bool evaluate_leaf(WorkerContext& ctx) {
        ++ctx.tally.machine_runs;
        ++ctx.leaves_processed;
        const auto list =
            CertificateListAssignment::concatenate(ctx.chosen, g_.num_nodes());

        if (cache_ != nullptr) {
            bool all_hit = true;
            bool all_accept = true;
            ctx.miss_scratch.clear();
            // With partial leaves on, keep scanning past the first miss: the
            // complete miss set is what the ball runs need.
            for (NodeId u = 0; u < g_.num_nodes() && (all_hit || partial_);
                 ++u) {
                keys_->key_for(u, list, ctx.key_scratch);
                const auto verdict = cache_->lookup(ctx.key_scratch);
                if (!verdict.has_value()) {
                    all_hit = false;
                    if (partial_) {
                        ctx.miss_scratch.push_back(u);
                    }
                } else if (*verdict != "1") {
                    all_accept = false;
                }
            }
            if (all_hit) {
                ++ctx.leaf_cache_hits;
                return all_accept;
            }
            if (partial_) {
                const std::optional<bool> value =
                    evaluate_partial(list, all_accept, ctx);
                if (value.has_value()) {
                    ++ctx.partial_leaf_evals;
                    return *value;
                }
                ++ctx.partial_fallbacks;
            }
        }

        ExecutionOptions exec_options = options_.exec;
        if (options_.tolerate_faults &&
            exec_options.on_violation == FaultPolicy::Throw) {
            exec_options.on_violation = FaultPolicy::Record;
        }
        try {
            const ExecutionResult exec =
                run_local(*spec_.machine, g_, id_, list, exec_options);
            ++ctx.local_runs;
            if (!exec.ok() || !exec.faults.empty()) {
                ++ctx.tally.faulted_runs;
                for (const RunFault& f : exec.faults) {
                    ctx.tally.add_fault(f);
                }
                return false;
            }
            // Only *clean, completed* runs are cacheable: an incomplete run's
            // outputs reflect more rounds than the key's radius covers.
            if (cache_ != nullptr && exec.completed) {
                for (NodeId u = 0; u < g_.num_nodes(); ++u) {
                    keys_->key_for(u, list, ctx.key_scratch);
                    cache_->insert(ctx.key_scratch, exec.outputs[u]);
                }
            }
            return exec.accepted;
        } catch (const run_error& e) {
            ++ctx.local_runs;
            if (!options_.tolerate_faults) {
                throw;
            }
            ++ctx.tally.faulted_runs;
            ctx.tally.add_fault(e.fault());
            return false;
        }
    }

    /// The frozen induced radius-R ball of u, built on first use and shared
    /// by every worker for the rest of the solve (the graph and identifiers
    /// are solve-constant; only certificates vary per leaf).
    std::shared_ptr<const BallSim> ball_sim_for(NodeId u) {
        {
            const std::lock_guard<std::mutex> lock(ball_mutex_);
            const auto it = ball_sims_.find(u);
            if (it != ball_sims_.end()) {
                return it->second;
            }
        }
        InducedSubgraph sub = g_.neighborhood(u, keys_->radius());
        const NodeId center = sub.from_original.at(u);
        std::vector<BitString> ids(sub.graph.num_nodes());
        for (NodeId s = 0; s < sub.graph.num_nodes(); ++s) {
            ids[s] = id_(sub.to_original[s]);
        }
        auto sim = std::make_shared<const BallSim>(BallSim{
            std::move(sub), IdentifierAssignment(std::move(ids)), center});
        const std::lock_guard<std::mutex> lock(ball_mutex_);
        return ball_sims_.emplace(u, std::move(sim)).first->second;
    }

    /// Attempts to finish a leaf from per-node induced-ball runs of the
    /// cache-missing nodes (ctx.miss_scratch).  Returns the leaf value when
    /// every ball run was clean and completed — then the full-graph run
    /// would have been clean too, with identical per-node outputs, by
    /// r-locality — and nullopt when any run was unclean or the balls cover
    /// the whole graph anyway, demanding the ordinary full evaluation.
    /// Clean ball verdicts are inserted under the full-graph keys, so the
    /// next leaf touching the same views hits outright.
    std::optional<bool> evaluate_partial(const CertificateListAssignment& list,
                                         bool all_accept, WorkerContext& ctx) {
        std::size_t ball_total = 0;
        std::vector<std::shared_ptr<const BallSim>> sims;
        sims.reserve(ctx.miss_scratch.size());
        for (const NodeId u : ctx.miss_scratch) {
            sims.push_back(ball_sim_for(u));
            ball_total += sims.back()->sub.graph.num_nodes();
        }
        if (ball_total >= g_.num_nodes()) {
            return std::nullopt; // the full run is no more expensive
        }
        ExecutionOptions sim_exec = options_.exec;
        sim_exec.on_violation = FaultPolicy::Record;
        for (std::size_t i = 0; i < ctx.miss_scratch.size(); ++i) {
            const NodeId u = ctx.miss_scratch[i];
            const BallSim& sim = *sims[i];
            const std::size_t sub_n = sim.sub.graph.num_nodes();
            std::vector<std::string> lists(sub_n);
            for (NodeId s = 0; s < sub_n; ++s) {
                lists[s] = list.at(sim.sub.to_original[s]);
            }
            const auto sub_list = CertificateListAssignment::from_raw(
                std::move(lists), spec_.layers.size());
            try {
                const ExecutionResult run = run_local(
                    *spec_.machine, sim.sub.graph, sim.id, sub_list, sim_exec);
                ++ctx.ball_runs;
                if (!run.ok() || !run.faults.empty() || !run.completed) {
                    return std::nullopt;
                }
                const std::string& verdict = run.outputs[sim.center];
                keys_->key_for(u, list, ctx.key_scratch);
                cache_->insert(ctx.key_scratch, verdict);
                if (verdict != "1") {
                    all_accept = false;
                }
            } catch (const run_error&) {
                ++ctx.ball_runs;
                return std::nullopt;
            }
        }
        return all_accept;
    }

    /// Exact game value of the subtree below one outer assignment
    /// (layers 1..L-1 enumerated with the incremental odometer).
    bool inner_value(std::size_t layer, WorkerContext& ctx) {
        if (layer == spec_.layers.size()) {
            return evaluate_leaf(ctx);
        }
        const bool want = existential(layer);
        if (compiled_ != nullptr && layer == deepest_) {
            const std::uint64_t found = packed_scan(
                0, tables_.layer_product(layer), want, /*outer=*/false, ctx,
                /*thrown_index=*/nullptr);
            return found != kNoTerminal ? want : !want;
        }
        seed_layer(layer, 0, ctx);
        while (true) {
            if (inner_value(layer + 1, ctx) == want) {
                return want;
            }
            if (!advance_layer(layer, ctx)) {
                return !want;
            }
        }
    }

    // --- Outer-layer fan-out with deterministic merge. --------------------

    /// Processes outer assignments [begin, end): walks them in order,
    /// stopping at the first decisive/throwing one or when a smaller
    /// terminal index has been published by another worker.  Because
    /// published terminals only ever shrink toward the final minimum, no
    /// assignment below the final terminal is ever skipped — which is what
    /// makes the merged counters bit-identical to the sequential engine's.
    void process_chunk(std::uint64_t chunk_index, WorkerContext& ctx) {
        LPH_SPAN_NAMED(span, "game", "game.chunk");
        span.arg("chunk", chunk_index);
        ChunkOutcome& out = outcomes_[chunk_index];
        const Clock::time_point start = Clock::now();
        ctx.ensure(spec_.layers.size(), g_.num_nodes());
        ctx.tally = Tally{};
        if (compiled_ != nullptr && spec_.layers.size() == 1) {
            // Single-layer game: the outer layer IS the packed layer, so the
            // chunk is one packed range scan.
            std::uint64_t threw_at = out.begin;
            try {
                const std::uint64_t found =
                    packed_scan(out.begin, out.end, want_outer_,
                                /*outer=*/true, ctx, &threw_at);
                if (found != kNoTerminal) {
                    out.terminal = found;
                    publish_terminal(found);
                }
            } catch (...) {
                out.terminal = threw_at;
                out.error = std::current_exception();
                publish_terminal(threw_at);
            }
            out.tally = std::move(ctx.tally);
            ctx.tally = Tally{};
            out.busy_ms = elapsed_ms(start);
            return;
        }
        bool seeded = false;
        for (std::uint64_t a = out.begin; a < out.end; ++a) {
            if (a > min_terminal_.load(std::memory_order_relaxed)) {
                break;
            }
            if (!seeded) {
                seed_layer(0, a, ctx);
                seeded = true;
            }
            bool inner = false;
            bool threw = false;
            try {
                inner = inner_value(1, ctx);
            } catch (...) {
                out.terminal = a;
                out.error = std::current_exception();
                publish_terminal(a);
                threw = true;
            }
            if (threw) {
                break;
            }
            if (inner == want_outer_) {
                out.terminal = a;
                publish_terminal(a);
                break;
            }
            if (!advance_layer(0, ctx)) {
                break;
            }
        }
        out.tally = std::move(ctx.tally);
        ctx.tally = Tally{};
        out.busy_ms = elapsed_ms(start);
    }

    void publish_terminal(std::uint64_t index) {
        std::uint64_t seen = min_terminal_.load(std::memory_order_relaxed);
        while (index < seen &&
               !min_terminal_.compare_exchange_weak(seen, index,
                                                    std::memory_order_acq_rel)) {
        }
    }

    void run_leaf_only(GameResult& result) {
        // No quantifier layers: the game is a single arbiter run.  The lone
        // probe still counts as busy time so worker_utilization() stays
        // meaningful (and consistent with the layered paths).
        const Clock::time_point start = Clock::now();
        WorkerContext ctx;
        ctx.ensure(0, g_.num_nodes());
        result.accepted = evaluate_leaf(ctx);
        result.machine_runs = ctx.tally.machine_runs;
        result.faulted_runs = ctx.tally.faulted_runs;
        result.probe_faults = std::move(ctx.tally.faults);
        collect_perf(result, {&ctx});
        result.stats.busy_ms = elapsed_ms(start);
    }

    void run_layered(GameResult& result) {
        want_outer_ = existential(0);
        const std::uint64_t product = tables_.layer_product(0);

        unsigned participants = options_.threads == 0
                                    ? ThreadPool::default_participants()
                                    : options_.threads;
        participants = std::max(1u, participants);
        if (static_cast<std::uint64_t>(participants) > product) {
            participants = static_cast<unsigned>(product);
        }

        const std::uint64_t chunk_count =
            participants == 1
                ? 1
                : std::min<std::uint64_t>(product, static_cast<std::uint64_t>(
                                                       participants) *
                                                       kChunksPerWorker);
        outcomes_.assign(static_cast<std::size_t>(chunk_count), ChunkOutcome{});
        for (std::uint64_t c = 0; c < chunk_count; ++c) {
            outcomes_[c].begin = product / chunk_count * c +
                                 std::min<std::uint64_t>(c, product % chunk_count);
            outcomes_[c].end = product / chunk_count * (c + 1) +
                               std::min<std::uint64_t>(c + 1, product % chunk_count);
        }
        min_terminal_.store(kNoTerminal, std::memory_order_relaxed);

        std::vector<WorkerContext> contexts;
        if (participants == 1) {
            contexts.resize(1);
            for (std::uint64_t c = 0; c < chunk_count; ++c) {
                process_chunk(c, contexts[0]);
                if (outcomes_[c].terminal != kNoTerminal) {
                    break;
                }
            }
        } else {
            // The shared pool may have more participants than requested;
            // size the per-participant contexts to the actual pool.
            ThreadPool& pool = ThreadPool::shared_for(participants);
            contexts.resize(pool.participants());
            pool.run_all(static_cast<std::size_t>(chunk_count),
                         [&](std::size_t chunk, unsigned participant) {
                             process_chunk(chunk, contexts[participant]);
                         });
            pool_used_ = &pool;
        }

        merge(result, contexts);
    }

    void merge(GameResult& result, std::vector<WorkerContext>& contexts) {
        std::uint64_t terminal = kNoTerminal;
        std::exception_ptr error;
        for (const ChunkOutcome& out : outcomes_) {
            if (out.terminal < terminal) {
                terminal = out.terminal;
                error = out.error;
            }
        }
        for (const ChunkOutcome& out : outcomes_) {
            if (out.begin > terminal) {
                break; // ranges are ascending; nothing past the terminal counts
            }
            result.machine_runs += out.tally.machine_runs;
            result.faulted_runs += out.tally.faulted_runs;
            for (const RunFault& f : out.tally.faults) {
                if (result.probe_faults.size() >= kMaxRecordedFaults) {
                    break;
                }
                result.probe_faults.push_back(f);
            }
        }

        std::vector<const WorkerContext*> ctx_ptrs;
        for (const WorkerContext& ctx : contexts) {
            ctx_ptrs.push_back(&ctx);
        }
        collect_perf(result, ctx_ptrs);
        result.stats.workers = static_cast<unsigned>(contexts.size());
        result.stats.chunks = outcomes_.size();
        for (const ChunkOutcome& out : outcomes_) {
            result.stats.busy_ms += out.busy_ms;
        }

        if (error) {
            std::rethrow_exception(error);
        }

        if (terminal != kNoTerminal) {
            result.accepted = want_outer_;
            if (existential(0) && result.accepted) {
                result.witness = outer_assignment(terminal);
            }
        } else {
            result.accepted = !want_outer_;
        }
    }

    /// Reconstructs the outer certificate assignment at a linear index.
    CertificateAssignment outer_assignment(std::uint64_t linear) const {
        const auto& table = tables_.layer(0);
        std::vector<BitString> certs(g_.num_nodes());
        for (NodeId u = 0; u < g_.num_nodes(); ++u) {
            const std::uint64_t size = table[u].size();
            certs[u] = table[u][static_cast<std::size_t>(linear % size)];
            linear /= size;
        }
        return CertificateAssignment(std::move(certs));
    }

    /// Accumulates the solve's counters into the session registry under the
    /// `game.` prefix (counters, so repeated solves sum up).
    void record_session_metrics(const GameResult& result) const {
        if (options_.obs == nullptr) {
            return;
        }
        obs::MetricsRegistry& metrics = options_.obs->metrics();
        const GameStats& stats = result.stats;
        metrics.accumulate(
            "game.",
            {
                {"solves", 1.0},
                {"machine_runs", static_cast<double>(result.machine_runs)},
                {"faulted_runs", static_cast<double>(result.faulted_runs)},
                {"leaves_processed", static_cast<double>(stats.leaves_processed)},
                {"local_runs", static_cast<double>(stats.local_runs)},
                {"leaf_cache_hits", static_cast<double>(stats.leaf_cache_hits)},
                {"node_cache_hits", static_cast<double>(stats.node_cache_hits)},
                {"node_cache_misses", static_cast<double>(stats.node_cache_misses)},
                {"cache_evictions", static_cast<double>(stats.cache_evictions)},
                {"chunks", static_cast<double>(stats.chunks)},
                {"wall_ms", stats.wall_ms},
                {"busy_ms", stats.busy_ms},
                {"compile_ms", stats.compile_ms},
                {"orbit_hits", static_cast<double>(stats.orbit_hits)},
                {"packed_words_evaluated",
                 static_cast<double>(stats.packed_words_evaluated)},
                {"partial_leaf_evals",
                 static_cast<double>(stats.partial_leaf_evals)},
                {"ball_runs", static_cast<double>(stats.ball_runs)},
                {"partial_fallbacks",
                 static_cast<double>(stats.partial_fallbacks)},
            });
        metrics.set("game.workers", static_cast<double>(stats.workers));
        metrics.set("game.compiled_classes",
                    static_cast<double>(stats.compiled_classes));
        if (pool_used_ != nullptr) {
            // Shared-pool lifetime totals (jobs/tasks/steals), so the gauges
            // reflect the pool's state as of the latest solve.
            metrics.absorb("", pool_used_->stats().to_metrics());
        }
    }

    void collect_perf(GameResult& result,
                      const std::vector<const WorkerContext*>& contexts) {
        for (const WorkerContext* ctx : contexts) {
            result.stats.leaves_processed += ctx->leaves_processed;
            result.stats.local_runs += ctx->local_runs;
            result.stats.leaf_cache_hits += ctx->leaf_cache_hits;
            result.stats.packed_words_evaluated += ctx->packed_words;
            result.stats.partial_leaf_evals += ctx->partial_leaf_evals;
            result.stats.ball_runs += ctx->ball_runs;
            result.stats.partial_fallbacks += ctx->partial_fallbacks;
        }
    }

    const GameSpec& spec_;
    const GameTables& tables_;
    const LabeledGraph& g_;
    const IdentifierAssignment& id_;
    const GameOptions& options_;

    std::unique_ptr<ViewKeyBuilder> keys_;
    std::unique_ptr<ViewCache> owned_cache_;
    ViewCache* cache_ = nullptr;
    ThreadPool* pool_used_ = nullptr;

    // Partial-leaf state (GameOptions::partial_leaves).
    bool partial_ = false;
    std::mutex ball_mutex_;
    std::unordered_map<NodeId, std::shared_ptr<const BallSim>> ball_sims_;

    // Compiled-backend state (null / empty on the interpreted path).
    const CompiledGameCore* compiled_ = nullptr;
    double compile_ms_paid_ = 0;
    std::size_t deepest_ = 0;   ///< the packed layer (layers - 1)
    std::size_t low_count_ = 0; ///< nodes forming the low block
    std::uint64_t block_ = 1;   ///< leaves per block (>= 64 unless tiny)
    std::size_t words_ = 0;     ///< 64-bit words per pattern
    /// low_strides_[u * low_count_ + v]: stride of digit (v, deepest) in u's
    /// class table, or 0 when v is not one of u's cert members.
    std::vector<std::uint64_t> low_strides_;
    std::vector<std::uint8_t> has_low_;

    bool want_outer_ = true;
    std::vector<ChunkOutcome> outcomes_;
    std::atomic<std::uint64_t> min_terminal_{kNoTerminal};
};

} // namespace

obs::MetricList GameStats::to_metrics() const {
    return {
        {"leaves", static_cast<double>(leaves_processed)},
        {"leaves_per_sec", leaves_per_sec()},
        {"cache_hit_rate", cache_hit_rate()},
        {"leaf_cache_hits", static_cast<double>(leaf_cache_hits)},
        {"local_runs", static_cast<double>(local_runs)},
        {"node_cache_hits", static_cast<double>(node_cache_hits)},
        {"node_cache_misses", static_cast<double>(node_cache_misses)},
        {"cache_evictions", static_cast<double>(cache_evictions)},
        {"workers", static_cast<double>(workers)},
        {"worker_utilization", worker_utilization()},
        {"busy_ms", busy_ms},
        {"chunks", static_cast<double>(chunks)},
        {"compile_ms", compile_ms},
        {"orbit_hits", static_cast<double>(orbit_hits)},
        {"compiled_classes", static_cast<double>(compiled_classes)},
        {"packed_words_evaluated", static_cast<double>(packed_words_evaluated)},
        {"partial_leaf_evals", static_cast<double>(partial_leaf_evals)},
        {"ball_runs", static_cast<double>(ball_runs)},
        {"partial_fallbacks", static_cast<double>(partial_fallbacks)},
    };
}

GameResult play_game(const GameSpec& spec, const GameTables& tables,
                     const LabeledGraph& g, const IdentifierAssignment& id,
                     const GameOptions& options) {
    GameSolver solver(spec, tables, g, id, options);
    return solver.run();
}

GameResult play_game(const GameSpec& spec, const LabeledGraph& g,
                     const IdentifierAssignment& id, const GameOptions& options) {
    const GameTables tables(spec, g, id);
    return play_game(spec, tables, g, id, options);
}

std::optional<CertificateAssignment>
find_accepting_certificate(const LocalMachine& verifier,
                           const CertificateDomain& domain, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const GameOptions& options) {
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    spec.starts_existential = true;
    GameResult result = play_game(spec, g, id, options);
    if (!result.accepted) {
        return std::nullopt;
    }
    return result.witness;
}

std::uint64_t game_tree_size(const GameSpec& spec, const LabeledGraph& g,
                             const IdentifierAssignment& id) {
    return GameTables(spec, g, id).tree_size();
}

std::uint64_t game_tree_size(const GameTables& tables) {
    return tables.tree_size();
}

} // namespace lph
