#include "hierarchy/game.hpp"

#include "core/check.hpp"

#include <limits>

namespace lph {

RawBitStringDomain::RawBitStringDomain(std::size_t max_length) {
    check(max_length <= 16, "RawBitStringDomain: keep max_length tiny");
    options_.push_back("");
    for (std::size_t len = 1; len <= max_length; ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t value = 0; value < count; ++value) {
            options_.push_back(encode_unsigned_width(value, static_cast<int>(len)));
        }
    }
}

namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) {
        return 0;
    }
    return a > kSaturated / b ? kSaturated : a * b;
}

/// Per-layer option table: options[u] for every node.
using OptionTable = std::vector<std::vector<BitString>>;

OptionTable build_options(const CertificateDomain& domain, const LabeledGraph& g,
                          const IdentifierAssignment& id) {
    OptionTable table(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        table[u] = domain.options(g, id, u);
        check(!table[u].empty(), "play_game: a certificate domain is empty");
    }
    return table;
}

std::uint64_t table_product(const OptionTable& table) {
    std::uint64_t product = 1;
    for (const auto& options : table) {
        product = saturating_mul(product, options.size());
    }
    return product;
}

class GameSolver {
public:
    GameSolver(const GameSpec& spec, const LabeledGraph& g,
               const IdentifierAssignment& id, const GameOptions& options)
        : spec_(spec), g_(g), id_(id), options_(options) {
        for (const CertificateDomain* domain : spec.layers) {
            tables_.push_back(build_options(*domain, g, id));
            check(table_product(tables_.back()) <= options.max_assignments_per_layer,
                  "play_game: layer assignment space exceeds the guard");
        }
    }

    GameResult run() {
        GameResult result;
        std::vector<CertificateAssignment> chosen;
        result.accepted = value(0, chosen, result);
        return result;
    }

private:
    bool existential(std::size_t layer) const {
        return spec_.starts_existential ? layer % 2 == 0 : layer % 2 == 1;
    }

    /// Evaluates one leaf of the game tree.  Under tolerate_faults a probe
    /// that cannot finish cleanly is a recorded loss, not a process abort.
    bool evaluate_leaf(const std::vector<CertificateAssignment>& chosen,
                       GameResult& result) {
        static constexpr std::size_t kMaxRecordedFaults = 64;
        const auto list =
            CertificateListAssignment::concatenate(chosen, g_.num_nodes());
        ExecutionOptions exec_options = options_.exec;
        if (options_.tolerate_faults &&
            exec_options.on_violation == FaultPolicy::Throw) {
            exec_options.on_violation = FaultPolicy::Record;
        }
        try {
            const ExecutionResult exec =
                run_local(*spec_.machine, g_, id_, list, exec_options);
            ++result.machine_runs;
            if (!exec.ok() || !exec.faults.empty()) {
                ++result.faulted_runs;
                for (const RunFault& f : exec.faults) {
                    if (result.probe_faults.size() >= kMaxRecordedFaults) {
                        break;
                    }
                    result.probe_faults.push_back(f);
                }
                return false;
            }
            return exec.accepted;
        } catch (const run_error& e) {
            if (!options_.tolerate_faults) {
                throw;
            }
            ++result.machine_runs;
            ++result.faulted_runs;
            if (result.probe_faults.size() < kMaxRecordedFaults) {
                result.probe_faults.push_back(e.fault());
            }
            return false;
        }
    }

    bool value(std::size_t layer, std::vector<CertificateAssignment>& chosen,
               GameResult& result) {
        if (layer == spec_.layers.size()) {
            return evaluate_leaf(chosen, result);
        }
        const bool want = existential(layer);
        const OptionTable& table = tables_[layer];
        std::vector<std::size_t> idx(g_.num_nodes(), 0);
        while (true) {
            std::vector<BitString> certs(g_.num_nodes());
            for (NodeId u = 0; u < g_.num_nodes(); ++u) {
                certs[u] = table[u][idx[u]];
            }
            chosen.emplace_back(std::move(certs));
            const bool inner = value(layer + 1, chosen, result);
            if (inner == want && layer == 0 && spec_.layers.size() == 1 && want) {
                result.witness = chosen.back();
            }
            chosen.pop_back();
            if (inner == want) {
                return want;
            }
            // Odometer increment.
            std::size_t pos = 0;
            while (pos < idx.size()) {
                if (++idx[pos] < table[pos].size()) {
                    break;
                }
                idx[pos] = 0;
                ++pos;
            }
            if (pos == idx.size()) {
                return !want;
            }
        }
    }

    const GameSpec& spec_;
    const LabeledGraph& g_;
    const IdentifierAssignment& id_;
    const GameOptions& options_;
    std::vector<OptionTable> tables_;
};

} // namespace

GameResult play_game(const GameSpec& spec, const LabeledGraph& g,
                     const IdentifierAssignment& id, const GameOptions& options) {
    check(spec.machine != nullptr, "play_game: no machine");
    GameSolver solver(spec, g, id, options);
    return solver.run();
}

std::optional<CertificateAssignment>
find_accepting_certificate(const LocalMachine& verifier,
                           const CertificateDomain& domain, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const GameOptions& options) {
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    spec.starts_existential = true;
    GameResult result = play_game(spec, g, id, options);
    if (!result.accepted) {
        return std::nullopt;
    }
    return result.witness;
}

std::uint64_t game_tree_size(const GameSpec& spec, const LabeledGraph& g,
                             const IdentifierAssignment& id) {
    std::uint64_t total = 1;
    for (const CertificateDomain* domain : spec.layers) {
        total = saturating_mul(total, table_product(build_options(*domain, g, id)));
    }
    return total;
}

} // namespace lph
