#include "hierarchy/fagin.hpp"

#include "core/check.hpp"
#include "dtm/local.hpp"

#include <functional>

namespace lph {

std::vector<ElementTuple> local_tuple_universe(const GraphStructure& gs,
                                               std::size_t arity, int radius,
                                               bool node_elements_only) {
    const LabeledGraph& g = gs.graph();
    std::vector<ElementTuple> universe;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        // Candidate elements: those owned by nodes within `radius` of u.
        std::vector<Element> nearby;
        for (NodeId v : g.ball(u, radius)) {
            nearby.push_back(gs.node_element(v));
            if (!node_elements_only) {
                for (std::size_t i = 1; i <= g.label(v).size(); ++i) {
                    nearby.push_back(gs.bit_element(v, i));
                }
            }
        }
        // First elements owned by u.
        std::vector<Element> firsts{gs.node_element(u)};
        if (!node_elements_only) {
            for (std::size_t i = 1; i <= g.label(u).size(); ++i) {
                firsts.push_back(gs.bit_element(u, i));
            }
        }
        for (Element first : firsts) {
            if (arity == 1) {
                universe.push_back({first});
                continue;
            }
            std::vector<std::size_t> idx(arity - 1, 0);
            while (true) {
                ElementTuple tuple{first};
                for (std::size_t i = 0; i + 1 < arity; ++i) {
                    tuple.push_back(nearby[idx[i]]);
                }
                universe.push_back(std::move(tuple));
                std::size_t pos = 0;
                while (pos < idx.size()) {
                    if (++idx[pos] < nearby.size()) {
                        break;
                    }
                    idx[pos] = 0;
                    ++pos;
                }
                if (pos == idx.size()) {
                    break;
                }
            }
        }
    }
    return universe;
}

namespace {

/// Recursively quantifies the sentence's relation variables over subset
/// enumeration of their universes, calling `leaf` with the complete
/// assignment.  Variables are processed one at a time; polarity follows the
/// block structure.
class RelationGame {
public:
    using Leaf = std::function<bool(const std::map<std::string, RelationValue>&)>;

    RelationGame(const PrefixSentence& prefix, const GraphStructure& gs,
                 const FaginOptions& options)
        : prefix_(prefix), options_(options) {
        const int radius = options.locality_radius > 0 ? options.locality_radius
                                                       : 2 * prefix.radius;
        for (const SOBlock& block : prefix.blocks) {
            for (const SOVariable& var : block.variables) {
                flat_vars_.push_back(var);
                universes_.push_back(local_tuple_universe(
                    gs, var.arity, radius, options.node_elements_only));
                check(universes_.back().size() <= options.max_tuples_per_variable,
                      "fagin: tuple universe for " + var.name + " has " +
                          std::to_string(universes_.back().size()) +
                          " tuples; shrink the instance");
            }
        }
    }

    bool play(const Leaf& leaf, std::uint64_t& leaves) {
        std::map<std::string, RelationValue> assignment;
        return quantify(0, assignment, leaf, leaves);
    }

private:
    bool quantify(std::size_t index,
                  std::map<std::string, RelationValue>& assignment, const Leaf& leaf,
                  std::uint64_t& leaves) {
        if (index == flat_vars_.size()) {
            ++leaves;
            return leaf(assignment);
        }
        const SOVariable& var = flat_vars_[index];
        const auto& universe = universes_[index];
        const bool want = var.existential;
        const std::uint64_t count = std::uint64_t{1} << universe.size();
        for (std::uint64_t mask = 0; mask < count; ++mask) {
            RelationValue value(var.arity);
            for (std::size_t i = 0; i < universe.size(); ++i) {
                if ((mask >> i) & 1) {
                    value.insert(universe[i]);
                }
            }
            assignment.insert_or_assign(var.name, std::move(value));
            const bool inner = quantify(index + 1, assignment, leaf, leaves);
            assignment.erase(var.name);
            if (inner == want) {
                return want;
            }
        }
        return !want;
    }

    const PrefixSentence& prefix_;
    const FaginOptions& options_;
    std::vector<SOVariable> flat_vars_;
    std::vector<std::vector<ElementTuple>> universes_;
};

} // namespace

FaginReport check_fagin_agreement(const Formula& sentence, const LabeledGraph& g,
                                  const IdentifierAssignment& id,
                                  const FaginOptions& options) {
    const PrefixSentence prefix = decompose_prefix_sentence(sentence);
    const GraphStructure gs(g);
    RelationGame game(prefix, gs, options);

    FaginReport report;

    // Logic side: evaluate the matrix "forall x. psi" directly.
    const Formula matrix = fl::forall(prefix.matrix_var, prefix.matrix_body);
    report.formula_value = game.play(
        [&](const std::map<std::string, RelationValue>& relations) {
            Assignment sigma;
            sigma.so = relations;
            return evaluate(gs.structure(), matrix, sigma);
        },
        report.formula_leaves);

    if (!options.run_machine_side) {
        report.machine_value = report.formula_value;
        report.agree = true;
        return report;
    }

    // Machine side: slice relations into per-layer certificates and run the
    // generic arbiter of Theorem 12.
    const FormulaArbiter arbiter(sentence);
    report.machine_value = game.play(
        [&](const std::map<std::string, RelationValue>& relations) {
            std::vector<CertificateAssignment> layers;
            for (const SOBlock& block : prefix.blocks) {
                layers.push_back(slice_relations_to_certificates(
                    gs, id, block.variables, relations));
            }
            const auto list =
                CertificateListAssignment::concatenate(layers, g.num_nodes());
            return run_local(arbiter, g, id, list, options.exec).accepted;
        },
        report.machine_leaves);

    report.agree = report.formula_value == report.machine_value;
    return report;
}

bool eval_sentence_on_graph(const Formula& sentence, const LabeledGraph& g,
                            const FaginOptions& options) {
    const PrefixSentence prefix = decompose_prefix_sentence(sentence);
    const GraphStructure gs(g);
    RelationGame game(prefix, gs, options);
    const Formula matrix = fl::forall(prefix.matrix_var, prefix.matrix_body);
    std::uint64_t leaves = 0;
    return game.play(
        [&](const std::map<std::string, RelationValue>& relations) {
            Assignment sigma;
            sigma.so = relations;
            return evaluate(gs.structure(), matrix, sigma);
        },
        leaves);
}

} // namespace lph
