#pragma once

#include "dtm/gather.hpp"
#include "hierarchy/game.hpp"

#include <memory>

namespace lph {

/// Section 6: restrictive arbiters.
///
/// A *certificate restrictor* for layer i is a machine that checks the
/// certificates of layers 1..i against an imposed restriction; quantifiers of
/// the restrictive game range only over assignments every restrictor
/// accepts.  Lemma 8 shows this adds no power: `PermissiveWrapper` performs
/// the proof's conversion, simulating the restrictors, propagating error
/// flags, and issuing the polarity-dependent early verdicts, so that the
/// *unrestricted* game over the wrapped machine has the same value.
///
/// Restrictors here are NeighborhoodGatherMachine instances (every machine in
/// this library is), which lets the wrapper compute any component's verdict
/// at any nearby node from its own, larger, gathered view.

struct RestrictiveGameSpec {
    /// The restrictive arbiter M^a.
    const NeighborhoodGatherMachine* arbiter = nullptr;
    /// Certificate space per layer.
    std::vector<const CertificateDomain*> layers;
    /// Restrictor per layer; nullptr means the trivial (always-accepting)
    /// restrictor.
    std::vector<const NeighborhoodGatherMachine*> restrictors;
    bool starts_existential = true;
};

/// Plays the restrictive game: layer-i assignments that some restrictor
/// j <= i rejects are excluded from quantification (an existential layer
/// with no valid choice is false; a universal one is true).
GameResult play_restrictive_game(const RestrictiveGameSpec& spec,
                                 const LabeledGraph& g,
                                 const IdentifierAssignment& id,
                                 const GameOptions& options = {});

/// The Lemma 8 conversion: a permissive machine equivalent to the
/// restrictive arbiter.  Each node recomputes every component's verdict for
/// every node within flag-propagation range from its own enlarged view,
/// forms the AND-ed ok-flags, and applies the proof's early-verdict rule
/// (reject when the first violated layer is existential, accept when it is
/// universal) before falling back to the arbiter's verdict.
class PermissiveWrapper : public NeighborhoodGatherMachine {
public:
    PermissiveWrapper(const NeighborhoodGatherMachine& arbiter,
                      std::vector<const NeighborhoodGatherMachine*> restrictors,
                      bool starts_existential);

    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;

    int id_radius() const override;

private:
    bool layer_existential(std::size_t layer) const {
        return starts_existential_ ? layer % 2 == 0 : layer % 2 == 1;
    }

    const NeighborhoodGatherMachine& arbiter_;
    std::vector<const NeighborhoodGatherMachine*> restrictors_;
    bool starts_existential_;
    int flag_range_;
};

/// Extracts the sub-view of radius `radius` around `center` from a larger
/// gathered view (used by the wrapper to re-run components at other nodes).
NeighborhoodView subview(const NeighborhoodView& view, NodeId center, int radius);

/// Truncates every node's certificate list to its first `layers` layers.
std::vector<std::string> truncate_certificates(const std::vector<std::string>& certs,
                                               std::size_t layers);

} // namespace lph
