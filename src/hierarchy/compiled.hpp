#pragma once

#include "dtm/execution.hpp"
#include "hierarchy/game.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace lph {

/// Budget knobs for table compilation.  A view class whose configuration
/// space exceeds the per-class cap (or would push the total past the global
/// cap) is kept as an all-unknown class: its leaves fall back to the
/// interpreted per-leaf path, so the caps only ever cost performance.
struct CompiledLimits {
    std::uint64_t max_configs_per_class = 1 << 12;
    std::uint64_t max_total_configs = 1 << 20;
    /// Profitability gate: compilation costs one ball run per in-budget
    /// configuration, an amount known before any simulation, while what it
    /// can save is bounded by the exhaustive leaf space.  When the ratio is
    /// positive and planned configurations exceed ratio x tree_size, compile()
    /// declines (returns nullptr) so small short-circuiting solves — a
    /// serving workload of tiny one-shot graphs, say — keep the interpreted
    /// path's early exits instead of paying for tables they will never
    /// amortize.  0 disables the gate (always compile when compilable).
    double max_cost_ratio = 0;
};

/// One machine's per-view behaviour, compiled to flat decision tables.
///
/// For every node u the game engine ultimately needs one bit per leaf: does
/// u output "1" after a clean run?  By the locality invariant the view cache
/// already relies on (DESIGN.md "Parallel certificate-game engine"), that
/// bit is a function of u's canonical attributed R-ball plus the certificate
/// lists of u's *cert members* (the nodes within R-1).  compile() therefore:
///
///  1. groups nodes into *view classes* — equal ViewKeyBuilder static prefix
///     and equal per-member per-layer option lists imply the same decision
///     function, so one table serves the whole orbit;
///  2. fills each class's table by running the machine on the class
///     representative's induced R-ball once per *configuration* (one
///     mixed-radix digit per (member, layer) option choice), recording
///     Accept / Reject for clean completed runs and Unknown otherwise;
///  3. exposes the tables as packed bitsets (one known bit + one accept bit
///     per configuration) so the solver can AND 64 leaves per instruction.
///
/// Unknown entries (faulting, incomplete, or over-budget configurations)
/// make the solver fall back to the interpreted whole-graph run for that
/// leaf, which keeps the deterministic counters (machine_runs, faulted_runs,
/// probe_faults) bit-identical to the interpreted engine.
class CompiledGameCore {
public:
    /// Flat decision table of one view class.  Configurations are indexed in
    /// mixed radix over the (member, layer) digits: digit (j, l) has radix
    /// sizes[j * layers + l] and stride strides[j * layers + l], with
    /// (j=0, l=0) the fastest-running digit.
    struct ClassTable {
        std::vector<std::uint32_t> sizes;
        std::vector<std::uint64_t> strides;
        std::uint64_t configs = 0;
        bool filled = false; ///< false = over budget, every entry Unknown
        std::vector<std::uint64_t> known;  ///< bitset over configs
        std::vector<std::uint64_t> accept; ///< bitset over configs
        std::uint64_t members = 0;         ///< orbit cardinality
        NodeId representative = 0;
    };

    struct NodeTable {
        std::uint32_t cls = 0;
        /// u's cert members in the canonical ViewKeyBuilder order; the j-th
        /// member's option digit for layer l sits at stride
        /// classes[cls].strides[j * layers + l].
        std::vector<NodeId> members;
    };

    /// Compiles the machine's per-view behaviour for one (spec, tables,
    /// graph, identifiers, exec) context, or returns nullptr when the
    /// context is not compilable — the exact conditions under which the view
    /// cache refuses to cache (fault plans, deadlines, byte caps, ids that
    /// are not locally unique), plus leaf-only games.
    static std::unique_ptr<CompiledGameCore>
    compile(const GameSpec& spec, const GameTables& tables,
            const LabeledGraph& g, const IdentifierAssignment& id,
            const ExecutionOptions& exec, const CompiledLimits& limits = {});

    const std::vector<ClassTable>& classes() const { return classes_; }
    const std::vector<NodeTable>& nodes() const { return nodes_; }

    /// affected()[v] lists the nodes u with v among u's cert members — the
    /// nodes whose table configuration changes when v's digit advances.
    const std::vector<std::vector<NodeId>>& affected() const {
        return affected_;
    }

    int radius() const { return radius_; }
    std::size_t layers() const { return layers_; }

    /// Looks up one entry; returns false for Unknown (accept_out untouched).
    bool entry(std::uint32_t cls, std::uint64_t config, bool& accept_out) const {
        const ClassTable& table = classes_[cls];
        if (!table.filled) {
            return false;
        }
        const std::uint64_t word = config >> 6;
        const std::uint64_t bit = config & 63;
        if (((table.known[word] >> bit) & 1) == 0) {
            return false;
        }
        accept_out = ((table.accept[word] >> bit) & 1) != 0;
        return true;
    }

    /// Nodes served by a class another node already paid to compile
    /// (sum over classes of |orbit| - 1).
    std::uint64_t orbit_hits() const { return orbit_hits_; }
    std::uint64_t table_entries() const { return table_entries_; }
    std::uint64_t unknown_entries() const { return unknown_entries_; }
    double compile_ms() const { return compile_ms_; }

    /// True when every entry of every class is decided — the solver never
    /// needs the interpreted fallback for this context.
    bool fully_known() const { return unknown_entries_ == 0; }

    /// Exhaustive leaf count with per-orbit contributions multiplied out:
    /// the product over classes of (the representative's per-layer option
    /// count product) raised to the orbit cardinality.  Saturates exactly
    /// like GameTables::tree_size(), and equals it bit for bit.
    std::uint64_t tree_size() const;

private:
    std::vector<ClassTable> classes_;
    std::vector<NodeTable> nodes_;
    std::vector<std::vector<NodeId>> affected_;
    int radius_ = 0;
    std::size_t layers_ = 0;
    std::uint64_t orbit_hits_ = 0;
    std::uint64_t table_entries_ = 0;
    std::uint64_t unknown_entries_ = 0;
    double compile_ms_ = 0;
};

} // namespace lph
