#include "hierarchy/compiled.hpp"

#include "core/check.hpp"
#include "dtm/view_cache.hpp"
#include "obs/trace.hpp"

#include <chrono>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

namespace lph {

namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) {
        return 0;
    }
    return a > kSaturated / b ? kSaturated : a * b;
}

/// Class signature: the canonical rooted-ball serialization plus every
/// member's per-layer option list.  Equal signatures mean the node's verdict
/// is the same function of the (positionally indexed) member digits — the
/// ball serialization pins the view, the option lists pin what each digit
/// *means* — so one compiled table is sound for the whole class.
std::string class_signature(const ViewKeyBuilder& keys, const GameTables& tables,
                            NodeId u) {
    std::string sig = keys.static_prefix(u);
    sig += '\x01';
    for (const NodeId member : keys.cert_members(u)) {
        for (std::size_t l = 0; l < tables.layers(); ++l) {
            for (const BitString& option : tables.layer(l)[member]) {
                sig += option;
                sig += '\x02';
            }
            sig += '\x03';
        }
        sig += '\x04';
    }
    return sig;
}

} // namespace

std::unique_ptr<CompiledGameCore>
CompiledGameCore::compile(const GameSpec& spec, const GameTables& tables,
                          const LabeledGraph& g, const IdentifierAssignment& id,
                          const ExecutionOptions& exec,
                          const CompiledLimits& limits) {
    check(spec.machine != nullptr, "CompiledGameCore: no machine");
    check(tables.layers() == spec.layers.size(),
          "CompiledGameCore: tables were built for a different spec");
    if (tables.layers() == 0) {
        return nullptr; // leaf-only games have nothing to enumerate
    }
    const ViewKeyBuilder keys(*spec.machine, g, id, exec);
    if (!keys.cacheable()) {
        return nullptr; // same gates as the view cache (see ViewKeyBuilder)
    }

    LPH_SPAN_NAMED(span, "game", "game.compile");
    const auto start = std::chrono::steady_clock::now();

    auto core = std::make_unique<CompiledGameCore>();
    core->radius_ = keys.radius();
    core->layers_ = tables.layers();
    const std::size_t layers = tables.layers();
    const std::size_t n = g.num_nodes();

    core->nodes_.resize(n);
    core->affected_.resize(n);
    std::unordered_map<std::string, std::uint32_t> class_of;
    for (NodeId u = 0; u < n; ++u) {
        NodeTable& node = core->nodes_[u];
        node.members = keys.cert_members(u);
        for (const NodeId member : node.members) {
            core->affected_[member].push_back(u);
        }
        const auto [it, inserted] = class_of.emplace(
            class_signature(keys, tables, u),
            static_cast<std::uint32_t>(core->classes_.size()));
        node.cls = it->second;
        if (inserted) {
            ClassTable table;
            table.representative = u;
            table.sizes.reserve(node.members.size() * layers);
            table.strides.reserve(node.members.size() * layers);
            std::uint64_t stride = 1;
            bool overflow = false;
            for (const NodeId member : node.members) {
                for (std::size_t l = 0; l < layers; ++l) {
                    const std::uint64_t size = tables.layer(l)[member].size();
                    table.sizes.push_back(static_cast<std::uint32_t>(size));
                    table.strides.push_back(stride);
                    const std::uint64_t next = saturating_mul(stride, size);
                    overflow = overflow || next == kSaturated;
                    stride = next;
                }
            }
            table.configs = overflow ? kSaturated : stride;
            core->classes_.push_back(std::move(table));
        } else {
            ++core->orbit_hits_;
        }
        ++core->classes_[node.cls].members;
    }

    // Profitability gate: planned ball runs (mirroring the fill loop's
    // budget logic) against the exhaustive leaf space the tables can save.
    if (limits.max_cost_ratio > 0) {
        std::uint64_t planned = 0;
        for (const ClassTable& table : core->classes_) {
            if (table.configs > limits.max_configs_per_class ||
                planned + table.configs > limits.max_total_configs) {
                continue;
            }
            planned += table.configs;
        }
        if (static_cast<double>(planned) >
            limits.max_cost_ratio * static_cast<double>(tables.tree_size())) {
            return nullptr;
        }
    }

    // Fill each in-budget class by simulating the machine on the class
    // representative's induced R-ball, one run per configuration.  The ball
    // is attribute-identical to the representative's ball in g (shortest
    // paths between ball nodes stay inside the ball), so by the view-cache
    // soundness invariant a clean completed ball run yields the exact
    // verdict the full-graph run would give the center.  Nodes on the
    // distance-R boundary ring get their layer-0 options as dummy
    // certificates: their certificate content cannot reach the center
    // within R rounds, only their identifiers (which order message slots)
    // matter, and those are preserved.
    std::uint64_t total_configs = 0;
    for (ClassTable& table : core->classes_) {
        core->table_entries_ += table.members * table.configs;
        if (table.configs > limits.max_configs_per_class ||
            total_configs + table.configs > limits.max_total_configs) {
            core->unknown_entries_ += table.members * table.configs;
            continue;
        }
        total_configs += table.configs;

        const NodeId rep = table.representative;
        const std::vector<NodeId>& members = core->nodes_[rep].members;
        const InducedSubgraph sub = g.neighborhood(rep, core->radius_);
        const NodeId center = sub.from_original.at(rep);
        const std::size_t sub_n = sub.graph.num_nodes();

        std::vector<BitString> sub_ids(sub_n);
        std::vector<std::string> default_lists(sub_n);
        for (NodeId s = 0; s < sub_n; ++s) {
            const NodeId orig = sub.to_original[s];
            sub_ids[s] = id(orig);
            std::vector<std::string> parts(layers);
            for (std::size_t l = 0; l < layers; ++l) {
                parts[l] = tables.layer(l)[orig].front();
            }
            default_lists[s] = join_hash(parts);
        }
        const IdentifierAssignment sub_id(std::move(sub_ids));

        ExecutionOptions sim_exec = exec;
        sim_exec.on_violation = FaultPolicy::Record;

        const std::uint64_t words = (table.configs + 63) / 64;
        table.known.assign(static_cast<std::size_t>(words), 0);
        table.accept.assign(static_cast<std::size_t>(words), 0);
        std::vector<std::string> member_parts(layers);
        for (std::uint64_t config = 0; config < table.configs; ++config) {
            std::vector<std::string> lists = default_lists;
            for (std::size_t j = 0; j < members.size(); ++j) {
                const NodeId s = sub.from_original.at(members[j]);
                for (std::size_t l = 0; l < layers; ++l) {
                    const std::size_t flat = j * layers + l;
                    const std::uint64_t digit =
                        (config / table.strides[flat]) % table.sizes[flat];
                    member_parts[l] = tables.layer(l)[members[j]]
                                          [static_cast<std::size_t>(digit)];
                }
                lists[s] = join_hash(member_parts);
            }
            const ExecutionResult run = run_local(
                *spec.machine, sub.graph, sub_id,
                CertificateListAssignment::from_raw(std::move(lists), layers),
                sim_exec);
            if (run.ok() && run.faults.empty() && run.completed) {
                table.known[static_cast<std::size_t>(config >> 6)] |=
                    std::uint64_t{1} << (config & 63);
                if (run.outputs[center] == "1") {
                    table.accept[static_cast<std::size_t>(config >> 6)] |=
                        std::uint64_t{1} << (config & 63);
                }
            } else {
                core->unknown_entries_ += table.members;
            }
        }
        table.filled = true;
    }

    core->compile_ms_ = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    span.arg("classes", core->classes_.size());
    span.arg("nodes", n);
    span.arg("orbit_hits", core->orbit_hits_);
    return core;
}

std::uint64_t CompiledGameCore::tree_size() const {
    std::uint64_t total = 1;
    for (const ClassTable& table : classes_) {
        std::uint64_t center_product = 1;
        for (std::size_t l = 0; l < layers_; ++l) {
            center_product = saturating_mul(center_product, table.sizes[l]);
        }
        for (std::uint64_t i = 0; i < table.members; ++i) {
            total = saturating_mul(total, center_product);
        }
    }
    return total;
}

} // namespace lph
