#pragma once

#include "graph/graph.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace lph {

/// The PointsTo game of Example 4, played semantically.
///
/// Eve claims some node satisfies a target predicate.  She chooses a
/// parent-pointer assignment P (each node points at itself — a root — or at
/// a neighbor); Adam challenges with a node set X; Eve answers with charges
/// Y subject to: roots are positively charged and satisfy the target
/// predicate, children outside X copy their parent's charge, children inside
/// X invert it.
///
/// Given P and X, Eve's optimal Y is forced by propagation (this is exactly
/// her strategy in the paper's proof), so the game value is computed by
/// enumerating P and X only.  Moreover, her winning P exists iff a
/// forest of pointers toward predicate-satisfying roots exists, which the
/// shortcut evaluation exploits; the exhaustive mode replays the full
/// Exists-P Forall-X game to confirm the equivalence.

/// A parent assignment: parents[u] == u marks a root.
using ParentAssignment = std::vector<NodeId>;

/// Target predicate theta(x) of the schema (e.g. "x is unselected").
using NodePredicate = std::function<bool(const LabeledGraph&, NodeId)>;

struct PointsToGameResult {
    bool eve_wins = false;
    std::uint64_t parent_assignments_tried = 0;
    std::uint64_t adam_moves_tried = 0;
    std::optional<ParentAssignment> winning_parents;
};

/// Checks whether P is a valid win for Eve against EVERY Adam move: all
/// roots satisfy theta, and the pointer graph is a forest (a cycle lets Adam
/// pick a one-node X that makes the charge constraints unsatisfiable).
bool parents_beat_every_adam_move(const LabeledGraph& g, const ParentAssignment& p,
                                  const NodePredicate& theta);

/// For fixed P and X, Eve's forced charges; nullopt when no consistent Y
/// exists (Adam wins this move).  Exposed for tests and for the literal
/// replay of the paper's game.
std::optional<std::vector<bool>> forced_charges(const LabeledGraph& g,
                                                const ParentAssignment& p,
                                                const std::vector<bool>& x,
                                                const NodePredicate& theta);

/// The full Exists-P Forall-X game by enumeration (guarded; the P space is
/// prod(deg(u)+1)).  Sets winning_parents on a win.
PointsToGameResult play_points_to_game(const LabeledGraph& g,
                                       const NodePredicate& theta,
                                       std::uint64_t max_parent_assignments = 5'000'000);

/// Eve's constructive strategy from the paper: BFS pointers toward the
/// nearest theta-node; nullopt when no node satisfies theta.
std::optional<ParentAssignment> constructive_parents(const LabeledGraph& g,
                                                     const NodePredicate& theta);

/// Example 4: NOT-ALL-SELECTED via the game (theta = "label is not 1").
bool exists_unselected_by_game(const LabeledGraph& g);

/// Example 5: NON-3-COLORABLE via the outer Forall-C game: Adam proposes an
/// arbitrary assignment of color sets to nodes, and Eve plays the PointsTo
/// game with theta = "ill-colored" (no color, several colors, or a neighbor
/// sharing the color).  Exponential in 8^n; guarded.
struct NonColorableGameResult {
    bool non_colorable = false;            ///< Eve wins the Pi_4 game
    std::uint64_t adam_colorings_tried = 0;
};

NonColorableGameResult
non_three_colorable_by_game(const LabeledGraph& g,
                            std::uint64_t max_colorings = 5'000'000);

} // namespace lph
