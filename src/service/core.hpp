#pragma once

#include "dtm/view_cache.hpp"
#include "obs/metrics.hpp"
#include "service/admission/admission.hpp"
#include "service/graph_store.hpp"
#include "service/memo.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lph {

namespace obs {
class Session;
}

namespace service {

struct BuiltGame; // registry.hpp

/// Tuning knobs of one ServiceCore.
struct ServiceOptions {
    /// Worker threads draining the request queue; 0 = one per hardware
    /// thread.  Each worker runs the engine sequentially (GameOptions::threads
    /// = 1): the serving layer's parallelism is across requests, and nesting
    /// pools inside pools would only add contention.
    unsigned threads = 0;

    /// Bounded request queue: submissions beyond this are rejected
    /// immediately with a structured QueueFull response (admission control,
    /// never a hang).
    std::size_t queue_capacity = 256;

    /// Deadline applied to requests that do not carry their own; 0 = none.
    /// Deadlines cover queue wait too: a request that expires before a worker
    /// picks it up fails with DeadlineExceeded without touching the engine.
    double default_deadline_ms = 0;

    std::size_t memo_entries = 1 << 12;
    std::size_t view_cache_entries = 1 << 18;

    /// Upper bound on one micro-batch (requests sharing a graph digest that
    /// one worker drains together).
    std::size_t max_batch = 32;

    /// Server-side cap on oracle_check corpus sizes.
    std::size_t max_oracle_instances = 200;

    WireLimits wire;

    /// The three serving optimizations, individually toggleable so the load
    /// generator can measure each against the one-engine-call-per-request
    /// baseline (all three off).
    bool memoize_results = true;
    bool batch_by_graph = true;
    bool share_view_cache = true;

    /// Test/bench mode: no worker threads are spawned; callers pump the
    /// queue with drain_some()/drain().  Makes queue-full and batching
    /// behavior deterministic.
    bool manual_drain = false;

    /// Warm-start persistence (DESIGN.md "Resilience"): when set, the memo
    /// and the shared view caches are loaded from this snapshot file at
    /// construction (a missing/corrupt/mismatched file cold-starts cleanly)
    /// and saved back on stop() — and, with snapshot_period_ms > 0, by a
    /// background thread every period.
    std::string snapshot_path;
    double snapshot_period_ms = 0;

    /// Identity of this core inside a supervised pool: worker_index >= 0
    /// and the 1-based generation (how many times the slot has started) are
    /// echoed in stats/health bodies and service.* metrics so clients can
    /// see restarts.  -1 = standalone.
    int worker_index = -1;
    std::uint64_t worker_generation = 0;

    /// Slow-request logging: a request whose stage sum (queue + batch + exec
    /// + write) exceeds this many milliseconds emits one structured
    /// `slow_request` JSON line to stderr with the full breakdown and hit
    /// flags.  0 = off (the default).
    double slow_ms = 0;

    /// Cost-model admission control (default-off).  When enabled, workload
    /// requests are priced at submit: over max_cost_us they are rejected
    /// with a structured AdmissionRejected response; over defer_cost_us they
    /// are routed to a separate big-job queue drained by its own
    /// big_job_threads workers, so interactive latency never pays for them.
    admission::AdmissionOptions admission;

    /// Optional observability session for publish_metrics().
    obs::Session* obs = nullptr;
};

/// Monotone counters of one ServiceCore (plus queue-depth snapshots).
struct ServiceStats {
    std::uint64_t submitted = 0;   ///< admitted into the queue
    std::uint64_t rejected = 0;    ///< refused at admission (queue full)
    std::uint64_t protocol_errors = 0; ///< unparseable lines (transport-reported)
    std::uint64_t completed = 0;   ///< responses with status "ok"
    std::uint64_t errors = 0;      ///< responses with status "error"
    std::uint64_t memo_served = 0; ///< completed straight from the result memo
    std::uint64_t batches = 0;     ///< micro-batches drained
    std::uint64_t batched_requests = 0; ///< requests inside those batches
    /// Requests whose deadline expired while still queued.  They error with
    /// DeadlineExceeded but never reach the engine, so they are excluded from
    /// batched_requests and busy_ms (they would otherwise inflate avg_batch
    /// and the busy/throughput ratios the loadgen reports).
    std::uint64_t expired_in_queue = 0;
    std::uint64_t queue_depth = 0;     ///< at snapshot time
    std::uint64_t max_queue_depth = 0; ///< high-water mark
    double busy_ms = 0;  ///< summed per-request service time
    unsigned workers = 0;

    // Incremental serving (DESIGN.md "Incremental serving").
    std::uint64_t graphs_resident = 0;   ///< resident-store size at snapshot time
    std::uint64_t patches_applied = 0;   ///< graph_patch requests applied
    std::uint64_t patch_incremental = 0; ///< patch queries served incrementally
    std::uint64_t patch_full = 0;        ///< patch queries that recomputed fully
    std::uint64_t patch_dirty_nodes = 0; ///< summed dirty-set sizes
    std::uint64_t patch_total_nodes = 0; ///< summed patched-graph sizes

    // Cost-model admission control (all 0 while disabled).
    std::uint64_t admission_admitted = 0; ///< priced and sent interactive
    std::uint64_t admission_rejected = 0; ///< refused: predicted > max cost
    std::uint64_t admission_deferred = 0; ///< routed to the big-job queue
    std::uint64_t big_queue_depth = 0;    ///< at snapshot time

    double patch_dirty_fraction() const {
        return patch_total_nodes > 0
                   ? static_cast<double>(patch_dirty_nodes) /
                         static_cast<double>(patch_total_nodes)
                   : 0.0;
    }

    double avg_batch() const {
        return batches > 0
                   ? static_cast<double>(batched_requests) /
                         static_cast<double>(batches)
                   : 0.0;
    }

    /// Metric list (unprefixed names: submitted, rejected, ...); ServiceCore
    /// absorbs it under `service.` so the loadgen BENCH rows and `--metrics=`
    /// JSON share one schema with the engine rows.
    obs::MetricList to_metrics() const;
};

/// The batched query-serving core: a bounded MPMC request queue, a worker
/// pool, per-request deadline propagation, micro-batching of requests that
/// share a graph, a per-machine shared ViewCache, and a cross-request result
/// memo keyed by (instance digest, query).
///
/// Transports (service/server.hpp) parse wire lines into Requests and submit
/// them; the core never touches sockets or streams.
class ServiceCore {
public:
    explicit ServiceCore(ServiceOptions options = {});
    ~ServiceCore();

    ServiceCore(const ServiceCore&) = delete;
    ServiceCore& operator=(const ServiceCore&) = delete;

    /// Queues one request.  Returns a future that resolves to the response;
    /// when the queue is at capacity the future is already resolved to a
    /// QueueFull rejection.
    std::future<Response> submit(Request request);

    /// Synchronous convenience: submit + wait (pumping the queue inline when
    /// manual_drain is set).
    Response call(Request request);

    /// Transport-side accounting for lines that never parsed into a Request.
    void note_protocol_error();

    /// Manual drain (manual_drain mode, or extra pump threads): processes
    /// one micro-batch; false when the queue was empty.
    bool drain_some();

    /// Drains until the queue is empty.
    void drain();

    /// Stops the workers after the queue empties; idempotent.  Every
    /// already-admitted request is served before the workers exit.
    void stop();

    std::size_t queue_depth() const;
    ServiceStats stats() const;
    ResultMemoStats memo_stats() const;
    /// Aggregated over the per-machine shared view caches.
    ViewCacheStats view_cache_stats() const;
    SnapshotStats snapshot_stats() const;

    /// The memo + shared view caches as snapshot sections ("memo", then one
    /// "view:<machine>" per shared cache), oldest-first for LRU replay.
    SnapshotData snapshot_data() const;

    /// Replays snapshot sections into the memo / shared view caches (without
    /// polluting hit/miss counters); unknown sections are ignored so a newer
    /// writer's extra sections degrade gracefully.  Returns entries admitted.
    std::size_t restore_from(const SnapshotData& data);

    /// Saves snapshot_path now (atomic tmp+rename); false (with a structured
    /// stderr line) on I/O failure.  No-op returning true without a path.
    bool save_snapshot();

    /// Publishes service.* gauges (core counters, memo.*, cache.*) into the
    /// session registry handed in ServiceOptions::obs; no-op without one.
    void publish_metrics();

    const ServiceOptions& options() const { return options_; }

    /// Renders one response body for `request` executed inline, bypassing
    /// queue/memo/batching — the loadgen's "one engine call per request"
    /// baseline helper and the stats/health renderer.
    Response serve_unbatched(const Request& request);

private:
    struct Pending {
        Request request;
        std::promise<Response> promise;
        std::chrono::steady_clock::time_point enqueued;
        std::uint64_t digest = 0;
    };

    struct BatchContext; // per-batch shared graph preparation

    /// Drains the interactive queue (big = false) or the big-job queue
    /// (big = true); one body, two queues, so admitted and deferred work get
    /// identical serving semantics and differ only in worker budget.
    void worker_loop(bool big);
    std::vector<Pending> take_batch_locked(std::deque<Pending>& from);
    /// Prices one workload request against the cost model; Admit-everything
    /// when admission is disabled or the type is control-plane.
    admission::Decision admission_decision(const Request& request);
    void process_batch(std::vector<Pending> batch);
    /// Serves one request.  Returns false when the request expired in the
    /// queue (it then counts toward expired_in_queue, not batched_requests
    /// or busy time).  `batch_start` anchors the queue/batch stage split of
    /// the response's timing object.
    bool serve_one(Pending& pending, BatchContext& ctx, std::size_t batch_size,
                   std::chrono::steady_clock::time_point batch_start);
    /// Copies the resident graph a "digest" reference names into `request`;
    /// false when the digest does not resolve (the caller reports
    /// UnknownGraph).
    bool resolve_graph_ref(Request& request);
    /// Executes the request and renders the response body; throws on failure.
    std::string execute(const Request& request, BatchContext& ctx,
                        double deadline_ms);
    /// graph_patch: mutates the resident graph, invalidates stale memo
    /// entries, and re-evaluates the optional machine query over the dirty
    /// region (DESIGN.md "Incremental serving").
    std::string execute_patch(const Request& request, BatchContext& ctx,
                              double deadline_ms);
    /// The layers-0 fast path: merges retained per-node verdicts with
    /// induced-ball reruns of the dirty nodes; falls back to one full
    /// run_local when retention is unavailable or any ball run is unclean.
    std::string evaluate_patch_decider(const Request& request,
                                       const BuiltGame& game,
                                       const PatchOutcome& outcome,
                                       double deadline_ms);
    std::string render_stats_body(bool full);
    std::string render_health_body();
    /// Fills the response's timing/trace envelope, feeds the stage
    /// histograms, and emits the slow-request line when configured.
    void finish_timing(Response& response, const Request& request,
                       double queue_ms, double batch_ms, double exec_ms,
                       std::chrono::steady_clock::time_point exec_end);
    /// Absorbs every service.* metric (core counters, memo.*, cache.*,
    /// snapshot.*, worker identity) plus the stage histograms into
    /// `registry` — the single collection point behind publish_metrics(),
    /// the stats wire body, and the `--metrics=` file.
    void collect_metrics(obs::MetricsRegistry& registry) const;
    ViewCache* cache_for(const std::string& machine);
    void load_snapshot();
    void snapshot_loop();

    ServiceOptions options_;
    std::chrono::steady_clock::time_point start_time_;
    std::int64_t pid_ = 0; ///< serving process, echoed in timing objects

    /// Per-stage latency histograms (service.latency_us, service.queue_us,
    /// service.batch_us, service.exec_us, service.write_us), recorded on the
    /// serve path and exported through collect_metrics().
    obs::MetricsRegistry stage_metrics_;

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Pending> queue_;
    /// Deferred big jobs; guarded by queue_mutex_ like queue_, but drained
    /// by the dedicated big-job workers (big_cv_) so a storm of expensive
    /// requests can never occupy the interactive workers.
    std::condition_variable big_cv_;
    std::deque<Pending> big_queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
    std::vector<std::thread> big_workers_;

    ResultMemo memo_;
    GraphStore graphs_;
    mutable std::mutex cache_mutex_;
    std::map<std::string, std::unique_ptr<ViewCache>> view_caches_;

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> memo_served_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batched_requests_{0};
    std::atomic<std::uint64_t> expired_in_queue_{0};
    std::atomic<std::uint64_t> patches_applied_{0};
    std::atomic<std::uint64_t> patch_incremental_{0};
    std::atomic<std::uint64_t> patch_full_{0};
    std::atomic<std::uint64_t> patch_dirty_nodes_{0};
    std::atomic<std::uint64_t> patch_total_nodes_{0};
    std::atomic<std::uint64_t> admission_admitted_{0};
    std::atomic<std::uint64_t> admission_rejected_{0};
    std::atomic<std::uint64_t> admission_deferred_{0};
    std::atomic<std::uint64_t> max_queue_depth_{0};
    std::atomic<std::uint64_t> busy_us_{0};

    mutable std::mutex snapshot_mutex_; ///< guards snapshot_stats_ + saves
    SnapshotStats snapshot_stats_;
    std::thread snapshot_thread_;
    std::mutex snapshot_wake_mutex_;
    std::condition_variable snapshot_wake_cv_;
    bool snapshot_stop_ = false;
};

} // namespace service
} // namespace lph
