#pragma once

#include "obs/log_histogram.hpp"
#include "service/json.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lph {
namespace service {

/// One worker's parsed `{"type":"stats","detail":"full"}` response: identity,
/// the flat service.* metric snapshot, and the bucket-level histograms.
/// The scrape protocol (DESIGN.md "Observability") is just the wire stats
/// response — there is no side channel; anything lph_top can aggregate, any
/// client can read.
struct WorkerSnapshot {
    std::int64_t pid = 0;
    std::uint64_t generation = 0;
    double uptime_ms = 0;
    int worker_index = -1; ///< -1 = standalone (no supervisor identity)
    std::map<std::string, double> metrics;
    std::map<std::string, obs::LogHistogram> histograms;

    /// Convenience lookup into `metrics`; fallback when absent.
    double metric(const std::string& name, double fallback = 0.0) const;
};

/// Rebuilds a LogHistogram from its wire form
/// {"count":N,"sum":S,"min":m,"max":M,"buckets":[[index,count],...]}.
/// Throws precondition_error on malformed input or when the bucket counts
/// do not add up to "count" (a merge over inconsistent data would silently
/// produce wrong percentiles).
obs::LogHistogram parse_log_histogram(const JsonValue& value);

/// Parses one full-stats wire response line into a snapshot; nullopt when
/// the line is not an ok stats response carrying a metrics object.
std::optional<WorkerSnapshot> parse_worker_snapshot(const std::string& line);

/// The cluster-wide aggregate lph_top renders: one snapshot per distinct
/// worker pid, counters summed, histograms merged bucket-by-bucket (the
/// merge is associative and commutative, so scrape order cannot matter).
struct ClusterView {
    std::vector<WorkerSnapshot> workers; ///< sorted by pid
    std::map<std::string, double> summed_metrics;
    std::map<std::string, obs::LogHistogram> histograms;
};

/// Merges worker snapshots (deduplicated by pid, last one wins) into a
/// cluster view.  Every metric is summed — ratio metrics (hit_rate,
/// avg_batch) must be recomputed from the summed numerators/denominators by
/// the consumer, not read from summed_metrics.
ClusterView merge_workers(std::vector<WorkerSnapshot> snapshots);

} // namespace service
} // namespace lph
