#pragma once

#include "service/admission/cost_model.hpp"
#include "service/wire.hpp"

namespace lph {
namespace service {
namespace admission {

/// Admission-control policy (DESIGN.md "Language frontend & admission
/// control").  Default-off: an un-configured ServiceCore behaves exactly as
/// before.  When enabled, every workload request is priced by the cost
/// model before it is queued:
///
///   predicted >  max_cost_us    structured AdmissionRejected response,
///                               never queued
///   predicted >  defer_cost_us  routed to the big-job queue with its own
///                               worker budget, so interactive requests
///                               never wait behind it
///   otherwise                   admitted to the interactive queue
struct AdmissionOptions {
    bool enabled = false;
    double max_cost_us = 5e6;      ///< reject above this; 0 = never reject
    double defer_cost_us = 250e3;  ///< defer above this; 0 = never defer
    unsigned big_job_threads = 1;  ///< worker budget of the big-job queue
};

enum class Verdict { Admit, Defer, Reject };

struct Decision {
    Verdict verdict = Verdict::Admit;
    double predicted_us = 0;
    double limit_us = 0; ///< the limit that drove a Defer/Reject verdict
};

/// Whether this request type carries priceable engine work.  Control-plane
/// types (stats, health, graph_register, graph_patch) are always admitted:
/// their cost is bounded by the wire limits, and patches must never be
/// reordered behind a queue decision.
bool is_workload(RequestType type);

/// The cost-model features of one request.  `resolved_nodes` supplies the
/// graph size when the request references a resident graph by digest
/// (0 when the digest is unknown — the serve path will fail it anyway).
struct Features {
    std::size_t nodes = 0;
    int radius = 0;
    std::size_t quantifiers = 0;
    int alternation_depth = 0;
    std::string backend = "interpreted";
};

Features features_for(const Request& request, std::size_t resolved_nodes);

double predict_request_cost_us(
    const Request& request, std::size_t resolved_nodes,
    const CostModel& model = calibrated_cost_model());

Decision decide(const Request& request, std::size_t resolved_nodes,
                const AdmissionOptions& options,
                const CostModel& model = calibrated_cost_model());

} // namespace admission
} // namespace service
} // namespace lph
