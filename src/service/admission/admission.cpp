#include "service/admission/admission.hpp"

#include "lang/analyze.hpp"
#include "service/registry.hpp"

#include <map>
#include <mutex>

namespace lph {
namespace service {
namespace admission {

namespace {

Features analyzed_features(const lang::FormulaAnalysis& analysis) {
    Features f;
    f.radius = analysis.radius;
    f.quantifiers = analysis.fo_quantifiers + analysis.conn_quantifiers;
    f.alternation_depth = static_cast<int>(analysis.so_quantifiers);
    return f;
}

/// Features of a corpus formula, cached by name: the deep corpus sentences
/// (hamiltonian and friends) are moderately expensive to build, and pricing
/// a request must stay far cheaper than serving it.  "random" depends on
/// fseed and is analyzed per request — generated sentences are tiny.
Features logic_features(const std::string& name, std::uint64_t fseed) {
    static std::mutex mutex;
    static std::map<std::string, Features> cache;
    if (name != "random") {
        const std::lock_guard<std::mutex> lock(mutex);
        const auto it = cache.find(name);
        if (it != cache.end()) {
            return it->second;
        }
    }
    const Features f =
        analyzed_features(lang::analyze(formula_by_name(name, fseed)));
    if (name != "random") {
        const std::lock_guard<std::mutex> lock(mutex);
        cache.emplace(name, f);
    }
    return f;
}

} // namespace

bool is_workload(RequestType type) {
    switch (type) {
    case RequestType::Game:
    case RequestType::Logic:
    case RequestType::Eval:
    case RequestType::Decide:
    case RequestType::OracleCheck:
        return true;
    case RequestType::Stats:
    case RequestType::Health:
    case RequestType::GraphRegister:
    case RequestType::GraphPatch:
        return false;
    }
    return false;
}

Features features_for(const Request& request, std::size_t resolved_nodes) {
    Features f;
    f.nodes = request.has_graph ? request.graph.num_nodes() : resolved_nodes;
    switch (request.type) {
    case RequestType::Game:
        // Radius-1 views; each certificate layer alternates the game.
        f.radius = 1;
        f.alternation_depth = request.layers;
        f.backend = request.backend;
        break;
    case RequestType::Logic: {
        const Features lf = logic_features(request.formula, request.fseed);
        f.radius = lf.radius;
        f.quantifiers = lf.quantifiers;
        f.alternation_depth = lf.alternation_depth;
        break;
    }
    case RequestType::Eval: {
        Features ef = analyzed_features(lang::analyze(request.eval_formula));
        ef.nodes = f.nodes;
        return ef;
    }
    case RequestType::Decide:
        // Hand-assigned shapes for the decision procedures: eulerian is a
        // degree scan, coloring backtracks one subset family, hamiltonian
        // searches permutations (the deepest of the three).
        if (request.problem == "eulerian") {
            f.radius = 1;
            f.quantifiers = 1;
        } else if (request.problem == "coloring") {
            f.radius = 1;
            f.quantifiers = 2;
            f.alternation_depth = 1;
        } else {
            f.radius = 2;
            f.quantifiers = 3;
            f.alternation_depth = 2;
        }
        break;
    case RequestType::OracleCheck:
    case RequestType::Stats:
    case RequestType::Health:
    case RequestType::GraphRegister:
    case RequestType::GraphPatch:
        break;
    }
    return f;
}

double predict_request_cost_us(const Request& request,
                               std::size_t resolved_nodes,
                               const CostModel& model) {
    if (request.type == RequestType::OracleCheck) {
        // Harness instances have their own generated graphs; the request's
        // only cost lever is how many of them it asks for.
        return model.oracle_instance_us *
               static_cast<double>(request.instances);
    }
    const Features f = features_for(request, resolved_nodes);
    return predict_cost_us(f.nodes, f.radius, f.quantifiers,
                           f.alternation_depth, f.backend, model);
}

Decision decide(const Request& request, std::size_t resolved_nodes,
                const AdmissionOptions& options, const CostModel& model) {
    Decision d;
    d.predicted_us = predict_request_cost_us(request, resolved_nodes, model);
    if (options.max_cost_us > 0 && d.predicted_us > options.max_cost_us) {
        d.verdict = Verdict::Reject;
        d.limit_us = options.max_cost_us;
    } else if (options.defer_cost_us > 0 &&
               d.predicted_us > options.defer_cost_us) {
        d.verdict = Verdict::Defer;
        d.limit_us = options.defer_cost_us;
    }
    return d;
}

} // namespace admission
} // namespace service
} // namespace lph
