#include "service/admission/cost_model.hpp"

#include "service/admission/calibration.hpp"

#include <algorithm>
#include <cmath>

namespace lph {
namespace service {
namespace admission {

const CostModel& calibrated_cost_model() {
    static const CostModel model = [] {
        CostModel m;
        m.base_us = kCalibratedBaseUs;
        m.per_element_us = kCalibratedPerElementUs;
        m.elements_per_node = kCalibratedElementsPerNode;
        return m;
    }();
    return model;
}

double predict_cost_us(std::size_t nodes, int radius, std::size_t quantifiers,
                       int alternation_depth, const std::string& backend,
                       const CostModel& model) {
    // m = 3n + 1 matches the calibration fit: one element per node plus the
    // label-bit elements the structure mints alongside it.
    const double m =
        model.elements_per_node * static_cast<double>(nodes) + 1.0;
    const double linear = model.base_us + model.per_element_us * m;

    // Each FO quantifier multiplies the visit count by the domain size.
    const double fo_visits = std::pow(
        m, std::min(static_cast<double>(quantifiers), model.fo_exponent_cap));

    // A radius-r query touches the r-ball around each anchor; the ball grows
    // geometrically with the radius until it swallows the whole structure.
    const double ball =
        std::min(m, std::pow(model.avg_degree, std::max(radius, 0)));

    // Each SO alternation enumerates subsets of the element universe:
    // 2^(depth * m), capped — past the cap the prediction is already orders
    // of magnitude beyond any admission limit.
    const double so_exponent =
        std::min(model.so_exponent_cap,
                 static_cast<double>(std::max(alternation_depth, 0)) * m);
    const double so_factor = std::pow(2.0, so_exponent);

    const double backend_factor =
        backend == "compiled" ? model.compiled_factor : 1.0;
    return linear * fo_visits * ball * so_factor * backend_factor;
}

} // namespace admission
} // namespace service
} // namespace lph
