#pragma once

#include <cstddef>
#include <string>

namespace lph {
namespace service {
namespace admission {

/// The admission cost model: a calibrated linear element-scan term scaled by
/// multiplicative structure factors.  The linear coefficients (base_us,
/// per_element_us, elements_per_node) come from calibration.hpp, which
/// scripts/cost_calibrate.py fits against the committed
/// BM_Row_LPComplete_Eulerian baseline rows; the structural factors model
/// how the evaluator's search space grows and are deliberately pessimistic —
/// admission exists to keep the service responsive, not to meter accurately.
struct CostModel {
    double base_us;            ///< fixed per-request overhead
    double per_element_us;     ///< linear scan cost per structure element
    double elements_per_node;  ///< structure elements minted per graph node
    double avg_degree = 4.0;   ///< ball growth per locality-radius step
    double fo_exponent_cap = 12.0;  ///< largest modeled m^quantifiers power
    double so_exponent_cap = 48.0;  ///< largest modeled lg of SO enumeration
    double compiled_factor = 0.25;  ///< compiled backend speedup vs eval
    double oracle_instance_us = 2000.0; ///< per oracle_check instance
};

/// The model with the committed calibration table baked in.
const CostModel& calibrated_cost_model();

/// Predicted serving cost in microseconds of one request with:
///   nodes              graph size n (m = elements_per_node * n + 1)
///   radius             locality radius r of the query's view/ball
///   quantifiers        first-order quantifier count p (visits ~ m^p)
///   alternation_depth  SO-quantifier / layer alternation depth
///                      (enumeration ~ 2^(depth * m))
///   backend            "compiled" scales by compiled_factor, anything else
///                      (interpreted leaf cores, the formula evaluator) by 1
///
/// Strictly monotone in each of nodes / radius / quantifiers /
/// alternation_depth until the corresponding cap saturates (the radius ball
/// at m, the exponents at fo_exponent_cap / so_exponent_cap) — anything past
/// a cap is far beyond every admission limit anyway.
double predict_cost_us(std::size_t nodes, int radius, std::size_t quantifiers,
                       int alternation_depth, const std::string& backend,
                       const CostModel& model = calibrated_cost_model());

} // namespace admission
} // namespace service
} // namespace lph
