#pragma once

#include "hierarchy/game.hpp"
#include "logic/formula.hpp"

#include <memory>
#include <string>
#include <vector>

namespace lph {
namespace service {

/// A fully-wired certificate game built from wire-request parameters: the
/// machine and domains are owned here, `spec` points into them.
struct BuiltGame {
    std::unique_ptr<LocalMachine> machine;
    std::vector<std::unique_ptr<CertificateDomain>> domains;
    GameSpec spec;
};

/// Machines clients can name in a `game` request.  The corpus mirrors the
/// differential-oracle corpus (so fuzz findings replay through the service)
/// plus the plain LP-deciders:
///   allsel      ALL-SELECTED decider (radius 0)
///   eulerian    EULERIAN decider via Euler's theorem (radius 1)
///   coloring2/3/4  k-coloring NLP verifier (radius 1)
///   implies     two-layer Eve/Adam arbiter (adam bit -> eve bit per node)
///   fussy       deliberately step-bound-violating verifier (fault paths)
std::vector<std::string> machine_names();
bool is_machine_name(const std::string& name);

/// Builds the named machine with `layers` certificate layers (0 = plain
/// decision run, no quantifiers) on the Sigma side when `sigma` is set.
/// Throws precondition_error for unknown names or layers outside [0, 3].
BuiltGame build_game(const std::string& machine, int layers, bool sigma);

/// Sentences clients can name in a `logic` request: all_selected,
/// two_colorable, three_colorable, not_all_selected, hamiltonian,
/// non_hamiltonian, plus "random" (seeded FO sentence from `fseed`).
std::vector<std::string> formula_names();
bool is_formula_name(const std::string& name);
Formula formula_by_name(const std::string& name, std::uint64_t fseed);

} // namespace service
} // namespace lph
