#include "service/snapshot.hpp"

#include "service/wire.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace lph {
namespace service {

namespace {

constexpr char kMagic[8] = {'L', 'P', 'H', 'S', 'N', 'A', 'P', '\n'};

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
}

/// Bounds-checked little-endian reader over the snapshot bytes.
class Cursor {
public:
    explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

    bool read_u32(std::uint32_t* v) {
        if (bytes_.size() - pos_ < 4) {
            return false;
        }
        *v = 0;
        for (int i = 0; i < 4; ++i) {
            *v |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(bytes_[pos_ + i]))
                  << (8 * i);
        }
        pos_ += 4;
        return true;
    }

    bool read_u64(std::uint64_t* v) {
        if (bytes_.size() - pos_ < 8) {
            return false;
        }
        *v = 0;
        for (int i = 0; i < 8; ++i) {
            *v |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(bytes_[pos_ + i]))
                  << (8 * i);
        }
        pos_ += 8;
        return true;
    }

    bool read_bytes(std::size_t n, std::string* out) {
        if (bytes_.size() - pos_ < n) {
            return false;
        }
        out->assign(bytes_, pos_, n);
        pos_ += n;
        return true;
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return bytes_.size() - pos_; }

private:
    const std::string& bytes_;
    std::size_t pos_ = 0;
};

SnapshotReadResult rejected(std::string* error, const std::string& why) {
    if (error != nullptr) {
        *error = why;
    }
    return SnapshotReadResult::Rejected;
}

} // namespace

const char* to_string(SnapshotReadResult result) {
    switch (result) {
    case SnapshotReadResult::Loaded: return "loaded";
    case SnapshotReadResult::Missing: return "missing";
    case SnapshotReadResult::Rejected: return "rejected";
    }
    return "unknown";
}

obs::MetricList SnapshotStats::to_metrics() const {
    return {
        {"snapshot.loads", static_cast<double>(loads)},
        {"snapshot.rejected", static_cast<double>(rejected)},
        {"snapshot.saves", static_cast<double>(saves)},
        {"snapshot.save_failures", static_cast<double>(save_failures)},
        {"snapshot.entries_loaded", static_cast<double>(entries_loaded)},
        {"snapshot.entries_saved", static_cast<double>(entries_saved)},
    };
}

std::string encode_snapshot(const SnapshotData& data) {
    std::string out(kMagic, sizeof(kMagic));
    put_u32(out, kSnapshotVersion);
    put_u32(out, static_cast<std::uint32_t>(data.sections.size()));
    for (const SnapshotSection& section : data.sections) {
        put_u32(out, static_cast<std::uint32_t>(section.name.size()));
        out += section.name;
        put_u64(out, section.entries.size());
        for (const auto& [key, value] : section.entries) {
            put_u32(out, static_cast<std::uint32_t>(key.size()));
            out += key;
            put_u32(out, static_cast<std::uint32_t>(value.size()));
            out += value;
        }
    }
    // Checksum everything after the magic, so version/count corruption is
    // detected the same way as entry corruption.
    put_u64(out, fnv1a64(out.substr(sizeof(kMagic))));
    return out;
}

SnapshotReadResult decode_snapshot(const std::string& bytes, SnapshotData* out,
                                   std::string* error) {
    out->sections.clear();
    if (bytes.size() < sizeof(kMagic) + 4 + 4 + 8) {
        return rejected(error, "file too short (" +
                                   std::to_string(bytes.size()) + " bytes)");
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        return rejected(error, "bad magic");
    }
    // Verify the trailing checksum before trusting any length field.
    const std::string payload =
        bytes.substr(sizeof(kMagic), bytes.size() - sizeof(kMagic) - 8);
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        stored |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                      bytes[bytes.size() - 8 + static_cast<std::size_t>(i)]))
                  << (8 * i);
    }
    if (fnv1a64(payload) != stored) {
        return rejected(error, "checksum mismatch");
    }

    Cursor cursor(payload);
    std::uint32_t version = 0;
    if (!cursor.read_u32(&version)) {
        return rejected(error, "truncated before version");
    }
    if (version != kSnapshotVersion) {
        return rejected(error, "version mismatch: file has " +
                                   std::to_string(version) + ", expected " +
                                   std::to_string(kSnapshotVersion));
    }
    std::uint32_t section_count = 0;
    if (!cursor.read_u32(&section_count)) {
        return rejected(error, "truncated before section count");
    }
    SnapshotData data;
    for (std::uint32_t s = 0; s < section_count; ++s) {
        SnapshotSection section;
        std::uint32_t name_len = 0;
        if (!cursor.read_u32(&name_len) ||
            !cursor.read_bytes(name_len, &section.name)) {
            return rejected(error, "truncated section header");
        }
        std::uint64_t entry_count = 0;
        if (!cursor.read_u64(&entry_count)) {
            return rejected(error, "truncated entry count");
        }
        // Every entry needs at least its two length prefixes; a hostile count
        // fails here instead of driving a giant reserve.
        if (entry_count > cursor.remaining() / 8) {
            return rejected(error, "entry count " + std::to_string(entry_count) +
                                       " exceeds remaining bytes");
        }
        section.entries.reserve(static_cast<std::size_t>(entry_count));
        for (std::uint64_t e = 0; e < entry_count; ++e) {
            std::string key, value;
            std::uint32_t len = 0;
            if (!cursor.read_u32(&len) || !cursor.read_bytes(len, &key)) {
                return rejected(error, "truncated entry key");
            }
            if (!cursor.read_u32(&len) || !cursor.read_bytes(len, &value)) {
                return rejected(error, "truncated entry value");
            }
            section.entries.emplace_back(std::move(key), std::move(value));
        }
        data.sections.push_back(std::move(section));
    }
    if (cursor.remaining() != 0) {
        return rejected(error, std::to_string(cursor.remaining()) +
                                   " trailing bytes after the last section");
    }
    *out = std::move(data);
    return SnapshotReadResult::Loaded;
}

bool write_snapshot_file(const std::string& path, const SnapshotData& data,
                         std::string* error) {
    const std::string encoded = encode_snapshot(data);
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr) {
            *error = "open " + tmp + ": " + std::strerror(errno);
        }
        return false;
    }
    const bool wrote =
        std::fwrite(encoded.data(), 1, encoded.size(), f) == encoded.size();
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote || !flushed) {
        if (error != nullptr) {
            *error = "write " + tmp + ": " + std::strerror(errno);
        }
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error != nullptr) {
            *error = "rename " + tmp + " -> " + path + ": " +
                     std::strerror(errno);
        }
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

SnapshotReadResult read_snapshot_file(const std::string& path,
                                      SnapshotData* out, std::string* error) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (errno == ENOENT) {
            return SnapshotReadResult::Missing;
        }
        return rejected(error,
                        "open " + path + ": " + std::strerror(errno));
    }
    std::string bytes;
    char chunk[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        bytes.append(chunk, n);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        return rejected(error, "read " + path + ": " + std::strerror(errno));
    }
    return decode_snapshot(bytes, out, error);
}

} // namespace service
} // namespace lph
