#include "service/retry.hpp"

#include <algorithm>

namespace lph {
namespace service {

namespace {

std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

double backoff_delay_ms(const RetryPolicy& policy, std::uint64_t request_index,
                        int attempt) {
    const int exponent = std::max(0, attempt - 1);
    double ceiling = policy.base_backoff_ms;
    for (int i = 0; i < exponent && ceiling < policy.max_backoff_ms; ++i) {
        ceiling *= 2;
    }
    ceiling = std::min(ceiling, policy.max_backoff_ms);
    if (ceiling <= 0) {
        return 0;
    }
    const std::uint64_t h = mix(mix(policy.seed ^ 0xbac0ffULL) ^
                                mix(request_index * 31 +
                                    static_cast<std::uint64_t>(attempt)));
    return static_cast<double>(h >> 11) * 0x1.0p-53 * ceiling;
}

obs::MetricList RetryStats::to_metrics() const {
    return {
        {"retry.sent", static_cast<double>(sent)},
        {"retry.retries", static_cast<double>(retries)},
        {"retry.redelivered", static_cast<double>(redelivered)},
        {"retry.abandoned", static_cast<double>(abandoned)},
        {"retry.reconnects", static_cast<double>(reconnects)},
    };
}

} // namespace service
} // namespace lph
