#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lph {
namespace service {

/// A parsed JSON value — just enough JSON for the line-delimited wire
/// protocol (src/service/wire.hpp).  Numbers keep their raw source token so
/// 64-bit seeds and request ids survive without double rounding.
///
/// The parser is deliberately strict: exactly one value per line, trailing
/// garbage after the closing brace is an error, duplicate object keys are an
/// error, and every failure message carries the byte offset — the transport
/// layer prefixes the connection line number so clients get
/// "line 17: byte 23: ..." diagnostics.
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string raw_number; ///< the source token, e.g. "18446744073709551615"
    std::string string;
    std::vector<std::pair<std::string, JsonValue>> members; ///< objects
    std::vector<JsonValue> items;                           ///< arrays

    /// Member lookup for objects; nullptr when absent (or not an object).
    const JsonValue* find(const std::string& key) const;

    bool is_object() const { return kind == Kind::Object; }
    bool is_string() const { return kind == Kind::String; }
    bool is_number() const { return kind == Kind::Number; }
    bool is_bool() const { return kind == Kind::Bool; }
};

/// Parses exactly one JSON document from `text`; throws precondition_error
/// ("byte N: ...") on malformed input, unknown escapes, nesting deeper than
/// 32, or trailing non-whitespace after the document.
JsonValue parse_json(const std::string& text);

/// Parses the raw number token as an exact unsigned 64-bit integer; throws
/// precondition_error when the value is negative, fractional, or out of
/// range.  `what` names the field in the error message.
std::uint64_t json_to_u64(const JsonValue& v, const std::string& what);

} // namespace service
} // namespace lph
