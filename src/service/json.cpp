#include "service/json.hpp"

#include "core/check.hpp"

#include <cctype>
#include <cstdlib>

namespace lph {
namespace service {

const JsonValue* JsonValue::find(const std::string& key) const {
    if (kind != Kind::Object) {
        return nullptr;
    }
    for (const auto& [name, value] : members) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        skip_ws();
        JsonValue value = parse_value(0);
        skip_ws();
        check(pos_ == text_.size(),
              where() + "trailing garbage after the JSON document");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw precondition_error(where() + message);
    }

    std::string where() const {
        return "byte " + std::to_string(pos_) + ": ";
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\r' || text_[pos_] == '\n')) {
            ++pos_;
        }
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(const char* literal) {
        const std::size_t len = std::string(literal).size();
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue parse_value(int depth) {
        check(depth <= 32, where() + "nesting deeper than 32 levels");
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        JsonValue v;
        const char c = peek();
        if (c == '{') {
            return parse_object(depth);
        }
        if (c == '[') {
            return parse_array(depth);
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::String;
            v.string = parse_string();
            return v;
        }
        if (consume_literal("true")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consume_literal("false")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
        }
        if (consume_literal("null")) {
            v.kind = JsonValue::Kind::Null;
            return v;
        }
        return parse_number();
    }

    JsonValue parse_object(int depth) {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') {
                fail("expected a string object key");
            }
            std::string key = parse_string();
            for (const auto& [existing, unused] : v.members) {
                (void)unused;
                if (existing == key) {
                    fail("duplicate object key '" + key + "'");
                }
            }
            skip_ws();
            expect(':');
            v.members.emplace_back(std::move(key), parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parse_array(int depth) {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c < 0x20) {
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("non-hex digit in \\u escape");
                    }
                }
                // The wire protocol is ASCII; reject escapes outside it
                // rather than silently mangling multi-byte sequences.
                if (code > 0x7f) {
                    fail("\\u escape outside ASCII");
                }
                out += static_cast<char>(code);
                break;
            }
            default:
                fail(std::string("unknown escape '\\") + esc + "'");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t begin = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            fail("expected a JSON value");
        }
        if (peek() == '0') {
            ++pos_;
            if (std::isdigit(static_cast<unsigned char>(peek()))) {
                fail("leading zeros are not allowed");
            }
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                fail("digit required after decimal point");
            }
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') {
                ++pos_;
            }
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                fail("digit required in exponent");
            }
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.raw_number = text_.substr(begin, pos_ - begin);
        v.number = std::strtod(v.raw_number.c_str(), nullptr);
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue parse_json(const std::string& text) {
    return Parser(text).parse_document();
}

std::uint64_t json_to_u64(const JsonValue& v, const std::string& what) {
    check(v.is_number(), what + " must be a number");
    const std::string& raw = v.raw_number;
    check(!raw.empty() && raw[0] != '-', what + " must be non-negative");
    for (const char c : raw) {
        check(c >= '0' && c <= '9',
              what + " must be a plain non-negative integer, got '" + raw + "'");
    }
    check(raw.size() <= 20, what + " out of 64-bit range");
    std::uint64_t value = 0;
    for (const char c : raw) {
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        check(value <= (~std::uint64_t{0} - digit) / 10,
              what + " out of 64-bit range");
        value = value * 10 + digit;
    }
    return value;
}

} // namespace service
} // namespace lph
