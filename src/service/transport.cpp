#include "service/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace lph {
namespace service {

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

const char* to_string(TransportStatus status) {
    switch (status) {
    case TransportStatus::Ok: return "ok";
    case TransportStatus::PeerClosed: return "peer_closed";
    case TransportStatus::TimedOut: return "timed_out";
    case TransportStatus::Error: return "error";
    }
    return "unknown";
}

namespace {

void set_error(std::string* error, const char* op) {
    if (error != nullptr) {
        *error = std::string(op) + ": " + std::strerror(errno);
    }
}

} // namespace

TransportStatus send_all(int fd, const std::string& data, std::string* error) {
    std::size_t done = 0;
    while (done < data.size()) {
        const ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            set_error(error, "send");
            return (errno == EPIPE || errno == ECONNRESET)
                       ? TransportStatus::PeerClosed
                       : TransportStatus::Error;
        }
        done += static_cast<std::size_t>(n);
    }
    return TransportStatus::Ok;
}

TransportStatus recv_line_fd(int fd, std::string& buffer, std::string& line,
                             int timeout_ms, std::string* error) {
    for (;;) {
        const std::size_t pos = buffer.find('\n');
        if (pos != std::string::npos) {
            line.assign(buffer, 0, pos);
            buffer.erase(0, pos + 1);
            return TransportStatus::Ok;
        }
        if (timeout_ms > 0) {
            pollfd pfd{};
            pfd.fd = fd;
            pfd.events = POLLIN;
            const int ready = ::poll(&pfd, 1, timeout_ms);
            if (ready < 0) {
                if (errno == EINTR) {
                    continue;
                }
                set_error(error, "poll");
                return TransportStatus::Error;
            }
            if (ready == 0) {
                if (error != nullptr) {
                    *error = "no response within " +
                             std::to_string(timeout_ms) + " ms";
                }
                return TransportStatus::TimedOut;
            }
        }
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            set_error(error, "read");
            return errno == ECONNRESET ? TransportStatus::PeerClosed
                                       : TransportStatus::Error;
        }
        if (n == 0) {
            if (buffer.empty()) {
                if (error != nullptr) {
                    *error = "connection closed by peer";
                }
                return TransportStatus::PeerClosed;
            }
            line = std::move(buffer);
            buffer.clear();
            return TransportStatus::Ok;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace service
} // namespace lph
