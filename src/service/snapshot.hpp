#pragma once

#include "obs/metrics.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lph {
namespace service {

/// On-disk snapshot format version.  Bumped whenever the byte layout or the
/// semantics of a section change; a mismatched version is *rejected* on load
/// (cold start), never reinterpreted.
constexpr std::uint32_t kSnapshotVersion = 1;

/// One named key/value section of a snapshot.  The serving layer writes a
/// "memo" section (the cross-request result memo) plus one "view:<machine>"
/// section per machine-shared ViewCache; the codec itself is agnostic.
struct SnapshotSection {
    std::string name;
    /// Oldest-first, so replaying `insert` calls reproduces LRU recency.
    std::vector<std::pair<std::string, std::string>> entries;
};

struct SnapshotData {
    std::vector<SnapshotSection> sections;

    std::size_t total_entries() const {
        std::size_t n = 0;
        for (const SnapshotSection& s : sections) {
            n += s.entries.size();
        }
        return n;
    }
};

/// Outcome of reading a snapshot.  `Missing` (no file) and `Rejected`
/// (corrupted / truncated / version-mismatched / trailing bytes) both mean
/// cold start; the distinction feeds the structured log and the
/// `snapshot.rejected` counter — a rejected snapshot is never trusted, even
/// partially.
enum class SnapshotReadResult { Loaded, Missing, Rejected };

const char* to_string(SnapshotReadResult result);

/// Serializes a snapshot:
///
///   "LPHSNAP\n" | u32 version | u32 section_count
///   per section: u32 name_len | name | u64 entry_count
///                per entry: u32 key_len | key | u32 value_len | value
///   u64 fnv1a64 checksum over everything after the magic
///
/// All integers are little-endian; the checksum covers version and counts so
/// a flipped length byte fails closed instead of mis-slicing entries.
std::string encode_snapshot(const SnapshotData& data);

/// Decodes `bytes`; on `Rejected`, `*error` explains what failed (magic,
/// version, checksum, truncation, trailing bytes) and `*out` is left empty.
/// Never throws and never allocates past the input size — a hostile length
/// field is caught by bounds checks before any copy.
SnapshotReadResult decode_snapshot(const std::string& bytes, SnapshotData* out,
                                   std::string* error);

/// Writes atomically: encode to `path + ".tmp"`, fsync, rename over `path` —
/// a crash mid-save leaves the previous snapshot intact.  Returns false (with
/// `*error`) on any I/O failure.
bool write_snapshot_file(const std::string& path, const SnapshotData& data,
                         std::string* error);

/// Reads and decodes `path`.  A missing file is `Missing`; an unreadable or
/// undecodable one is `Rejected` with `*error` set.
SnapshotReadResult read_snapshot_file(const std::string& path,
                                      SnapshotData* out, std::string* error);

/// Counters of one ServiceCore's snapshot lifecycle.
struct SnapshotStats {
    std::uint64_t loads = 0;          ///< successful warm-starts
    std::uint64_t rejected = 0;       ///< corrupt/mismatched snapshots refused
    std::uint64_t saves = 0;          ///< successful writes
    std::uint64_t save_failures = 0;  ///< I/O failures while writing
    std::uint64_t entries_loaded = 0; ///< entries restored by the last load
    std::uint64_t entries_saved = 0;  ///< entries written by the last save

    /// Metric list under the `snapshot.` naming scheme, absorbed under
    /// `service.` by ServiceCore::publish_metrics.
    obs::MetricList to_metrics() const;
};

} // namespace service
} // namespace lph
