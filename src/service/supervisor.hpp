#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lph {
namespace service {

/// Restart discipline for supervised workers: exponential backoff between
/// restarts of a crashing worker, reset once it stays healthy, and a
/// crash-loop circuit breaker that gives a worker up for good after too many
/// consecutive short-lived lives.
struct RestartPolicy {
    double base_backoff_ms = 200;  ///< backoff after crash k is base * 2^k...
    double max_backoff_ms = 5000;  ///< ...capped here, then jittered
    /// A life shorter than this counts as part of a crash loop; a longer one
    /// resets the consecutive-crash counter.
    double min_healthy_uptime_ms = 1000;
    /// Circuit breaker: consecutive short-lived crashes before the
    /// supervisor stops restarting this worker slot.
    int max_consecutive_crashes = 5;
    std::uint64_t jitter_seed = 1;
};

/// Pure supervision state machine for one pool of worker slots — all time is
/// passed in explicitly (milliseconds on the caller's monotonic clock), so
/// the policy is unit-testable without forking or sleeping.  The fork/exec/
/// waitpid plumbing lives in the lphd tool; this ledger only decides *what*
/// to do and *when*.
class SupervisorLedger {
public:
    enum class SlotState { Running, BackingOff, GivenUp };

    struct Slot {
        SlotState state = SlotState::Running;
        std::uint64_t generation = 0; ///< times this slot was started
        std::uint64_t restarts = 0;   ///< generation - 1, for reporting
        int consecutive_crashes = 0;
        double started_at_ms = 0;
        double restart_at_ms = 0; ///< meaningful in BackingOff
    };

    SupervisorLedger(std::size_t workers, RestartPolicy policy);

    std::size_t size() const { return slots_.size(); }
    const Slot& slot(std::size_t i) const { return slots_[i]; }

    /// Marks slot `i` started at `now_ms` (first launch or restart).
    void on_started(std::size_t i, double now_ms);

    /// Handles slot `i`'s process exiting at `now_ms`.  `clean` exits (a
    /// shutdown the supervisor asked for) never trip the breaker.  Returns
    /// true when the slot should be restarted (after waiting until
    /// slot(i).restart_at_ms), false when it has been given up.
    bool on_exit(std::size_t i, double now_ms, bool clean);

    /// The earliest restart_at_ms over BackingOff slots whose time has come
    /// at or before `now_ms`; -1 when none is due yet.
    int due_slot(double now_ms) const;

    /// The earliest restart_at_ms over all BackingOff slots; -1 when no slot
    /// is backing off (nothing to wait for).
    double next_deadline_ms() const;

    std::size_t running() const;
    std::size_t given_up() const;
    std::uint64_t total_restarts() const;

private:
    double backoff_ms(const Slot& slot) const;

    RestartPolicy policy_;
    std::vector<Slot> slots_;
};

} // namespace service
} // namespace lph
