#pragma once

#include "service/chaos.hpp"
#include "service/core.hpp"
#include "service/transport.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lph {
namespace service {

/// Counters of one transport session (one pipe run / one TCP connection).
struct ServeReport {
    std::uint64_t lines = 0;           ///< non-empty lines read
    std::uint64_t requests = 0;        ///< lines that parsed into requests
    std::uint64_t protocol_errors = 0; ///< lines answered with ProtocolError
};

/// Runs the line protocol over a stream pair until EOF on `in` — the
/// `lphd --pipe` transport.  Requests are submitted to the core as they are
/// read (so micro-batching sees the whole pipelined window) while a writer
/// thread emits responses in request order; a malformed line produces an
/// immediate ProtocolError response and the stream stays usable.
ServeReport serve_stream(ServiceCore& core, std::istream& in, std::ostream& out);

/// Binds + listens on 127.0.0.1:`port` (0 picks a free port) and returns the
/// listening fd, with the resolved port in `*bound_port`.  Split out of
/// TcpServer so a supervisor can bind once *before* forking: workers inherit
/// this fd and accept from one shared kernel queue.  Throws
/// precondition_error on failure.
int listen_loopback(std::uint16_t port, std::uint16_t* bound_port);

/// Tag for the adopted-listener TcpServer constructor.
struct AdoptSocket {
    int fd = -1;
};

/// Blocking TCP listener on 127.0.0.1 with a fixed pool of connection
/// workers, each speaking the same line protocol as serve_stream.
class TcpServer {
public:
    /// Binds and listens; port 0 picks a free port (read it back via
    /// port()).  Throws precondition_error when the socket cannot be set up.
    TcpServer(ServiceCore& core, std::uint16_t port,
              unsigned connection_workers = 4);

    /// Adopts an fd already listening (from listen_loopback, possibly
    /// inherited across fork); the server owns and closes it.
    TcpServer(ServiceCore& core, AdoptSocket adopted,
              unsigned connection_workers = 4);
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    /// The bound port (resolves port 0).
    std::uint16_t port() const { return port_; }

    /// Installs a wire-level chaos injector on the response path (nullptr to
    /// disable); call before start().  The injector must outlive the server.
    void set_chaos(ChaosInjector* chaos) { chaos_ = chaos; }

    /// Spawns the accept thread and the connection workers.
    void start();

    /// Closes the listener, wakes every worker, and joins; idempotent.
    void shutdown();

private:
    void accept_loop();
    void connection_loop(unsigned worker);
    void handle_connection(int fd);

    ServiceCore& core_;
    ChaosInjector* chaos_ = nullptr;
    std::atomic<int> listen_fd_{-1}; ///< written by shutdown, read by accept
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};

    std::mutex pending_mutex_;
    std::condition_variable pending_cv_;
    std::deque<int> pending_fds_;

    std::mutex active_mutex_;
    std::vector<int> active_fds_; ///< one slot per connection worker

    std::thread accept_thread_;
    std::vector<std::thread> connection_threads_;
};

/// Line-oriented client over a loopback TCP connection (lph_client and the
/// service tests).
class TcpClient {
public:
    TcpClient(const std::string& host, std::uint16_t port);
    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    void send_line(const std::string& line);

    /// send_line with the transport status surfaced instead of best-effort:
    /// PeerClosed (EPIPE/ECONNRESET — the daemon died mid-conversation) and
    /// Error come back as values, with `*error` describing the failure.
    TransportStatus send_line_status(const std::string& line,
                                     std::string* error = nullptr);

    /// Reads one response line (without the newline); false on EOF.
    bool recv_line(std::string& line);

    /// recv_line with a per-read timeout (0 = block) and the transport
    /// status surfaced — the retry layer's read primitive.
    TransportStatus recv_line_status(std::string& line, int timeout_ms = 0,
                                     std::string* error = nullptr);

private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace service
} // namespace lph
