#include "service/server.hpp"

#include "core/check.hpp"
#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <future>
#include <istream>
#include <ostream>

namespace lph {
namespace service {

namespace {

/// Emits responses in request order as their futures resolve, on its own
/// thread so the reader can keep submitting (and the core keep batching)
/// while earlier requests are still in flight.
class ResponseWriter {
public:
    explicit ResponseWriter(std::function<void(const std::string&)> sink)
        : sink_(std::move(sink)), thread_([this] { run(); }) {}

    ~ResponseWriter() { finish(); }

    void push(std::future<Response> future) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(future));
        }
        cv_.notify_one();
    }

    void push_ready(Response response) {
        std::promise<Response> promise;
        promise.set_value(std::move(response));
        push(promise.get_future());
    }

    /// Drains the queue and joins; idempotent.
    void finish() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_one();
        if (thread_.joinable()) {
            thread_.join();
        }
    }

private:
    void run() {
        for (;;) {
            std::future<Response> next;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
                if (queue_.empty()) {
                    return;
                }
                next = std::move(queue_.front());
                queue_.pop_front();
            }
            sink_(next.get().to_json());
        }
    }

    std::function<void(const std::string&)> sink_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::future<Response>> queue_;
    bool closed_ = false;
    std::thread thread_;
};

bool is_blank(const std::string& line) {
    for (const char c : line) {
        if (c != ' ' && c != '\t' && c != '\r') {
            return false;
        }
    }
    return true;
}

/// One protocol session over an abstract line source/sink — shared between
/// the pipe transport and each TCP connection.
ServeReport serve_lines(ServiceCore& core,
                        const std::function<bool(std::string&)>& read_line,
                        const std::function<void(const std::string&)>& sink) {
    ServeReport report;
    ResponseWriter writer(sink);
    std::string line;
    std::size_t line_number = 0;
    while (read_line(line)) {
        ++line_number;
        if (is_blank(line)) {
            continue;
        }
        ++report.lines;
        try {
            Request request =
                parse_request(line, line_number, core.options().wire);
            ++report.requests;
            writer.push(core.submit(std::move(request)));
        } catch (const precondition_error& e) {
            ++report.protocol_errors;
            core.note_protocol_error();
            writer.push_ready(Response::protocol_error(e.what()));
        }
    }
    writer.finish();
    return report;
}

} // namespace

ServeReport serve_stream(ServiceCore& core, std::istream& in,
                         std::ostream& out) {
    std::mutex out_mutex;
    return serve_lines(
        core, [&in](std::string& line) { return bool(std::getline(in, line)); },
        [&out, &out_mutex](const std::string& response) {
            const std::lock_guard<std::mutex> lock(out_mutex);
            out << response << '\n';
            out.flush();
        });
}

int listen_loopback(std::uint16_t port, std::uint16_t* bound_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd >= 0, std::string("socket() failed: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        check(false, "bind(127.0.0.1:" + std::to_string(port) +
                         ") failed: " + detail);
    }
    if (::listen(fd, 64) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        check(false, std::string("listen() failed: ") + detail);
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    check(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
          std::string("getsockname() failed: ") + std::strerror(errno));
    if (bound_port != nullptr) {
        *bound_port = ntohs(bound.sin_port);
    }
    return fd;
}

TcpServer::TcpServer(ServiceCore& core, std::uint16_t port,
                     unsigned connection_workers)
    : core_(core) {
    std::uint16_t bound = 0;
    listen_fd_ = listen_loopback(port, &bound);
    port_ = bound;
    active_fds_.assign(std::max(1u, connection_workers), -1);
}

TcpServer::TcpServer(ServiceCore& core, AdoptSocket adopted,
                     unsigned connection_workers)
    : core_(core) {
    check(adopted.fd >= 0, "adopted listener fd must be valid");
    listen_fd_ = adopted.fd;
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    check(::getsockname(adopted.fd, reinterpret_cast<sockaddr*>(&bound),
                        &len) == 0,
          std::string("getsockname() failed: ") + std::strerror(errno));
    port_ = ntohs(bound.sin_port);
    active_fds_.assign(std::max(1u, connection_workers), -1);
}

TcpServer::~TcpServer() { shutdown(); }

void TcpServer::start() {
    accept_thread_ = std::thread([this] { accept_loop(); });
    connection_threads_.reserve(active_fds_.size());
    for (unsigned i = 0; i < active_fds_.size(); ++i) {
        connection_threads_.emplace_back([this, i] { connection_loop(i); });
    }
}

void TcpServer::shutdown() {
    if (stopping_.exchange(true)) {
        if (accept_thread_.joinable()) {
            accept_thread_.join();
        }
        for (std::thread& t : connection_threads_) {
            if (t.joinable()) {
                t.join();
            }
        }
        return;
    }
    if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    {
        // Kick connection workers out of blocking reads.
        const std::lock_guard<std::mutex> lock(active_mutex_);
        for (const int fd : active_fds_) {
            if (fd >= 0) {
                ::shutdown(fd, SHUT_RDWR);
            }
        }
    }
    pending_cv_.notify_all();
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    for (std::thread& t : connection_threads_) {
        if (t.joinable()) {
            t.join();
        }
    }
    {
        const std::lock_guard<std::mutex> lock(pending_mutex_);
        for (const int fd : pending_fds_) {
            ::close(fd);
        }
        pending_fds_.clear();
    }
}

void TcpServer::accept_loop() {
    for (;;) {
        const int listen_fd = listen_fd_.load();
        if (listen_fd < 0) {
            return; // listener already closed by shutdown
        }
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            return; // listener closed (shutdown) or fatal
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        {
            const std::lock_guard<std::mutex> lock(pending_mutex_);
            pending_fds_.push_back(fd);
        }
        pending_cv_.notify_one();
    }
}

void TcpServer::connection_loop(unsigned worker) {
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(pending_mutex_);
            pending_cv_.wait(lock, [this] {
                return stopping_.load() || !pending_fds_.empty();
            });
            if (pending_fds_.empty()) {
                return;
            }
            fd = pending_fds_.front();
            pending_fds_.pop_front();
        }
        {
            const std::lock_guard<std::mutex> lock(active_mutex_);
            active_fds_[worker] = fd;
        }
        handle_connection(fd);
        {
            const std::lock_guard<std::mutex> lock(active_mutex_);
            active_fds_[worker] = -1;
        }
        ::close(fd);
        if (stopping_.load()) {
            return;
        }
    }
}

void TcpServer::handle_connection(int fd) {
    std::string buffer;
    std::mutex write_mutex;
    serve_lines(
        core_,
        [fd, &buffer](std::string& line) {
            return recv_line_fd(fd, buffer, line) == TransportStatus::Ok;
        },
        [this, fd, &write_mutex](const std::string& response) {
            const std::lock_guard<std::mutex> lock(write_mutex);
            std::string line = response + '\n';
            const ChaosAction action = chaos_ != nullptr
                                           ? chaos_->next_action()
                                           : ChaosAction::None;
            switch (action) {
            case ChaosAction::KillWorker:
                // Die the way a real crash does: no unwinding, no snapshot
                // save, no response bytes.  The supervisor's waitpid sees
                // kChaosKillExitStatus and restarts us.
                std::_Exit(kChaosKillExitStatus);
            case ChaosAction::Drop:
                ::shutdown(fd, SHUT_RDWR);
                return;
            case ChaosAction::Truncate:
                line.erase(line.size() / 2);
                send_all(fd, line);
                ::shutdown(fd, SHUT_RDWR);
                return;
            case ChaosAction::Garble:
                ChaosInjector::garble(line);
                break;
            case ChaosAction::Delay:
                std::this_thread::sleep_for(std::chrono::duration<double,
                                                                  std::milli>(
                    chaos_->delay_ms()));
                break;
            case ChaosAction::None:
                break;
            }
            // A failed send (peer gone mid-response) is the reader's cue to
            // wind the connection down; EPIPE must not kill the daemon,
            // hence MSG_NOSIGNAL inside send_all.
            send_all(fd, line);
        });
}

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd_ >= 0, std::string("socket() failed: ") + std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    check(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          "invalid IPv4 address '" + host + "'");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        check(false, "connect(" + host + ":" + std::to_string(port) +
                         ") failed: " + detail);
    }
}

TcpClient::~TcpClient() {
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

void TcpClient::send_line(const std::string& line) {
    send_all(fd_, line + '\n');
}

TransportStatus TcpClient::send_line_status(const std::string& line,
                                            std::string* error) {
    return send_all(fd_, line + '\n', error);
}

bool TcpClient::recv_line(std::string& line) {
    return recv_line_fd(fd_, buffer_, line) == TransportStatus::Ok;
}

TransportStatus TcpClient::recv_line_status(std::string& line, int timeout_ms,
                                            std::string* error) {
    return recv_line_fd(fd_, buffer_, line, timeout_ms, error);
}

} // namespace service
} // namespace lph
