#include "service/wire.hpp"

#include "core/check.hpp"
#include "lang/parser.hpp"
#include "obs/metrics.hpp"
#include "service/json.hpp"
#include "service/registry.hpp"

#include <cstdio>
#include <limits>
#include <sstream>

namespace lph {
namespace service {

namespace {

using obs::json_escape;

/// Exact round-trip rendering for the double-valued wire fields (deadlines,
/// fault probabilities) — %.17g preserves every distinct double.
std::string render_double(double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

double parse_probability(const JsonValue& v, const char* field) {
    check(v.is_number(), std::string(field) + " must be a number");
    check(v.number >= 0.0 && v.number <= 1.0,
          std::string(field) + " must be in [0, 1]");
    return v.number;
}

std::string parse_id_token(const JsonValue& v) {
    if (v.is_number()) {
        return v.raw_number;
    }
    if (v.is_string()) {
        return "\"" + json_escape(v.string) + "\"";
    }
    check(false, "id must be a number or a string");
    return {};
}

/// "digest" travels as a decimal string — a u64 digest does not survive a
/// JSON double round-trip.
std::uint64_t parse_digest(const JsonValue& v) {
    check(v.is_string(), "\"digest\" must be a decimal string");
    const std::string& text = v.string;
    check(!text.empty() && text.size() <= 20 &&
              text.find_first_not_of("0123456789") == std::string::npos &&
              (text.size() == 1 || text[0] != '0'),
          "\"digest\" must be a canonical decimal u64");
    std::uint64_t value = 0;
    for (const char c : text) {
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        check(value <= (std::numeric_limits<std::uint64_t>::max() - digit) / 10,
              "\"digest\" out of u64 range");
        value = value * 10 + digit;
    }
    return value;
}

void check_label(const std::string& label, const WireLimits& limits) {
    check(label.size() <= limits.max_label_bits,
          "patch label exceeds " + std::to_string(limits.max_label_bits) +
              " bits");
    check(label.find_first_not_of("01") == std::string::npos,
          "patch label must be a bit string");
}

std::vector<PatchOp> parse_ops(const JsonValue& value,
                               const WireLimits& limits) {
    check(value.kind == JsonValue::Kind::Array, "\"ops\" must be an array");
    check(!value.items.empty(), "\"ops\" must not be empty");
    check(value.items.size() <= limits.max_patch_ops,
          "\"ops\" exceeds the limit of " +
              std::to_string(limits.max_patch_ops) + " ops");
    std::vector<PatchOp> ops;
    ops.reserve(value.items.size());
    for (const JsonValue& item : value.items) {
        check(item.is_object(), "each op must be a JSON object");
        const JsonValue* op_field = item.find("op");
        check(op_field != nullptr && op_field->is_string(),
              "each op needs a string \"op\" field");
        PatchOp op;
        const std::string& name = op_field->string;
        bool needs_u = true;
        bool needs_v = false;
        bool needs_label = false;
        if (name == "add_edge") {
            op.kind = PatchOp::Kind::AddEdge;
            needs_v = true;
        } else if (name == "remove_edge") {
            op.kind = PatchOp::Kind::RemoveEdge;
            needs_v = true;
        } else if (name == "relabel") {
            op.kind = PatchOp::Kind::Relabel;
            needs_label = true;
        } else if (name == "add_node") {
            op.kind = PatchOp::Kind::AddNode;
            needs_u = false;
            needs_label = true;
        } else if (name == "remove_node") {
            op.kind = PatchOp::Kind::RemoveNode;
        } else {
            check(false, "unknown op '" + name + "'");
        }
        bool saw_u = false;
        bool saw_v = false;
        bool saw_label = false;
        for (const auto& [key, field] : item.members) {
            if (key == "op") {
                continue;
            }
            if (key == "u" && needs_u) {
                op.u = static_cast<NodeId>(json_to_u64(field, "op \"u\""));
                saw_u = true;
            } else if (key == "v" && needs_v) {
                op.v = static_cast<NodeId>(json_to_u64(field, "op \"v\""));
                saw_v = true;
            } else if (key == "label" && needs_label) {
                check(field.is_string(), "op \"label\" must be a string");
                check_label(field.string, limits);
                op.label = field.string;
                saw_label = true;
            } else {
                check(false,
                      "unknown field \"" + key + "\" for op '" + name + "'");
            }
        }
        check(!needs_u || saw_u, "op '" + name + "' is missing \"u\"");
        check(!needs_v || saw_v, "op '" + name + "' is missing \"v\"");
        check(!needs_label || saw_label,
              "op '" + name + "' is missing \"label\"");
        ops.push_back(std::move(op));
    }
    return ops;
}

} // namespace

const char* to_string(RequestType type) {
    switch (type) {
    case RequestType::Game: return "game";
    case RequestType::Logic: return "logic";
    case RequestType::Eval: return "eval";
    case RequestType::Decide: return "decide";
    case RequestType::OracleCheck: return "oracle_check";
    case RequestType::Stats: return "stats";
    case RequestType::Health: return "health";
    case RequestType::GraphRegister: return "graph_register";
    case RequestType::GraphPatch: return "graph_patch";
    }
    return "unknown";
}

const char* to_string(PatchOp::Kind kind) {
    switch (kind) {
    case PatchOp::Kind::AddEdge: return "add_edge";
    case PatchOp::Kind::RemoveEdge: return "remove_edge";
    case PatchOp::Kind::Relabel: return "relabel";
    case PatchOp::Kind::AddNode: return "add_node";
    case PatchOp::Kind::RemoveNode: return "remove_node";
    }
    return "unknown";
}

std::uint64_t fnv1a64(const std::string& data) {
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t Request::graph_digest() const {
    return has_graph ? fnv1a64(canonical_graph) : 0;
}

std::string Request::memo_key() const {
    std::ostringstream key;
    switch (type) {
    case RequestType::Game:
        key << "game|" << machine << '|' << layers << '|' << sigma << '|' << ids
            << '|' << tolerate_faults << '|' << fault_seed << '|'
            << render_double(fault_crash) << '|' << render_double(fault_drop)
            << '|' << render_double(fault_truncate) << '|'
            << render_double(fault_corrupt) << '|' << backend << '|'
            << graph_digest();
        break;
    case RequestType::Logic:
        key << "logic|" << formula << '|' << fseed << '|' << graph_digest();
        break;
    case RequestType::Eval:
        // Keyed on the canonical re-print: two spellings of the same formula
        // share a memo entry (parse-print is idempotent, so the key is
        // stable).
        key << "eval|" << eval_text << '|' << graph_digest();
        break;
    case RequestType::Decide:
        key << "decide|" << problem << '|' << k << '|' << graph_digest();
        break;
    case RequestType::OracleCheck:
        key << "oracle|" << oracle_check << '|' << seed << '|' << instances;
        break;
    case RequestType::Stats:
    case RequestType::Health:
    // Register is idempotent but cheap; a patch mutates state, so neither
    // may ever be served from the memo.
    case RequestType::GraphRegister:
    case RequestType::GraphPatch:
        return "";
    }
    return key.str();
}

std::string Request::to_json() const {
    std::ostringstream out;
    out << "{\"type\":\"" << to_string(type) << "\"";
    if (!id.empty()) {
        out << ",\"id\":" << id;
    }
    if (deadline_ms > 0) {
        out << ",\"deadline_ms\":" << render_double(deadline_ms);
    }
    if (!trace_id.empty()) {
        out << ",\"trace\":{\"id\":" << trace_id << "}";
    }
    switch (type) {
    case RequestType::Game:
        out << ",\"machine\":\"" << json_escape(machine) << "\""
            << ",\"layers\":" << layers
            << ",\"sigma\":" << (sigma ? "true" : "false") << ",\"ids\":\""
            << json_escape(ids) << "\"";
        if (tolerate_faults) {
            out << ",\"tolerate_faults\":true";
        }
        if (fault_seed != 0) {
            out << ",\"fault_seed\":" << fault_seed;
        }
        if (fault_crash > 0) {
            out << ",\"fault_crash\":" << render_double(fault_crash);
        }
        if (fault_drop > 0) {
            out << ",\"fault_drop\":" << render_double(fault_drop);
        }
        if (fault_truncate > 0) {
            out << ",\"fault_truncate\":" << render_double(fault_truncate);
        }
        if (fault_corrupt > 0) {
            out << ",\"fault_corrupt\":" << render_double(fault_corrupt);
        }
        if (backend != "compiled") {
            out << ",\"backend\":\"" << json_escape(backend) << "\"";
        }
        break;
    case RequestType::Logic:
        out << ",\"formula\":\"" << json_escape(formula) << "\"";
        if (formula == "random") {
            out << ",\"fseed\":" << fseed;
        }
        break;
    case RequestType::Eval:
        out << ",\"formula\":\"" << json_escape(eval_text) << "\"";
        break;
    case RequestType::Decide:
        out << ",\"problem\":\"" << json_escape(problem) << "\"";
        if (problem == "coloring") {
            out << ",\"k\":" << k;
        }
        break;
    case RequestType::OracleCheck:
        out << ",\"check\":\"" << json_escape(oracle_check) << "\""
            << ",\"seed\":" << seed << ",\"instances\":" << instances;
        break;
    case RequestType::Stats:
        if (stats_detail == "full") {
            out << ",\"detail\":\"full\"";
        }
        break;
    case RequestType::Health:
    case RequestType::GraphRegister:
        break;
    case RequestType::GraphPatch:
        out << ",\"digest\":\"" << ref_digest << "\",\"ops\":[";
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const PatchOp& op = ops[i];
            if (i > 0) {
                out << ",";
            }
            out << "{\"op\":\"" << to_string(op.kind) << "\"";
            if (op.kind != PatchOp::Kind::AddNode) {
                out << ",\"u\":" << op.u;
            }
            if (op.kind == PatchOp::Kind::AddEdge ||
                op.kind == PatchOp::Kind::RemoveEdge) {
                out << ",\"v\":" << op.v;
            }
            if (op.kind == PatchOp::Kind::Relabel ||
                op.kind == PatchOp::Kind::AddNode) {
                out << ",\"label\":\"" << json_escape(op.label) << "\"";
            }
            out << "}";
        }
        out << "]";
        if (!machine.empty()) {
            out << ",\"machine\":\"" << json_escape(machine) << "\""
                << ",\"layers\":" << layers
                << ",\"sigma\":" << (sigma ? "true" : "false") << ",\"ids\":\""
                << json_escape(ids) << "\"";
            if (backend != "compiled") {
                out << ",\"backend\":\"" << json_escape(backend) << "\"";
            }
        }
        break;
    }
    if (has_graph) {
        out << ",\"graph\":\"" << json_escape(canonical_graph) << "\"";
    }
    if (has_ref_digest && type != RequestType::GraphPatch) {
        out << ",\"digest\":\"" << ref_digest << "\"";
    }
    out << "}";
    return out.str();
}

Request parse_request(const std::string& line, std::size_t line_number,
                      const WireLimits& limits) {
    const std::string where = "line " + std::to_string(line_number) + ": ";
    try {
        check(line.size() <= limits.max_line_bytes,
              "request line of " + std::to_string(line.size()) +
                  " bytes exceeds the limit of " +
                  std::to_string(limits.max_line_bytes));
        const JsonValue doc = parse_json(line);
        check(doc.is_object(), "request must be a JSON object");

        const JsonValue* type_field = doc.find("type");
        check(type_field != nullptr, "request is missing \"type\"");
        check(type_field->is_string(), "\"type\" must be a string");

        Request r;
        const std::string& type = type_field->string;
        if (type == "game") {
            r.type = RequestType::Game;
        } else if (type == "logic") {
            r.type = RequestType::Logic;
        } else if (type == "eval") {
            r.type = RequestType::Eval;
        } else if (type == "decide") {
            r.type = RequestType::Decide;
        } else if (type == "oracle_check") {
            r.type = RequestType::OracleCheck;
        } else if (type == "stats") {
            r.type = RequestType::Stats;
        } else if (type == "health") {
            r.type = RequestType::Health;
        } else if (type == "graph_register") {
            r.type = RequestType::GraphRegister;
        } else if (type == "graph_patch") {
            r.type = RequestType::GraphPatch;
        } else {
            check(false, "unknown request type '" + type + "'");
        }

        std::string graph_text;
        bool saw_graph = false;
        for (const auto& [key, value] : doc.members) {
            if (key == "type") {
                continue;
            }
            if (key == "id") {
                r.id = parse_id_token(value);
                continue;
            }
            if (key == "deadline_ms") {
                check(value.is_number() && value.number >= 0,
                      "\"deadline_ms\" must be a non-negative number");
                r.deadline_ms = value.number;
                continue;
            }
            if (key == "trace") {
                check(value.is_object(), "\"trace\" must be an object");
                const JsonValue* trace_id = nullptr;
                for (const auto& [tkey, tvalue] : value.members) {
                    check(tkey == "id",
                          "unknown field \"" + tkey + "\" in \"trace\"");
                    trace_id = &tvalue;
                }
                check(trace_id != nullptr, "\"trace\" is missing \"id\"");
                r.trace_id = parse_id_token(*trace_id);
                continue;
            }
            const bool takes_graph = r.type == RequestType::Game ||
                                     r.type == RequestType::Logic ||
                                     r.type == RequestType::Eval ||
                                     r.type == RequestType::Decide ||
                                     r.type == RequestType::GraphRegister;
            if (key == "graph" && takes_graph) {
                check(value.is_string(), "\"graph\" must be a string payload");
                graph_text = value.string;
                saw_graph = true;
                continue;
            }
            const bool takes_digest = r.type == RequestType::Game ||
                                      r.type == RequestType::Logic ||
                                      r.type == RequestType::Eval ||
                                      r.type == RequestType::Decide ||
                                      r.type == RequestType::GraphPatch;
            if (key == "digest" && takes_digest) {
                r.ref_digest = parse_digest(value);
                r.has_ref_digest = true;
                continue;
            }
            if (key == "ops" && r.type == RequestType::GraphPatch) {
                r.ops = parse_ops(value, limits);
                continue;
            }
            bool known = false;
            switch (r.type) {
            case RequestType::Game:
                known = true;
                if (key == "machine") {
                    check(value.is_string(), "\"machine\" must be a string");
                    check(is_machine_name(value.string),
                          "unknown machine '" + value.string + "'");
                    r.machine = value.string;
                } else if (key == "layers") {
                    const std::uint64_t layers = json_to_u64(value, "\"layers\"");
                    check(layers <= 3, "\"layers\" must be in [0, 3]");
                    r.layers = static_cast<int>(layers);
                } else if (key == "sigma") {
                    check(value.is_bool(), "\"sigma\" must be a boolean");
                    r.sigma = value.boolean;
                } else if (key == "ids") {
                    check(value.is_string() &&
                              (value.string == "global" || value.string == "local"),
                          "\"ids\" must be \"global\" or \"local\"");
                    r.ids = value.string;
                } else if (key == "tolerate_faults") {
                    check(value.is_bool(),
                          "\"tolerate_faults\" must be a boolean");
                    r.tolerate_faults = value.boolean;
                } else if (key == "fault_seed") {
                    r.fault_seed = json_to_u64(value, "\"fault_seed\"");
                } else if (key == "fault_crash") {
                    r.fault_crash = parse_probability(value, "\"fault_crash\"");
                } else if (key == "fault_drop") {
                    r.fault_drop = parse_probability(value, "\"fault_drop\"");
                } else if (key == "fault_truncate") {
                    r.fault_truncate =
                        parse_probability(value, "\"fault_truncate\"");
                } else if (key == "fault_corrupt") {
                    r.fault_corrupt =
                        parse_probability(value, "\"fault_corrupt\"");
                } else if (key == "backend") {
                    check(value.is_string() && (value.string == "compiled" ||
                                                value.string == "interpreted"),
                          "\"backend\" must be \"compiled\" or "
                          "\"interpreted\"");
                    r.backend = value.string;
                } else {
                    known = false;
                }
                break;
            case RequestType::Logic:
                known = true;
                if (key == "formula") {
                    check(value.is_string(), "\"formula\" must be a string");
                    check(is_formula_name(value.string),
                          "unknown formula '" + value.string + "'");
                    r.formula = value.string;
                } else if (key == "fseed") {
                    r.fseed = json_to_u64(value, "\"fseed\"");
                } else {
                    known = false;
                }
                break;
            case RequestType::Eval:
                known = true;
                if (key == "formula") {
                    check(value.is_string(), "\"formula\" must be a string");
                    check(value.string.size() <= limits.max_formula_bytes,
                          "\"formula\" of " +
                              std::to_string(value.string.size()) +
                              " bytes exceeds the limit of " +
                              std::to_string(limits.max_formula_bytes));
                    lang::ParseLimits parse_limits;
                    parse_limits.lex.max_text_bytes = limits.max_formula_bytes;
                    try {
                        r.eval_formula =
                            lang::parse_formula(value.string, parse_limits);
                    } catch (const lang::parse_error& e) {
                        check(false, std::string("\"formula\": ") + e.what());
                    }
                    r.eval_text = lph::to_string(r.eval_formula);
                } else {
                    known = false;
                }
                break;
            case RequestType::Decide:
                known = true;
                if (key == "problem") {
                    check(value.is_string() &&
                              (value.string == "eulerian" ||
                               value.string == "coloring" ||
                               value.string == "hamiltonian"),
                          "\"problem\" must be eulerian, coloring, or "
                          "hamiltonian");
                    r.problem = value.string;
                } else if (key == "k") {
                    const std::uint64_t k = json_to_u64(value, "\"k\"");
                    check(k >= 1 && k <= 8, "\"k\" must be in [1, 8]");
                    r.k = static_cast<int>(k);
                } else {
                    known = false;
                }
                break;
            case RequestType::OracleCheck:
                known = true;
                if (key == "check") {
                    check(value.is_string(), "\"check\" must be a string");
                    r.oracle_check = value.string;
                } else if (key == "seed") {
                    r.seed = json_to_u64(value, "\"seed\"");
                } else if (key == "instances") {
                    const std::uint64_t n = json_to_u64(value, "\"instances\"");
                    check(n >= 1 && n <= 1000,
                          "\"instances\" must be in [1, 1000]");
                    r.instances = static_cast<std::size_t>(n);
                } else {
                    known = false;
                }
                break;
            case RequestType::GraphPatch:
                // The optional patch-and-reevaluate query: the clean-game
                // subset of the game fields (faults and deadlines make
                // verdicts time/plan-dependent, which an incremental result
                // must never be).
                known = true;
                if (key == "machine") {
                    check(value.is_string(), "\"machine\" must be a string");
                    check(is_machine_name(value.string),
                          "unknown machine '" + value.string + "'");
                    r.machine = value.string;
                } else if (key == "layers") {
                    const std::uint64_t layers = json_to_u64(value, "\"layers\"");
                    check(layers <= 3, "\"layers\" must be in [0, 3]");
                    r.layers = static_cast<int>(layers);
                } else if (key == "sigma") {
                    check(value.is_bool(), "\"sigma\" must be a boolean");
                    r.sigma = value.boolean;
                } else if (key == "ids") {
                    check(value.is_string() &&
                              (value.string == "global" || value.string == "local"),
                          "\"ids\" must be \"global\" or \"local\"");
                    r.ids = value.string;
                } else if (key == "backend") {
                    check(value.is_string() && (value.string == "compiled" ||
                                                value.string == "interpreted"),
                          "\"backend\" must be \"compiled\" or "
                          "\"interpreted\"");
                    r.backend = value.string;
                } else {
                    known = false;
                }
                break;
            case RequestType::Stats:
                if (key == "detail") {
                    check(value.is_string() && (value.string == "summary" ||
                                                value.string == "full"),
                          "\"detail\" must be \"summary\" or \"full\"");
                    r.stats_detail = value.string == "full" ? "full" : "";
                    known = true;
                }
                break;
            case RequestType::Health:
            case RequestType::GraphRegister:
                known = false;
                break;
            }
            check(known, "unknown field \"" + key + "\" for type '" + type + "'");
        }

        const auto graph_or_digest = [&](const char* what) {
            check(saw_graph || r.has_ref_digest,
                  std::string(what) + " request needs \"graph\" or \"digest\"");
            check(!(saw_graph && r.has_ref_digest),
                  std::string(what) +
                      " request must not carry both \"graph\" and \"digest\"");
        };
        switch (r.type) {
        case RequestType::Game:
            check(!r.machine.empty(), "game request is missing \"machine\"");
            graph_or_digest("game");
            break;
        case RequestType::Logic:
            check(!r.formula.empty(), "logic request is missing \"formula\"");
            graph_or_digest("logic");
            break;
        case RequestType::Eval:
            check(r.eval_formula != nullptr,
                  "eval request is missing \"formula\"");
            graph_or_digest("eval");
            break;
        case RequestType::Decide:
            check(!r.problem.empty(), "decide request is missing \"problem\"");
            graph_or_digest("decide");
            break;
        case RequestType::OracleCheck:
            check(!r.oracle_check.empty(),
                  "oracle_check request is missing \"check\"");
            break;
        case RequestType::Stats:
        case RequestType::Health:
            break;
        case RequestType::GraphRegister:
            check(saw_graph, "graph_register request is missing \"graph\"");
            break;
        case RequestType::GraphPatch:
            check(r.has_ref_digest,
                  "graph_patch request is missing \"digest\"");
            check(!r.ops.empty(), "graph_patch request is missing \"ops\"");
            break;
        }

        if (saw_graph) {
            r.graph = graph_from_text(graph_text, limits.graph_limits());
            r.canonical_graph = graph_to_text(r.graph);
            r.has_graph = true;
        }
        return r;
    } catch (const precondition_error& e) {
        throw precondition_error(where + e.what());
    }
}

std::string Response::to_json() const {
    std::ostringstream out;
    out << "{";
    if (!id.empty()) {
        out << "\"id\":" << id << ",";
    }
    if (status == "ok") {
        out << "\"type\":\"" << to_string(type) << "\",";
    }
    out << "\"status\":\"" << status << "\"";
    if (status != "ok") {
        out << ",\"error\":\"" << json_escape(error) << "\",\"detail\":\""
            << json_escape(detail) << "\"";
    }
    if (!body.empty()) {
        out << "," << body;
    }
    if (status == "ok") {
        out << ",\"memo\":\"" << (memo_hit ? "hit" : "miss")
            << "\",\"batch\":" << batch << ",\"service_ms\":" << service_ms;
    }
    if (timing.present) {
        out << ",\"timing\":{\"queue_us\":" << timing.queue_us
            << ",\"batch_us\":" << timing.batch_us
            << ",\"exec_us\":" << timing.exec_us
            << ",\"write_us\":" << timing.write_us << ",\"memo_hit\":"
            << (memo_hit ? "true" : "false") << ",\"batch_size\":" << batch;
        if (!timing.backend.empty()) {
            out << ",\"backend\":\"" << json_escape(timing.backend) << "\"";
        }
        out << ",\"worker_pid\":" << timing.worker_pid
            << ",\"generation\":" << timing.generation << "}";
    }
    if (!trace_id.empty()) {
        out << ",\"trace\":{\"id\":" << trace_id << "}";
    }
    out << "}";
    return out.str();
}

std::optional<TimingView> parse_timing(const std::string& line) {
    try {
        const JsonValue doc = parse_json(line);
        const JsonValue* t = doc.find("timing");
        if (t == nullptr || !t->is_object()) {
            return std::nullopt;
        }
        TimingView view;
        for (const auto& [key, value] : t->members) {
            if (key == "queue_us") {
                view.queue_us = json_to_u64(value, "\"queue_us\"");
            } else if (key == "batch_us") {
                view.batch_us = json_to_u64(value, "\"batch_us\"");
            } else if (key == "exec_us") {
                view.exec_us = json_to_u64(value, "\"exec_us\"");
            } else if (key == "write_us") {
                view.write_us = json_to_u64(value, "\"write_us\"");
            } else if (key == "memo_hit") {
                check(value.is_bool(), "\"memo_hit\" must be a boolean");
                view.memo_hit = value.boolean;
            } else if (key == "batch_size") {
                view.batch_size = json_to_u64(value, "\"batch_size\"");
            } else if (key == "backend") {
                check(value.is_string(), "\"backend\" must be a string");
                view.backend = value.string;
            } else if (key == "worker_pid") {
                view.worker_pid = static_cast<std::int64_t>(
                    json_to_u64(value, "\"worker_pid\""));
            } else if (key == "generation") {
                view.generation = json_to_u64(value, "\"generation\"");
            }
        }
        return view;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

std::optional<VerdictView> parse_verdict(const std::string& line) {
    try {
        const JsonValue doc = parse_json(line);
        const JsonValue* status = doc.find("status");
        if (status == nullptr || !status->is_string()) {
            return std::nullopt;
        }
        VerdictView view;
        view.status = status->string;
        if (const JsonValue* id = doc.find("id")) {
            view.id = parse_id_token(*id);
        }
        for (const char* field : {"accepted", "answer", "satisfied", "passed"}) {
            const JsonValue* v = doc.find(field);
            if (v != nullptr && v->is_bool()) {
                view.has_verdict = true;
                view.verdict = v->boolean;
                break;
            }
        }
        return view;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

Response Response::protocol_error(const std::string& detail) {
    Response r;
    r.status = "error";
    r.error = "ProtocolError";
    r.detail = detail;
    return r;
}

Response Response::rejection(const std::string& id, const std::string& detail) {
    Response r;
    r.id = id;
    r.status = "rejected";
    r.error = "QueueFull";
    r.detail = detail;
    return r;
}

Response Response::admission_rejection(const std::string& id,
                                       double predicted_us, double limit_us) {
    Response r;
    r.id = id;
    r.status = "rejected";
    r.error = "AdmissionRejected";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "predicted cost %.0f us exceeds the admission limit of "
                  "%.0f us",
                  predicted_us, limit_us);
    r.detail = buf;
    std::snprintf(buf, sizeof(buf),
                  "\"predicted_cost_us\":%.0f,\"admission_limit_us\":%.0f",
                  predicted_us, limit_us);
    r.body = buf;
    return r;
}

} // namespace service
} // namespace lph
