#include "service/registry.hpp"

#include "core/bitstring.hpp"
#include "core/check.hpp"
#include "core/rng.hpp"
#include "logic/examples.hpp"
#include "machines/deciders.hpp"
#include "machines/verifiers.hpp"
#include "oracle/generators.hpp"

#include <algorithm>

namespace lph {
namespace service {

namespace {

/// Violates its declared step bound whenever its certificate list contains a
/// '1' and accepts iff the list is exactly "0" — the service's handle on the
/// tolerate_faults path (same behavior as the oracle corpus machine).
class FussyVerifier : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return Polynomial::constant(64); }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter& meter) const override {
        if (input.certificates.find('1') != std::string::npos) {
            meter.charge(1'000'000); // blows the declared bound
        }
        return {{}, true, input.certificates == "0" ? "1" : "0"};
    }
};

/// Two-layer arbiter: a node accepts iff its Adam bit implies its Eve bit —
/// the certificate list at each node is "<eve>#<adam>".
class ImpliesVerifier : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return Polynomial{256, 16}; }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter& meter) const override {
        meter.charge(input.certificates.size());
        const auto parts = split_hash(input.certificates);
        const bool eve = !parts.empty() && parts[0] == "1";
        const bool adam = parts.size() > 1 && parts[1] == "1";
        return {{}, true, (!adam || eve) ? "1" : "0"};
    }
};

const std::vector<std::string>& machine_list() {
    static const std::vector<std::string> names = {
        "allsel", "eulerian", "coloring2", "coloring3", "coloring4",
        "implies", "fussy"};
    return names;
}

std::unique_ptr<LocalMachine> make_machine(const std::string& name) {
    if (name == "allsel") {
        return std::make_unique<AllSelectedDecider>();
    }
    if (name == "eulerian") {
        return std::make_unique<EulerianDecider>();
    }
    if (name == "coloring2" || name == "coloring3" || name == "coloring4") {
        return std::make_unique<ColoringVerifier>(name.back() - '0');
    }
    if (name == "implies") {
        return std::make_unique<ImpliesVerifier>();
    }
    if (name == "fussy") {
        return std::make_unique<FussyVerifier>();
    }
    check(false, "unknown machine '" + name + "'");
    return nullptr;
}

std::unique_ptr<CertificateDomain> make_domain(const std::string& name,
                                               const LocalMachine& m) {
    if (name.rfind("coloring", 0) == 0) {
        const auto& verifier = dynamic_cast<const ColoringVerifier&>(m);
        std::vector<BitString> colors;
        for (int c = 0; c < verifier.k(); ++c) {
            colors.push_back(verifier.encode_color(c));
        }
        return std::make_unique<FixedOptionsDomain>(std::move(colors));
    }
    if (name == "implies") {
        return std::make_unique<FixedOptionsDomain>(
            std::vector<BitString>{"0", "1"});
    }
    // allsel / eulerian / fussy quantify over raw strings of length <= 1.
    return std::make_unique<RawBitStringDomain>(1);
}

const std::vector<std::string>& formula_list() {
    static const std::vector<std::string> names = {
        "all_selected",     "two_colorable", "three_colorable",
        "not_all_selected", "hamiltonian",   "non_hamiltonian",
        "random"};
    return names;
}

} // namespace

std::vector<std::string> machine_names() { return machine_list(); }

bool is_machine_name(const std::string& name) {
    const auto& names = machine_list();
    return std::find(names.begin(), names.end(), name) != names.end();
}

BuiltGame build_game(const std::string& machine, int layers, bool sigma) {
    check(layers >= 0 && layers <= 3,
          "game layers must be in [0, 3], got " + std::to_string(layers));
    BuiltGame built;
    built.machine = make_machine(machine);
    for (int l = 0; l < layers; ++l) {
        built.domains.push_back(make_domain(machine, *built.machine));
    }
    built.spec.machine = built.machine.get();
    for (const auto& domain : built.domains) {
        built.spec.layers.push_back(domain.get());
    }
    built.spec.starts_existential = sigma;
    return built;
}

std::vector<std::string> formula_names() { return formula_list(); }

bool is_formula_name(const std::string& name) {
    const auto& names = formula_list();
    return std::find(names.begin(), names.end(), name) != names.end();
}

Formula formula_by_name(const std::string& name, std::uint64_t fseed) {
    namespace pf = paper_formulas;
    if (name == "all_selected") {
        return pf::all_selected();
    }
    if (name == "two_colorable") {
        return pf::two_colorable();
    }
    if (name == "three_colorable") {
        return pf::three_colorable();
    }
    if (name == "not_all_selected") {
        return pf::exists_unselected_node();
    }
    if (name == "hamiltonian") {
        return pf::hamiltonian();
    }
    if (name == "non_hamiltonian") {
        return pf::non_hamiltonian();
    }
    if (name == "random") {
        Rng rng(fseed);
        FormulaGenOptions opt;
        opt.max_quantifiers = 3;
        opt.max_depth = 3;
        opt.allow_so = false; // keeps evaluation polynomial for serving
        return random_sentence(rng, opt);
    }
    check(false, "unknown formula '" + name + "'");
    return nullptr;
}

} // namespace service
} // namespace lph
