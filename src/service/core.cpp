#include "service/core.hpp"

#include "core/check.hpp"
#include "dtm/errors.hpp"
#include "dtm/faults.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/eulerian.hpp"
#include "graphalg/hamiltonian.hpp"
#include "hierarchy/game.hpp"
#include "lang/analyze.hpp"
#include "logic/eval.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "oracle/generators.hpp"
#include "oracle/harness.hpp"
#include "service/chaos.hpp"
#include "service/registry.hpp"
#include "structure/graph_structure.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include <unistd.h>

namespace lph {
namespace service {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string render_ms(double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
}

std::uint64_t ms_to_us(double ms) {
    return ms > 0 ? static_cast<std::uint64_t>(ms * 1000.0 + 0.5) : 0;
}

/// One game-result body fragment.  Shared by the plain `game` case and the
/// graph_patch incremental paths so their fragments are byte-identical — the
/// patch-vs-full-recompute oracle compares them directly.
void append_game_result(std::ostream& body, const GameResult& result) {
    body << "\"accepted\":" << (result.accepted ? "true" : "false")
         << ",\"machine_runs\":" << result.machine_runs
         << ",\"faulted_runs\":" << result.faulted_runs;
    if (!result.probe_faults.empty()) {
        body << ",\"faults\":[";
        for (std::size_t i = 0; i < result.probe_faults.size(); ++i) {
            body << (i ? "," : "") << '"'
                 << to_string(result.probe_faults[i].code) << '"';
        }
        body << ']';
    }
    if (result.witness) {
        body << ",\"witness\":[";
        for (NodeId u = 0; u < result.witness->size(); ++u) {
            body << (u ? "," : "") << '"'
                 << obs::json_escape((*result.witness)(u)) << '"';
        }
        body << ']';
    }
}

/// The effective view radius of a machine under the service's execution
/// defaults — the R in "dirty = radius-R balls around the edit".  Must match
/// ViewKeyBuilder's radius so the engine's partial path and the store's
/// dirty sets agree.
int view_radius(const LocalMachine& machine) {
    const ExecutionOptions exec;
    const int radius = exec.enforce_declared_bounds
                           ? std::min(machine.round_bound(), exec.max_rounds)
                           : exec.max_rounds;
    return std::max(radius, 1);
}

/// The retention key of a layers-0 patch query: every field that can change
/// the per-node outputs (backend is excluded — both backends are
/// verdict-identical).
std::string decider_flavor(const Request& request) {
    return request.machine + '|' + std::to_string(request.layers) + '|' +
           (request.sigma ? '1' : '0') + '|' + request.ids;
}

} // namespace

obs::MetricList ServiceStats::to_metrics() const {
    return {
        {"submitted", static_cast<double>(submitted)},
        {"rejected", static_cast<double>(rejected)},
        {"protocol_errors", static_cast<double>(protocol_errors)},
        {"completed", static_cast<double>(completed)},
        {"errors", static_cast<double>(errors)},
        {"memo_served", static_cast<double>(memo_served)},
        {"batches", static_cast<double>(batches)},
        {"batched_requests", static_cast<double>(batched_requests)},
        {"avg_batch", avg_batch()},
        {"expired_in_queue", static_cast<double>(expired_in_queue)},
        {"queue_depth", static_cast<double>(queue_depth)},
        {"max_queue_depth", static_cast<double>(max_queue_depth)},
        {"busy_ms", busy_ms},
        {"workers", static_cast<double>(workers)},
        {"graphs_resident", static_cast<double>(graphs_resident)},
        {"patch.applied", static_cast<double>(patches_applied)},
        {"patch.incremental", static_cast<double>(patch_incremental)},
        {"patch.full", static_cast<double>(patch_full)},
        {"patch.dirty_nodes", static_cast<double>(patch_dirty_nodes)},
        {"patch.total_nodes", static_cast<double>(patch_total_nodes)},
        {"patch.dirty_fraction", patch_dirty_fraction()},
        {"admission.admitted", static_cast<double>(admission_admitted)},
        {"admission.rejected", static_cast<double>(admission_rejected)},
        {"admission.deferred", static_cast<double>(admission_deferred)},
        {"admission.big_queue_depth", static_cast<double>(big_queue_depth)},
    };
}

/// Per-batch shared preparation: when a micro-batch of same-graph requests
/// is drained, the first request of each (machine, layers) flavor pays for
/// the built game, the identifier assignment, and the certificate option
/// tables; the rest of the batch reuses them.
struct ServiceCore::BatchContext {
    std::map<std::string, BuiltGame> games;
    std::map<std::string, IdentifierAssignment> ids;
    std::map<std::string, GameTables> tables;

    BuiltGame& game(const std::string& machine, int layers, bool sigma) {
        const std::string key = machine + '|' + std::to_string(layers) + '|' +
                                (sigma ? '1' : '0');
        auto it = games.find(key);
        if (it == games.end()) {
            it = games.emplace(key, build_game(machine, layers, sigma)).first;
        }
        return it->second;
    }

    IdentifierAssignment& id_for(const std::string& scheme, int r_id,
                                 const LabeledGraph& g) {
        const std::string key = scheme + '|' + std::to_string(r_id);
        auto it = ids.find(key);
        if (it == ids.end()) {
            it = ids.emplace(key, identifier_scheme_by_name(scheme, g, r_id))
                     .first;
        }
        return it->second;
    }

    GameTables& tables_for(const std::string& machine, int layers,
                           const std::string& scheme, const GameSpec& spec,
                           const LabeledGraph& g,
                           const IdentifierAssignment& id) {
        // Tables are sigma-independent (only layer count and domains matter).
        const std::string key =
            machine + '|' + std::to_string(layers) + '|' + scheme;
        auto it = tables.find(key);
        if (it == tables.end()) {
            it = tables.emplace(key, GameTables(spec, g, id)).first;
        }
        return it->second;
    }
};

ServiceCore::ServiceCore(ServiceOptions options)
    : options_(options),
      start_time_(std::chrono::steady_clock::now()),
      pid_(static_cast<std::int64_t>(::getpid())),
      memo_(options.memo_entries) {
    if (options_.threads == 0) {
        options_.threads = std::max(1u, std::thread::hardware_concurrency());
    }
    register_service_checks();
    if (!options_.snapshot_path.empty()) {
        load_snapshot();
        if (options_.snapshot_period_ms > 0) {
            snapshot_thread_ = std::thread([this] { snapshot_loop(); });
        }
    }
    if (!options_.manual_drain) {
        workers_.reserve(options_.threads);
        for (unsigned i = 0; i < options_.threads; ++i) {
            workers_.emplace_back([this] { worker_loop(/*big=*/false); });
        }
        if (options_.admission.enabled &&
            options_.admission.big_job_threads > 0) {
            big_workers_.reserve(options_.admission.big_job_threads);
            for (unsigned i = 0; i < options_.admission.big_job_threads; ++i) {
                big_workers_.emplace_back([this] { worker_loop(/*big=*/true); });
            }
        }
    }
}

ServiceCore::~ServiceCore() { stop(); }

void ServiceCore::stop() {
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    big_cv_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    workers_.clear();
    for (std::thread& worker : big_workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    big_workers_.clear();
    bool first_stop = false;
    {
        const std::lock_guard<std::mutex> lock(snapshot_wake_mutex_);
        first_stop = !snapshot_stop_;
        snapshot_stop_ = true;
    }
    snapshot_wake_cv_.notify_all();
    if (snapshot_thread_.joinable()) {
        snapshot_thread_.join();
    }
    if (first_stop && !options_.snapshot_path.empty()) {
        save_snapshot();
    }
}

admission::Decision ServiceCore::admission_decision(const Request& request) {
    if (!options_.admission.enabled || !admission::is_workload(request.type)) {
        return {};
    }
    // A digest reference is priced against the graph as currently resident;
    // an unknown digest prices as a 0-node graph — always admitted, and the
    // serve path turns it into the structured UnknownGraph error.
    std::size_t resolved_nodes = 0;
    if (!request.has_graph && request.has_ref_digest) {
        if (const std::shared_ptr<ResidentGraph> resident =
                graphs_.find(request.ref_digest)) {
            const std::lock_guard<std::mutex> lock(resident->mutex);
            resolved_nodes = resident->graph.num_nodes();
        }
    }
    const admission::Decision decision =
        admission::decide(request, resolved_nodes, options_.admission);
    stage_metrics_.observe("service.admission.predicted_cost_us",
                           decision.predicted_us);
    return decision;
}

std::future<Response> ServiceCore::submit(Request request) {
    std::promise<Response> promise;
    std::future<Response> future = promise.get_future();

    const admission::Decision decision = admission_decision(request);
    if (decision.verdict == admission::Verdict::Reject) {
        admission_rejected_.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::instance().instant("service", "service.admission_reject");
        promise.set_value(Response::admission_rejection(
            request.id, decision.predicted_us, decision.limit_us));
        return future;
    }
    // Deferral needs someone to drain the big queue: the dedicated workers,
    // or the caller's pump in manual_drain mode.  Without either, a deferred
    // job would hang — serve it on the interactive workers instead.
    const bool big = decision.verdict == admission::Verdict::Defer &&
                     (options_.manual_drain || !big_workers_.empty());
    if (options_.admission.enabled && admission::is_workload(request.type)) {
        (big ? admission_deferred_ : admission_admitted_)
            .fetch_add(1, std::memory_order_relaxed);
    }

    bool admitted = false;
    std::string reject_detail;
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        std::deque<Pending>& target = big ? big_queue_ : queue_;
        if (stopping_) {
            reject_detail = "service is stopping";
        } else if (target.size() >= options_.queue_capacity) {
            reject_detail = "queue at capacity " +
                            std::to_string(options_.queue_capacity);
        } else {
            Pending pending;
            pending.digest = request.graph_digest();
            pending.request = std::move(request);
            pending.promise = std::move(promise);
            pending.enqueued = std::chrono::steady_clock::now();
            target.push_back(std::move(pending));
            submitted_.fetch_add(1, std::memory_order_relaxed);
            const std::uint64_t depth = queue_.size();
            if (depth > max_queue_depth_.load(std::memory_order_relaxed)) {
                max_queue_depth_.store(depth, std::memory_order_relaxed);
            }
            obs::Tracer::instance().instant("service", "service.enqueue",
                                            "depth", depth);
            admitted = true;
        }
    }
    if (!admitted) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::instance().instant("service", "service.reject");
        promise.set_value(Response::rejection(request.id, reject_detail));
        return future;
    }
    (big ? big_cv_ : queue_cv_).notify_one();
    return future;
}

Response ServiceCore::call(Request request) {
    std::future<Response> future = submit(std::move(request));
    if (options_.manual_drain) {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!drain_some()) {
                break;
            }
        }
    }
    return future.get();
}

void ServiceCore::note_protocol_error() {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    obs::Tracer::instance().instant("service", "service.protocol_error");
}

bool ServiceCore::drain_some() {
    std::vector<Pending> batch;
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        // Interactive first: the manual pump honors the same priority the
        // dedicated worker pools give a live deployment.
        if (!queue_.empty()) {
            batch = take_batch_locked(queue_);
        } else if (!big_queue_.empty()) {
            batch = take_batch_locked(big_queue_);
        } else {
            return false;
        }
    }
    process_batch(std::move(batch));
    return true;
}

void ServiceCore::drain() {
    while (drain_some()) {
    }
}

void ServiceCore::worker_loop(bool big) {
    std::deque<Pending>& my_queue = big ? big_queue_ : queue_;
    std::condition_variable& my_cv = big ? big_cv_ : queue_cv_;
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            my_cv.wait(lock,
                       [&] { return stopping_ || !my_queue.empty(); });
            if (my_queue.empty()) {
                return; // stopping, queue fully drained
            }
            batch = take_batch_locked(my_queue);
        }
        process_batch(std::move(batch));
    }
}

std::vector<ServiceCore::Pending>
ServiceCore::take_batch_locked(std::deque<Pending>& from) {
    std::vector<Pending> batch;
    batch.push_back(std::move(from.front()));
    from.pop_front();
    if (options_.batch_by_graph && batch.front().request.has_graph) {
        const std::uint64_t digest = batch.front().digest;
        for (auto it = from.begin();
             it != from.end() && batch.size() < options_.max_batch;) {
            if (it->request.has_graph && it->digest == digest) {
                batch.push_back(std::move(*it));
                it = from.erase(it);
            } else {
                ++it;
            }
        }
    }
    return batch;
}

void ServiceCore::process_batch(std::vector<Pending> batch) {
    LPH_SPAN_NAMED(span, "service", "service.batch");
    span.arg("requests", batch.size());
    const auto batch_start = std::chrono::steady_clock::now();
    batches_.fetch_add(1, std::memory_order_relaxed);
    BatchContext ctx;
    std::uint64_t served = 0;
    for (Pending& pending : batch) {
        if (serve_one(pending, ctx, batch.size(), batch_start)) {
            ++served;
        }
    }
    // Only requests that were actually served count toward the batch-size
    // averages; requests that expired while queued never reached the engine.
    batched_requests_.fetch_add(served, std::memory_order_relaxed);
}

bool ServiceCore::serve_one(Pending& pending, BatchContext& ctx,
                            std::size_t batch_size,
                            std::chrono::steady_clock::time_point batch_start) {
    LPH_SPAN_NAMED(span, "service", "service.request");
    Request& request = pending.request;
    const auto start = std::chrono::steady_clock::now();

    Response response;
    response.id = request.id;
    response.type = request.type;
    response.batch = batch_size;

    const double waited_ms = ms_between(pending.enqueued, start);
    const double deadline_ms = request.deadline_ms > 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;

    // Resolve a resident-graph reference before anything else: the memo key
    // embeds the graph digest, so an unresolved reference must never reach
    // the memo, and a fire-and-forget patch chain must observe every earlier
    // patch (resolution happens at serve time, never at submit).
    bool unresolved_ref = false;
    if (request.has_ref_digest && !request.has_graph &&
        request.type != RequestType::GraphPatch) {
        unresolved_ref = !resolve_graph_ref(request);
    }

    const std::string memo_key = options_.memoize_results && !unresolved_ref
                                     ? request.memo_key()
                                     : std::string{};

    bool served = false;
    bool expired = false;
    if (!memo_key.empty()) {
        if (auto hit = memo_.lookup(memo_key)) {
            response.body = std::move(*hit);
            response.memo_hit = true;
            memo_served_.fetch_add(1, std::memory_order_relaxed);
            served = true;
        }
    }
    if (!served) {
        if (unresolved_ref) {
            response.status = "error";
            response.error = "UnknownGraph";
            response.detail = "no resident graph with digest " +
                              std::to_string(request.ref_digest) +
                              " (register it, or follow the digest echoed by "
                              "the latest patch)";
        } else if (deadline_ms > 0 && waited_ms >= deadline_ms) {
            expired = true;
            response.status = "error";
            response.error = to_string(RunError::DeadlineExceeded);
            response.detail = "deadline of " + render_ms(deadline_ms) +
                              " ms expired after " + render_ms(waited_ms) +
                              " ms in queue";
        } else {
            const double remaining_ms =
                deadline_ms > 0 ? deadline_ms - waited_ms : 0;
            try {
                response.body = execute(request, ctx, remaining_ms);
                // A tolerate_faults run under a deadline can score leaves as
                // losses depending on wall-clock — a time-dependent body must
                // never be replayed to other clients.
                const bool time_dependent =
                    request.tolerate_faults && deadline_ms > 0;
                if (!memo_key.empty() && !time_dependent) {
                    memo_.insert(memo_key, response.body);
                }
            } catch (const run_error& e) {
                response.status = "error";
                response.error = to_string(e.code());
                response.detail = e.what();
            } catch (const precondition_error& e) {
                response.status = "error";
                response.error = "InvalidRequest";
                response.detail = e.what();
            } catch (const std::exception& e) {
                response.status = "error";
                response.error = "InternalError";
                response.detail = e.what();
            }
        }
    }

    const auto end = std::chrono::steady_clock::now();
    response.service_ms = ms_between(start, end);
    if (expired) {
        // The request never reached the engine: it is an error, but it must
        // not count as served work (busy time, batch sizes).
        expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
    } else {
        busy_us_.fetch_add(
            static_cast<std::uint64_t>(response.service_ms * 1000.0),
            std::memory_order_relaxed);
    }
    if (response.status == "ok") {
        completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
    }
    span.arg("memo_hit", response.memo_hit ? 1 : 0);
    span.arg("ok", response.status == "ok" ? 1 : 0);
    // Stage split: queue covers submit -> batch formation, batch covers the
    // shared prep plus this request's intra-batch wait, exec is its own turn.
    finish_timing(response, request,
                  std::max(0.0, ms_between(pending.enqueued, batch_start)),
                  std::max(0.0, ms_between(batch_start, start)),
                  response.service_ms, end);
    pending.promise.set_value(std::move(response));
    return !expired;
}

void ServiceCore::finish_timing(
    Response& response, const Request& request, double queue_ms,
    double batch_ms, double exec_ms,
    std::chrono::steady_clock::time_point exec_end) {
    response.trace_id = request.trace_id;
    ResponseTiming& t = response.timing;
    t.present = true;
    t.queue_us = ms_to_us(queue_ms);
    t.batch_us = ms_to_us(batch_ms);
    t.exec_us = ms_to_us(exec_ms);
    if (request.type == RequestType::Game ||
        (request.type == RequestType::GraphPatch && !request.machine.empty())) {
        t.backend = request.backend;
    }
    t.worker_pid = pid_;
    t.generation = options_.worker_generation;
    // write covers response materialization after execute (memo insert,
    // counters, span args) — everything downstream of here (serialization,
    // socket) only the client can observe, so stage sum <= client wall time.
    t.write_us =
        ms_to_us(ms_between(exec_end, std::chrono::steady_clock::now()));

    const std::uint64_t total_us = t.stage_sum_us();
    stage_metrics_.observe("service.latency_us",
                           static_cast<double>(total_us));
    stage_metrics_.observe("service.queue_us", static_cast<double>(t.queue_us));
    stage_metrics_.observe("service.batch_us", static_cast<double>(t.batch_us));
    stage_metrics_.observe("service.exec_us", static_cast<double>(t.exec_us));
    stage_metrics_.observe("service.write_us", static_cast<double>(t.write_us));

    if (options_.slow_ms > 0 &&
        static_cast<double>(total_us) > options_.slow_ms * 1000.0) {
        std::string line = "{\"event\":\"slow_request\",\"type\":\"";
        line += to_string(request.type);
        line += '"';
        if (!response.id.empty()) {
            line += ",\"id\":" + response.id;
        }
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            ",\"status\":\"%s\",\"queue_us\":%llu,\"batch_us\":%llu,"
            "\"exec_us\":%llu,\"write_us\":%llu,\"total_us\":%llu,"
            "\"memo_hit\":%s,\"batch_size\":%zu,\"worker_pid\":%lld,"
            "\"generation\":%llu}\n",
            response.status.c_str(),
            static_cast<unsigned long long>(t.queue_us),
            static_cast<unsigned long long>(t.batch_us),
            static_cast<unsigned long long>(t.exec_us),
            static_cast<unsigned long long>(t.write_us),
            static_cast<unsigned long long>(total_us),
            response.memo_hit ? "true" : "false", response.batch,
            static_cast<long long>(t.worker_pid),
            static_cast<unsigned long long>(t.generation));
        line += buf;
        std::fwrite(line.data(), 1, line.size(), stderr);
    }
}

bool ServiceCore::resolve_graph_ref(Request& request) {
    const std::shared_ptr<ResidentGraph> resident =
        graphs_.find(request.ref_digest);
    if (resident == nullptr) {
        return false;
    }
    const std::lock_guard<std::mutex> lock(resident->mutex);
    if (resident->digest != request.ref_digest) {
        return false; // re-keyed by a patch between find() and the lock
    }
    request.graph = resident->graph;
    request.canonical_graph = resident->canonical;
    request.has_graph = true;
    return true;
}

std::string ServiceCore::execute(const Request& request, BatchContext& ctx,
                                 double deadline_ms) {
    std::ostringstream body;
    switch (request.type) {
    case RequestType::Game: {
        // Validate up front rather than letting run_local do it mid-game:
        // the engine only reaches a full-graph run on a cache-missing leaf,
        // so without this a disconnected graph would be accepted or rejected
        // depending on view-cache warmth and certificate-domain shape — the
        // answer to one request must never depend on who asked before.
        request.graph.validate();
        BuiltGame& game = ctx.game(request.machine, request.layers,
                                   request.sigma);
        const int r_id = game.spec.machine->id_radius();
        const IdentifierAssignment& id =
            ctx.id_for(request.ids, r_id, request.graph);
        const GameTables& tables =
            ctx.tables_for(request.machine, request.layers, request.ids,
                           game.spec, request.graph, id);

        GameOptions opt;
        opt.threads = 1; // the service parallelizes across requests
        opt.tolerate_faults = request.tolerate_faults;
        opt.backend = request.backend == "interpreted"
                          ? GameBackend::Interpreted
                          : GameBackend::Compiled;
        // Compile only when the tables can pay for themselves within one
        // exhaustive solve: a serving mix of small one-shot graphs would
        // otherwise trade the interpreter's short-circuit exits for
        // compilation it never amortizes.
        opt.compile_cost_ratio = 1.0;
        opt.obs = options_.obs;
        opt.exec.deadline_ms = deadline_ms;
        FaultPlan plan;
        if (request.wants_fault_plan()) {
            plan.seed = request.fault_seed;
            plan.crash_prob = request.fault_crash;
            plan.drop_prob = request.fault_drop;
            plan.truncate_prob = request.fault_truncate;
            plan.corrupt_prob = request.fault_corrupt;
            opt.exec.faults = &plan;
        }
        if (options_.share_view_cache) {
            // Harmless for deadline'd/faulted requests: ViewKeyBuilder
            // refuses run-global couplings, so those runs bypass the cache.
            opt.view_cache = cache_for(request.machine);
        }
        opt.view_cache_entries = options_.view_cache_entries;

        const GameResult result =
            play_game(game.spec, tables, request.graph, id, opt);
        // The engine scores injected faults as probe losses either way; the
        // wire contract is stricter: without tolerate_faults, a faulted probe
        // escalates to a structured error carrying the taxonomy code.
        if (!request.tolerate_faults && !result.probe_faults.empty()) {
            throw run_error(result.probe_faults.front());
        }
        append_game_result(body, result);
        break;
    }
    case RequestType::Logic: {
        const Formula formula = formula_by_name(request.formula, request.fseed);
        const GraphStructure gs(request.graph);
        const bool sat = satisfies(gs.structure(), formula);
        body << "\"satisfied\":" << (sat ? "true" : "false")
             << ",\"formula_size\":" << formula_size(formula)
             << ",\"cardinality\":" << gs.cardinality();
        break;
    }
    case RequestType::Eval: {
        // User-supplied formula text, already parsed and canonicalized by
        // the wire layer.  The SO-universe guard applies exactly as in the
        // logic case: an enumeration the evaluator refuses surfaces as a
        // structured InvalidRequest, never a hang.
        const GraphStructure gs(request.graph);
        const lang::FormulaAnalysis analysis =
            lang::analyze(request.eval_formula);
        const bool sat = satisfies(gs.structure(), request.eval_formula);
        body << "\"satisfied\":" << (sat ? "true" : "false")
             << ",\"formula_size\":" << analysis.size << ",\"class\":\""
             << obs::json_escape(analysis.class_name()) << "\""
             << ",\"radius\":" << analysis.radius
             << ",\"cardinality\":" << gs.cardinality();
        break;
    }
    case RequestType::Decide: {
        if (request.problem == "eulerian") {
            body << "\"answer\":"
                 << (is_eulerian(request.graph) ? "true" : "false");
        } else if (request.problem == "coloring") {
            const std::optional<Coloring> coloring =
                find_k_coloring(request.graph, request.k);
            body << "\"answer\":" << (coloring ? "true" : "false");
            if (coloring) {
                body << ",\"colors\":[";
                for (std::size_t i = 0; i < coloring->size(); ++i) {
                    body << (i ? "," : "") << (*coloring)[i];
                }
                body << ']';
            }
        } else {
            const std::optional<std::vector<NodeId>> cycle =
                find_hamiltonian_cycle(request.graph);
            body << "\"answer\":" << (cycle ? "true" : "false");
            if (cycle) {
                body << ",\"cycle\":[";
                for (std::size_t i = 0; i < cycle->size(); ++i) {
                    body << (i ? "," : "") << (*cycle)[i];
                }
                body << ']';
            }
        }
        break;
    }
    case RequestType::OracleCheck: {
        check(is_check_name(request.oracle_check),
              "unknown check '" + request.oracle_check + "'");
        const std::size_t instances =
            std::min(request.instances, options_.max_oracle_instances);
        const CheckReport report =
            run_check(request.oracle_check, request.seed, instances,
                      options_.obs);
        // wall_ms is deliberately omitted: the body must be deterministic so
        // the result memo can replay it.
        body << "\"passed\":" << (report.passed() ? "true" : "false")
             << ",\"instances\":" << report.instances
             << ",\"divergences\":" << report.divergences.size();
        break;
    }
    case RequestType::Stats:
        return render_stats_body(request.stats_detail == "full");
    case RequestType::Health:
        return render_health_body();
    case RequestType::GraphRegister: {
        const GraphStore::RegisterResult reg =
            graphs_.register_graph(request.graph, request.canonical_graph);
        body << "\"digest\":\"" << reg.digest << "\",\"nodes\":" << reg.nodes
             << ",\"edges\":" << reg.edges
             << ",\"existed\":" << (reg.existed ? "true" : "false");
        break;
    }
    case RequestType::GraphPatch:
        return execute_patch(request, ctx, deadline_ms);
    }
    return body.str();
}

std::string ServiceCore::execute_patch(const Request& request,
                                       BatchContext& ctx, double deadline_ms) {
    const bool has_query = !request.machine.empty();
    int radius = 1;
    int r_id = 1;
    BuiltGame* game = nullptr;
    if (has_query) {
        game = &ctx.game(request.machine, request.layers, request.sigma);
        r_id = game->spec.machine->id_radius();
        radius = view_radius(*game->spec.machine);
    }
    const std::string flavor = has_query && request.layers == 0
                                   ? decider_flavor(request)
                                   : std::string{};
    const PatchOutcome outcome = graphs_.apply_patch(
        request.ref_digest, request.ops, radius,
        has_query ? request.ids : std::string("global"), r_id, flavor,
        options_.wire);
    // Any body memoized for the pre-patch content must never be served again
    // under a digest the client could still be holding.
    memo_.invalidate_digest(outcome.old_digest);
    patches_applied_.fetch_add(1, std::memory_order_relaxed);
    patch_dirty_nodes_.fetch_add(outcome.dirty.size(),
                                 std::memory_order_relaxed);
    patch_total_nodes_.fetch_add(outcome.graph.num_nodes(),
                                 std::memory_order_relaxed);

    std::ostringstream body;
    const double fraction =
        outcome.graph.num_nodes() > 0
            ? static_cast<double>(outcome.dirty.size()) /
                  static_cast<double>(outcome.graph.num_nodes())
            : 0.0;
    body << "\"digest\":\"" << outcome.new_digest << '"'
         << ",\"version\":" << outcome.version
         << ",\"nodes\":" << outcome.graph.num_nodes()
         << ",\"edges\":" << outcome.graph.num_edges()
         << ",\"dirty_nodes\":" << outcome.dirty.size()
         << ",\"dirty_fraction\":" << render_ms(fraction);
    if (!has_query) {
        return body.str();
    }
    // Same upfront rule as the Game case: a patch may pass through a
    // disconnected state — that is how graphs grow, add_node then add_edge —
    // but a query attached to one fails like any other query on that graph.
    // The patch itself stays committed; a later patch can reconnect and
    // query again.
    outcome.graph.validate();
    body << ',';
    if (request.layers == 0) {
        body << evaluate_patch_decider(request, *game, outcome, deadline_ms);
        return body.str();
    }

    // Layered query: the engine's partial-leaf path re-derives only the
    // view-cache misses (the dirty balls) and merges with the cached
    // verdicts of the untouched region; counters, fault ordering and the
    // witness stay bit-identical to a full solve.
    const IdentifierAssignment id =
        identifier_scheme_by_name(request.ids, outcome.graph, r_id);
    const GameTables tables(game->spec, outcome.graph, id);
    GameOptions opt;
    opt.threads = 1;
    opt.backend = GameBackend::Interpreted; // partial leaves live here
    opt.obs = options_.obs;
    opt.exec.deadline_ms = deadline_ms;
    opt.view_cache = cache_for(request.machine);
    opt.view_cache_entries = options_.view_cache_entries;
    opt.partial_leaves = true;
    opt.recompute_nodes = &outcome.dirty;
    const GameResult result =
        play_game(game->spec, tables, outcome.graph, id, opt);
    if (!result.probe_faults.empty()) {
        throw run_error(result.probe_faults.front());
    }
    if (result.stats.partial_fallbacks == 0 &&
        (result.stats.partial_leaf_evals > 0 ||
         result.stats.leaf_cache_hits > 0)) {
        patch_incremental_.fetch_add(1, std::memory_order_relaxed);
    } else {
        patch_full_.fetch_add(1, std::memory_order_relaxed);
    }
    append_game_result(body, result);
    return body.str();
}

std::string ServiceCore::evaluate_patch_decider(const Request& request,
                                                const BuiltGame& game,
                                                const PatchOutcome& outcome,
                                                double deadline_ms) {
    const LabeledGraph& g = outcome.graph;
    const LocalMachine& machine = *game.spec.machine;
    const int radius = view_radius(machine);
    const IdentifierAssignment id =
        identifier_scheme_by_name(request.ids, g, machine.id_radius());

    std::vector<std::string> outputs;
    bool incremental = false;
    if (outcome.has_retained) {
        // Map the retained verdicts of the untouched region across the
        // patch's renumbering; every dirty node re-derives its verdict from
        // a clean run on its induced radius-R ball (sound by r-locality).
        outputs.assign(g.num_nodes(), std::string{});
        std::vector<char> dirty(g.num_nodes(), 0);
        for (const NodeId u : outcome.dirty) {
            dirty[u] = 1;
        }
        bool usable = true;
        for (NodeId v = 0; v < g.num_nodes() && usable; ++v) {
            if (dirty[v] != 0) {
                continue;
            }
            const std::ptrdiff_t old = outcome.old_of_new[v];
            if (old < 0 || static_cast<std::size_t>(old) >=
                               outcome.retained_outputs.size()) {
                usable = false; // retention predates this graph's shape
            } else {
                outputs[v] =
                    outcome.retained_outputs[static_cast<std::size_t>(old)];
            }
        }
        ExecutionOptions ball_exec;
        ball_exec.on_violation = FaultPolicy::Record;
        for (std::size_t i = 0; i < outcome.dirty.size() && usable; ++i) {
            const NodeId v = outcome.dirty[i];
            const InducedSubgraph sub = g.neighborhood(v, radius);
            std::vector<BitString> sub_ids(sub.graph.num_nodes());
            for (NodeId s = 0; s < sub.graph.num_nodes(); ++s) {
                sub_ids[s] = id(sub.to_original[s]);
            }
            const IdentifierAssignment sub_id(std::move(sub_ids));
            try {
                const ExecutionResult run = run_local(
                    machine, sub.graph, sub_id,
                    CertificateListAssignment::empty(sub.graph.num_nodes()),
                    ball_exec);
                if (!run.ok() || !run.faults.empty() || !run.completed) {
                    usable = false; // unclean ball: replay the full run
                } else {
                    outputs[v] = run.outputs[sub.from_original.at(v)];
                }
            } catch (const run_error&) {
                usable = false;
            }
        }
        incremental = usable;
    }
    if (!incremental) {
        ExecutionOptions exec;
        exec.on_violation = FaultPolicy::Record;
        exec.deadline_ms = deadline_ms;
        const ExecutionResult run = run_local(
            machine, g, id, CertificateListAssignment::empty(g.num_nodes()),
            exec);
        // Mirror the wire contract of a plain game request (tolerate_faults
        // is not a patch field): a faulted run escalates to a structured
        // error carrying the taxonomy code.
        if (!run.faults.empty()) {
            throw run_error(run.faults.front());
        }
        check(run.ok() && run.completed, "patch: decider run did not complete");
        outputs = run.outputs;
    }
    graphs_.store_verdicts(outcome.new_digest, decider_flavor(request),
                           outputs);
    (incremental ? patch_incremental_ : patch_full_)
        .fetch_add(1, std::memory_order_relaxed);

    // Rendered through the same fragment as a clean full solve: one leaf,
    // no faults, no witness (layers == 0).
    GameResult shaped;
    shaped.accepted =
        std::all_of(outputs.begin(), outputs.end(),
                    [](const std::string& out) { return out == "1"; });
    shaped.machine_runs = 1;
    shaped.faulted_runs = 0;
    std::ostringstream fragment;
    append_game_result(fragment, shaped);
    return fragment.str();
}

std::string ServiceCore::render_stats_body(bool full) {
    // The body is derived from the same collect_metrics() snapshot that
    // feeds publish_metrics() and the --metrics= file, rendered through the
    // registry's own renderer — one schema, impossible to drift.  The only
    // hand-built fields are the worker identity (pid, generation, uptime)
    // that an aggregator needs to tell scraped workers apart.
    obs::MetricsRegistry registry;
    collect_metrics(registry);
    std::ostringstream body;
    body << "\"uptime_ms\":"
         << render_ms(ms_between(start_time_, std::chrono::steady_clock::now()))
         << ",\"pid\":" << pid_
         << ",\"generation\":" << options_.worker_generation;
    if (options_.worker_index >= 0) {
        body << ",\"worker\":{\"index\":" << options_.worker_index
             << ",\"generation\":" << options_.worker_generation
             << ",\"restarts\":"
             << (options_.worker_generation > 0 ? options_.worker_generation - 1
                                                : 0)
             << '}';
    }
    body << ",\"metrics\":"
         << obs::render_metrics_json(registry.snapshot(), /*pretty=*/false);
    if (full) {
        // Bucket-level histogram serialization: counts merge bit-exactly
        // across workers, so a scraper can reconstruct cluster percentiles.
        body << ",\"histograms\":{";
        bool first = true;
        for (const auto& [name, histogram] : registry.histograms()) {
            if (!first) {
                body << ',';
            }
            body << '"' << obs::json_escape(name) << "\":";
            std::string serialized;
            histogram.append_json(serialized);
            body << serialized;
            first = false;
        }
        body << '}';
    }
    return body.str();
}

std::string ServiceCore::render_health_body() {
    std::ostringstream body;
    body << "\"ok\":true,\"uptime_ms\":"
         << render_ms(ms_between(start_time_, std::chrono::steady_clock::now()))
         << ",\"queue_depth\":" << queue_depth()
         << ",\"workers\":" << (options_.manual_drain ? 0 : options_.threads);
    if (options_.worker_index >= 0) {
        body << ",\"worker\":{\"index\":" << options_.worker_index
             << ",\"generation\":" << options_.worker_generation
             << ",\"restarts\":"
             << (options_.worker_generation > 0 ? options_.worker_generation - 1
                                                : 0)
             << '}';
    }
    return body.str();
}

Response ServiceCore::serve_unbatched(const Request& request) {
    BatchContext ctx;
    const auto start = std::chrono::steady_clock::now();
    Response response;
    response.id = request.id;
    response.type = request.type;
    const double deadline_ms = request.deadline_ms > 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
    Request resolved;
    const Request* effective = &request;
    if (request.has_ref_digest && !request.has_graph &&
        request.type != RequestType::GraphPatch) {
        resolved = request;
        if (!resolve_graph_ref(resolved)) {
            response.status = "error";
            response.error = "UnknownGraph";
            response.detail = "no resident graph with digest " +
                              std::to_string(request.ref_digest);
            const auto end = std::chrono::steady_clock::now();
            response.service_ms = ms_between(start, end);
            finish_timing(response, request, 0.0, 0.0, response.service_ms,
                          end);
            return response;
        }
        effective = &resolved;
    }
    try {
        response.body = execute(*effective, ctx, deadline_ms);
    } catch (const run_error& e) {
        response.status = "error";
        response.error = to_string(e.code());
        response.detail = e.what();
    } catch (const precondition_error& e) {
        response.status = "error";
        response.error = "InvalidRequest";
        response.detail = e.what();
    } catch (const std::exception& e) {
        response.status = "error";
        response.error = "InternalError";
        response.detail = e.what();
    }
    const auto end = std::chrono::steady_clock::now();
    response.service_ms = ms_between(start, end);
    // No queue or batch stage on the inline path; exec is the whole turn.
    finish_timing(response, request, 0.0, 0.0, response.service_ms, end);
    return response;
}

std::size_t ServiceCore::queue_depth() const {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.size();
}

ServiceStats ServiceCore::stats() const {
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.memo_served = memo_served_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
    s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
    s.graphs_resident = graphs_.size();
    s.patches_applied = patches_applied_.load(std::memory_order_relaxed);
    s.patch_incremental = patch_incremental_.load(std::memory_order_relaxed);
    s.patch_full = patch_full_.load(std::memory_order_relaxed);
    s.patch_dirty_nodes = patch_dirty_nodes_.load(std::memory_order_relaxed);
    s.patch_total_nodes = patch_total_nodes_.load(std::memory_order_relaxed);
    s.admission_admitted = admission_admitted_.load(std::memory_order_relaxed);
    s.admission_rejected = admission_rejected_.load(std::memory_order_relaxed);
    s.admission_deferred = admission_deferred_.load(std::memory_order_relaxed);
    s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth();
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        s.big_queue_depth = big_queue_.size();
    }
    s.busy_ms =
        static_cast<double>(busy_us_.load(std::memory_order_relaxed)) / 1000.0;
    s.workers = options_.manual_drain ? 0 : options_.threads;
    return s;
}

ResultMemoStats ServiceCore::memo_stats() const { return memo_.stats(); }

SnapshotStats ServiceCore::snapshot_stats() const {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_stats_;
}

SnapshotData ServiceCore::snapshot_data() const {
    SnapshotData data;
    SnapshotSection memo_section;
    memo_section.name = "memo";
    memo_section.entries = memo_.export_entries();
    data.sections.push_back(std::move(memo_section));
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    for (const auto& [machine, cache] : view_caches_) {
        SnapshotSection section;
        section.name = "view:" + machine;
        section.entries = cache->export_entries();
        data.sections.push_back(std::move(section));
    }
    return data;
}

std::size_t ServiceCore::restore_from(const SnapshotData& data) {
    std::size_t admitted = 0;
    for (const SnapshotSection& section : data.sections) {
        if (section.name == "memo") {
            admitted += memo_.restore(section.entries);
        } else if (section.name.rfind("view:", 0) == 0) {
            admitted +=
                cache_for(section.name.substr(5))->restore(section.entries);
        }
        // Unknown sections: a newer writer's data we cannot interpret; the
        // checksummed entries we do understand are still good.
    }
    return admitted;
}

bool ServiceCore::save_snapshot() {
    if (options_.snapshot_path.empty()) {
        return true;
    }
    const SnapshotData data = snapshot_data();
    std::string error;
    // Serialize writers: the periodic thread and stop() share one tmp file.
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    if (!write_snapshot_file(options_.snapshot_path, data, &error)) {
        ++snapshot_stats_.save_failures;
        std::fprintf(stderr,
                     "{\"event\":\"snapshot_save_failed\",\"path\":\"%s\","
                     "\"error\":\"%s\"}\n",
                     options_.snapshot_path.c_str(), error.c_str());
        return false;
    }
    ++snapshot_stats_.saves;
    snapshot_stats_.entries_saved = data.total_entries();
    return true;
}

void ServiceCore::load_snapshot() {
    SnapshotData data;
    std::string error;
    const SnapshotReadResult result =
        read_snapshot_file(options_.snapshot_path, &data, &error);
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    switch (result) {
    case SnapshotReadResult::Loaded:
        ++snapshot_stats_.loads;
        snapshot_stats_.entries_loaded = restore_from(data);
        obs::Tracer::instance().instant("service", "snapshot.load");
        break;
    case SnapshotReadResult::Missing:
        break; // first boot: cold start, not an event
    case SnapshotReadResult::Rejected:
        // Never trust a rejected snapshot, even partially: log, count, and
        // cold-start.
        ++snapshot_stats_.rejected;
        std::fprintf(stderr,
                     "{\"event\":\"snapshot_rejected\",\"path\":\"%s\","
                     "\"error\":\"%s\",\"action\":\"cold_start\"}\n",
                     options_.snapshot_path.c_str(), error.c_str());
        obs::Tracer::instance().instant("service", "snapshot.reject");
        break;
    }
}

void ServiceCore::snapshot_loop() {
    const auto period = std::chrono::duration<double, std::milli>(
        options_.snapshot_period_ms);
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(snapshot_wake_mutex_);
            snapshot_wake_cv_.wait_for(
                lock,
                std::chrono::duration_cast<std::chrono::milliseconds>(period),
                [this] { return snapshot_stop_; });
            if (snapshot_stop_) {
                return; // stop() writes the final snapshot itself
            }
        }
        save_snapshot();
    }
}

ViewCacheStats ServiceCore::view_cache_stats() const {
    ViewCacheStats total;
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    for (const auto& [machine, cache] : view_caches_) {
        const ViewCacheStats s = cache->stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.evictions += s.evictions;
        total.entries += s.entries;
        total.verdict_mismatches += s.verdict_mismatches;
    }
    return total;
}

void ServiceCore::publish_metrics() {
    if (options_.obs == nullptr) {
        return;
    }
    collect_metrics(options_.obs->metrics());
}

void ServiceCore::collect_metrics(obs::MetricsRegistry& registry) const {
    registry.absorb("service.", stats().to_metrics());
    registry.absorb("service.", memo_stats().to_metrics());
    registry.absorb("service.", view_cache_stats().to_metrics());
    if (!options_.snapshot_path.empty()) {
        registry.absorb("service.", snapshot_stats().to_metrics());
    }
    if (options_.worker_index >= 0) {
        registry.absorb(
            "service.",
            {{"worker_index", static_cast<double>(options_.worker_index)},
             {"worker_generation",
              static_cast<double>(options_.worker_generation)}});
    }
    // set (not merge): publishing runs repeatedly and must stay idempotent.
    for (const auto& [name, histogram] : stage_metrics_.histograms()) {
        registry.set_histogram(name, histogram);
    }
}

ViewCache* ServiceCore::cache_for(const std::string& machine) {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    std::unique_ptr<ViewCache>& slot = view_caches_[machine];
    if (!slot) {
        slot = std::make_unique<ViewCache>(options_.view_cache_entries);
    }
    return slot.get();
}

} // namespace service
} // namespace lph
