#include "service/scrape.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <map>

namespace lph {
namespace service {

double WorkerSnapshot::metric(const std::string& name, double fallback) const {
    const auto it = metrics.find(name);
    return it != metrics.end() ? it->second : fallback;
}

obs::LogHistogram parse_log_histogram(const JsonValue& value) {
    check(value.is_object(), "histogram must be a JSON object");
    const JsonValue* count = value.find("count");
    const JsonValue* sum = value.find("sum");
    const JsonValue* min = value.find("min");
    const JsonValue* max = value.find("max");
    const JsonValue* buckets = value.find("buckets");
    check(count != nullptr && sum != nullptr && min != nullptr &&
              max != nullptr && buckets != nullptr &&
              buckets->kind == JsonValue::Kind::Array,
          "histogram needs count/sum/min/max/buckets");
    check(sum->is_number() && min->is_number() && max->is_number(),
          "histogram sum/min/max must be numbers");

    obs::LogHistogram h;
    for (const JsonValue& entry : buckets->items) {
        check(entry.kind == JsonValue::Kind::Array && entry.items.size() == 2,
              "each histogram bucket must be an [index, count] pair");
        const std::uint64_t index =
            json_to_u64(entry.items[0], "bucket index");
        const std::uint64_t n = json_to_u64(entry.items[1], "bucket count");
        check(index < obs::LogHistogram::kBucketCount,
              "bucket index out of range");
        h.inject(static_cast<std::size_t>(index), n);
    }
    const std::uint64_t expected = json_to_u64(*count, "histogram count");
    check(h.count() == expected,
          "histogram bucket counts do not add up to \"count\"");
    h.set_summary(sum->number, min->number, max->number);
    return h;
}

std::optional<WorkerSnapshot> parse_worker_snapshot(const std::string& line) {
    try {
        const JsonValue doc = parse_json(line);
        const JsonValue* status = doc.find("status");
        const JsonValue* type = doc.find("type");
        const JsonValue* metrics = doc.find("metrics");
        if (status == nullptr || !status->is_string() ||
            status->string != "ok" || type == nullptr ||
            !type->is_string() || type->string != "stats" ||
            metrics == nullptr || !metrics->is_object()) {
            return std::nullopt;
        }
        WorkerSnapshot snap;
        if (const JsonValue* pid = doc.find("pid")) {
            snap.pid = static_cast<std::int64_t>(json_to_u64(*pid, "\"pid\""));
        }
        if (const JsonValue* generation = doc.find("generation")) {
            snap.generation = json_to_u64(*generation, "\"generation\"");
        }
        if (const JsonValue* uptime = doc.find("uptime_ms")) {
            check(uptime->is_number(), "\"uptime_ms\" must be a number");
            snap.uptime_ms = uptime->number;
        }
        if (const JsonValue* worker = doc.find("worker")) {
            if (const JsonValue* index = worker->find("index")) {
                snap.worker_index =
                    static_cast<int>(json_to_u64(*index, "worker index"));
            }
        }
        for (const auto& [name, value] : metrics->members) {
            check(value.is_number(), "metric \"" + name + "\" must be a number");
            snap.metrics[name] = value.number;
        }
        if (const JsonValue* histograms = doc.find("histograms")) {
            check(histograms->is_object(), "\"histograms\" must be an object");
            for (const auto& [name, value] : histograms->members) {
                snap.histograms[name] = parse_log_histogram(value);
            }
        }
        return snap;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

ClusterView merge_workers(std::vector<WorkerSnapshot> snapshots) {
    // Last snapshot per pid wins: a scraper probing a shared listener sees
    // the same worker several times, and the latest counters subsume the
    // earlier ones (counters are monotone within a worker generation).
    std::map<std::int64_t, WorkerSnapshot> by_pid;
    for (WorkerSnapshot& snap : snapshots) {
        by_pid[snap.pid] = std::move(snap);
    }
    ClusterView view;
    view.workers.reserve(by_pid.size());
    for (auto& [pid, snap] : by_pid) {
        for (const auto& [name, value] : snap.metrics) {
            view.summed_metrics[name] += value;
        }
        for (const auto& [name, histogram] : snap.histograms) {
            view.histograms[name].merge(histogram);
        }
        view.workers.push_back(std::move(snap));
    }
    return view;
}

} // namespace service
} // namespace lph
