#pragma once

#include "obs/metrics.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lph {
namespace service {

/// Counters of a ResultMemo; all monotone except `entries`.
struct ResultMemoStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t entries = 0;

    double hit_rate() const {
        const double total = static_cast<double>(hits + misses);
        return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }

    /// Metric list under the `memo.` naming scheme, absorbed into the
    /// session registry by ServiceCore::publish_metrics — the same snapshot
    /// path the engine's GameStats/ViewCacheStats rows already use.
    obs::MetricList to_metrics() const;
};

/// Thread-safe bounded map from request memo keys (Request::memo_key) to
/// rendered response bodies.  Same sharded-LRU shape as the engine's
/// ViewCache, one level up: where the ViewCache deduplicates node views
/// *inside* a solve, this deduplicates entire requests *across* clients.
/// Only clean ("ok") results are ever inserted, so a hit can be replayed
/// verbatim under any deadline.
class ResultMemo {
public:
    explicit ResultMemo(std::size_t max_entries = 1 << 12);

    /// Returns the memoized response body, refreshing its LRU position.
    std::optional<std::string> lookup(const std::string& key);

    /// Inserts (or refreshes) a body, evicting the shard's LRU tail when the
    /// shard is over budget.
    void insert(const std::string& key, const std::string& body);

    /// Drops every entry whose memo key embeds `digest` (game/logic/decide
    /// keys end in "|<digest>").  graph_patch calls this when a resident
    /// graph's content changes so a patched graph can never be served a
    /// pre-patch body, even if a same-digest graph is re-registered later.
    std::size_t invalidate_digest(std::uint64_t digest);

    ResultMemoStats stats() const;
    void clear();

    /// Every live entry, oldest-first (per shard, shards concatenated), so
    /// that replaying them through restore() reproduces the LRU recency
    /// order.  Snapshot support (service/snapshot.hpp).
    std::vector<std::pair<std::string, std::string>> export_entries() const;

    /// Re-inserts snapshot entries without touching the hit/miss counters —
    /// a warm start must not look like traffic.  Returns how many entries
    /// were admitted (capacity may have shrunk since the snapshot).
    std::size_t restore(
        const std::vector<std::pair<std::string, std::string>>& entries);

private:
    struct Shard {
        mutable std::mutex mutex;
        /// Front = most recently used.
        std::list<std::pair<std::string, std::string>> lru;
        std::unordered_map<std::string,
                           std::list<std::pair<std::string, std::string>>::iterator>
            index;
    };

    static constexpr std::size_t kShards = 8;
    Shard& shard_for(const std::string& key);

    std::array<Shard, kShards> shards_;
    std::size_t max_entries_per_shard_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> invalidated_{0};
};

} // namespace service
} // namespace lph
