#include "service/chaos.hpp"

namespace lph {
namespace service {

namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix (same shape as
/// the engine's FaultInjector, so one seeding convention covers both
/// adversaries).
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Pure decision value for one (seed, channel, index) tuple.
std::uint64_t decide(std::uint64_t seed, std::uint64_t channel,
                     std::uint64_t index) {
    return mix(mix(seed ^ channel) ^ index);
}

bool chance(std::uint64_t h, double p) {
    if (p <= 0) {
        return false;
    }
    if (p >= 1) {
        return true;
    }
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

// Decision channels; distinct constants keep the chaos kinds independent.
constexpr std::uint64_t kKill = 0xc1;
constexpr std::uint64_t kDrop = 0xc2;
constexpr std::uint64_t kTruncate = 0xc3;
constexpr std::uint64_t kGarble = 0xc4;
constexpr std::uint64_t kDelay = 0xc5;

} // namespace

const char* to_string(ChaosAction action) {
    switch (action) {
    case ChaosAction::None: return "none";
    case ChaosAction::Delay: return "delay";
    case ChaosAction::Garble: return "garble";
    case ChaosAction::Truncate: return "truncate";
    case ChaosAction::Drop: return "drop";
    case ChaosAction::KillWorker: return "kill_worker";
    }
    return "unknown";
}

ChaosAction ChaosInjector::action_for(std::uint64_t index) const {
    if (!active()) {
        return ChaosAction::None;
    }
    if (chance(decide(plan_->seed, kKill, index), plan_->kill_prob)) {
        return ChaosAction::KillWorker;
    }
    if (chance(decide(plan_->seed, kDrop, index), plan_->drop_prob)) {
        return ChaosAction::Drop;
    }
    if (chance(decide(plan_->seed, kTruncate, index), plan_->truncate_prob)) {
        return ChaosAction::Truncate;
    }
    if (chance(decide(plan_->seed, kGarble, index), plan_->garble_prob)) {
        return ChaosAction::Garble;
    }
    if (chance(decide(plan_->seed, kDelay, index), plan_->delay_prob)) {
        return ChaosAction::Delay;
    }
    return ChaosAction::None;
}

ChaosAction ChaosInjector::next_action() {
    const std::uint64_t index =
        next_index_.fetch_add(1, std::memory_order_relaxed);
    const ChaosAction action = action_for(index);
    switch (action) {
    case ChaosAction::Delay:
        delays_.fetch_add(1, std::memory_order_relaxed);
        break;
    case ChaosAction::Garble:
        garbles_.fetch_add(1, std::memory_order_relaxed);
        break;
    case ChaosAction::Truncate:
        truncates_.fetch_add(1, std::memory_order_relaxed);
        break;
    case ChaosAction::Drop:
        drops_.fetch_add(1, std::memory_order_relaxed);
        break;
    case ChaosAction::KillWorker:
        kills_.fetch_add(1, std::memory_order_relaxed);
        break;
    case ChaosAction::None:
        break;
    }
    return action;
}

void ChaosInjector::garble(std::string& line) {
    if (!line.empty()) {
        line[line.size() / 2] =
            static_cast<char>(line[line.size() / 2] ^ '\xff');
    }
}

std::uint64_t ChaosInjector::injected(ChaosAction action) const {
    switch (action) {
    case ChaosAction::Delay: return delays_.load(std::memory_order_relaxed);
    case ChaosAction::Garble: return garbles_.load(std::memory_order_relaxed);
    case ChaosAction::Truncate:
        return truncates_.load(std::memory_order_relaxed);
    case ChaosAction::Drop: return drops_.load(std::memory_order_relaxed);
    case ChaosAction::KillWorker:
        return kills_.load(std::memory_order_relaxed);
    case ChaosAction::None: return 0;
    }
    return 0;
}

} // namespace service
} // namespace lph
