#pragma once

#include "graph/graph.hpp"
#include "graph/serialize.hpp"
#include "logic/formula.hpp"

#include <cstdint>
#include <optional>
#include <string>

namespace lph {
namespace service {

/// Size guards applied to every request line before anything is executed.
struct WireLimits {
    std::size_t max_line_bytes = 1 << 20; ///< one request line, serialized
    std::size_t max_graph_nodes = 256;    ///< per graph payload
    std::size_t max_graph_edges = 4096;
    std::size_t max_label_bits = 64;
    std::size_t max_patch_ops = 64;       ///< per graph_patch request
    std::size_t max_formula_bytes = 1 << 14; ///< per eval formula text

    GraphReadLimits graph_limits() const {
        return GraphReadLimits{max_graph_nodes, max_graph_edges, max_label_bits,
                               max_line_bytes};
    }
};

enum class RequestType {
    Game,
    Logic,
    Eval,
    Decide,
    OracleCheck,
    Stats,
    Health,
    GraphRegister,
    GraphPatch,
};

const char* to_string(RequestType type);

/// One mutation of a resident graph (an element of graph_patch's "ops"
/// array).  Node indices refer to the resident graph *as of this op* —
/// earlier ops in the same request (including remove_node renumbering)
/// already applied.
struct PatchOp {
    enum class Kind { AddEdge, RemoveEdge, Relabel, AddNode, RemoveNode };
    Kind kind = Kind::AddEdge;
    NodeId u = 0;      ///< add_edge / remove_edge / relabel / remove_node
    NodeId v = 0;      ///< add_edge / remove_edge
    std::string label; ///< relabel / add_node
};

const char* to_string(PatchOp::Kind kind);

/// One parsed wire request.  The line grammar is one strict JSON object per
/// line (DESIGN.md "Serving layer" has the full field table):
///
///   {"type":"game","machine":"coloring3","layers":1,"sigma":true,
///    "ids":"global","graph":"graph 3\nedge 0 1\nedge 1 2\nedge 0 2\n"}
///   {"type":"logic","formula":"all_selected","graph":"..."}
///   {"type":"eval","formula":"exists x. O1(x)","graph":"..."}
///   {"type":"decide","problem":"eulerian","graph":"..."}
///   {"type":"oracle_check","check":"eulerian-vs-bruteforce","seed":7,
///    "instances":25}
///   {"type":"stats"}   {"type":"health"}
///   {"type":"graph_register","graph":"graph 3\nedge 0 1\nedge 1 2\n"}
///   {"type":"graph_patch","digest":"17352...","ops":[
///    {"op":"add_edge","u":0,"v":2},{"op":"relabel","u":1,"label":"1"},
///    {"op":"add_node","label":"0"},{"op":"remove_node","u":3},
///    {"op":"remove_edge","u":0,"v":1}],"machine":"eulerian","layers":0}
///
/// graph_register admits a graph into the resident store and echoes its
/// canonical digest (a decimal string — u64 digests do not survive JSON
/// doubles); graph_patch mutates the resident copy, echoes the new digest,
/// and, when a machine is named, re-evaluates the game incrementally over
/// the dirty region.  game/logic/eval/decide accept "digest":"<decimal>" in
/// place of "graph" to run against a resident graph.
///
/// Common optional fields: "id" (echoed back verbatim; number or string),
/// "deadline_ms" (propagated into the engine's wall-clock deadline guard),
/// and "trace":{"id":<number|string>} — a client-chosen trace id echoed back
/// inside the response so multi-hop timings can be correlated; like "id" it
/// is excluded from the memo key.  "stats" additionally accepts
/// "detail":"full" for the bucket-level registry snapshot.
/// Game extras: "tolerate_faults", "fault_seed"/"fault_crash"/"fault_drop"/
/// "fault_truncate"/"fault_corrupt" (a deterministic FaultPlan), and
/// "backend" ("compiled", the default, or "interpreted" — which
/// leaf-evaluation core the game engine uses; results are bit-identical, so
/// the choice only matters for performance comparisons).  Unknown fields are
/// protocol errors — strict by design.
struct Request {
    RequestType type = RequestType::Health;
    std::string id;          ///< client correlation id, "" when absent
    double deadline_ms = 0;  ///< 0 = server default
    std::string trace_id;    ///< raw token from "trace":{"id":...}, "" absent

    // stats
    std::string stats_detail; ///< "" (summary) | "full" (bucket-level)

    // game
    std::string machine;
    int layers = 1;
    bool sigma = true;
    std::string ids = "global"; ///< identifier scheme: "global" | "local"
    bool tolerate_faults = false;
    std::uint64_t fault_seed = 0;
    double fault_crash = 0;
    double fault_drop = 0;
    double fault_truncate = 0;
    double fault_corrupt = 0;
    /// Leaf-evaluation core: "compiled" | "interpreted".  Part of the memo
    /// key — the two backends return identical verdicts but differently
    /// profiled results, and a memo must never serve a result computed by a
    /// backend the client did not ask for.
    std::string backend = "compiled";

    // logic
    std::string formula;
    std::uint64_t fseed = 0;

    // eval: "formula" carries arbitrary surface-syntax text, parsed through
    // the language frontend at parse_request time (a syntax error is a
    // protocol error carrying the frontend's line/column position).  The
    // stored text is the parser's canonical re-print, so the memo key and
    // to_json round-trip are independent of the client's spelling.
    Formula eval_formula;
    std::string eval_text;

    // decide
    std::string problem; ///< "eulerian" | "coloring" | "hamiltonian"
    int k = 3;           ///< colors, for problem == "coloring"

    // oracle_check
    std::string oracle_check;
    std::uint64_t seed = 1;
    std::size_t instances = 25;

    // graph payload (game/logic/decide/graph_register)
    bool has_graph = false;
    LabeledGraph graph;
    std::string canonical_graph; ///< graph_to_text(graph) — the digest input

    // resident-graph reference ("digest" field, decimal-string u64):
    // game/logic/decide may name a registered graph instead of carrying one
    // inline; graph_patch must.  Resolved against the GraphStore at serve
    // time (never at submit — a fire-and-forget patch chain must see every
    // earlier patch applied).
    bool has_ref_digest = false;
    std::uint64_t ref_digest = 0;

    // graph_patch: the mutations, plus an optional machine query evaluated
    // incrementally on the patched graph (the game fields above carry the
    // flavor; empty machine = mutate only).
    std::vector<PatchOp> ops;

    bool wants_fault_plan() const {
        return fault_crash > 0 || fault_drop > 0 || fault_truncate > 0 ||
               fault_corrupt > 0;
    }

    /// 64-bit digest of the canonical graph payload (0 when absent).
    std::uint64_t graph_digest() const;

    /// Cache key for the cross-request result memo: every semantically
    /// significant field, excluding `id` and `deadline_ms` (a memoized clean
    /// result is valid under any deadline).  "" for uncacheable types.
    std::string memo_key() const;

    /// Serializes back to one wire line (used by the client and the
    /// round-trip property tests).
    std::string to_json() const;
};

/// Parses one request line.  Throws precondition_error with a
/// "line <line_number>: " prefix on any malformed input: bad JSON, trailing
/// garbage, unknown type or field, or an oversized/invalid graph payload.
Request parse_request(const std::string& line, std::size_t line_number,
                      const WireLimits& limits);

/// Server-side stage breakdown of one request, carried on the response as the
/// "timing" object (all stages in whole microseconds):
///
///   queue_us  submit -> dequeue (bounded-queue wait, deadline-eligible)
///   batch_us  batch formation start -> this request's turn (shared prep +
///             intra-batch wait; 0 on unbatched paths)
///   exec_us   engine/memo execution for this request
///   write_us  response materialization after execute (memo insert + body
///             bookkeeping) — socket transmission is only visible to the
///             client, so queue+batch+exec+write <= client-measured wall time
///
/// The identity fields let an aggregator attribute the sample to a worker:
/// worker_pid is the serving process, generation its supervisor restart
/// count.  memo_hit/batch_size/backend mirror the envelope so the timing
/// object is self-contained for clients that only parse it.
struct ResponseTiming {
    bool present = false;
    std::uint64_t queue_us = 0;
    std::uint64_t batch_us = 0;
    std::uint64_t exec_us = 0;
    std::uint64_t write_us = 0;
    std::string backend;          ///< "" = not a game execution, omitted
    std::int64_t worker_pid = 0;
    std::uint64_t generation = 0;

    std::uint64_t stage_sum_us() const {
        return queue_us + batch_us + exec_us + write_us;
    }
};

/// One wire response: a single JSON line.
///
///   {"id":7,"status":"ok","type":"game","accepted":true,...,
///    "memo":"miss","batch":3,"service_ms":0.42,
///    "timing":{"queue_us":12,"batch_us":3,"exec_us":410,"write_us":2,
///     "memo_hit":false,"batch_size":3,"backend":"compiled",
///     "worker_pid":4242,"generation":1}}
///   {"status":"error","error":"DeadlineExceeded","detail":"..."}
///   {"status":"rejected","error":"QueueFull","detail":"..."}
struct Response {
    std::string id;
    RequestType type = RequestType::Health;
    std::string status = "ok"; ///< "ok" | "error" | "rejected"
    std::string error;         ///< RunError name / ProtocolError / QueueFull /
                               ///< InvalidRequest / InternalError
    std::string detail;
    /// Pre-rendered JSON members of the result ("\"accepted\":true,..."),
    /// empty for errors.  This fragment is what the result memo stores.
    std::string body;
    bool memo_hit = false;
    std::size_t batch = 1;   ///< requests served by this request's batch
    double service_ms = 0;   ///< dequeue-to-completion time
    std::string trace_id;    ///< echoed request trace id token, "" absent
    ResponseTiming timing;   ///< stage breakdown, rendered when present

    std::string to_json() const;

    static Response protocol_error(const std::string& detail);
    static Response rejection(const std::string& id, const std::string& detail);
    /// Cost-model rejection: status "rejected", error "AdmissionRejected",
    /// with the predicted cost and the violated limit echoed both in the
    /// detail text and as structured body fields.
    static Response admission_rejection(const std::string& id,
                                        double predicted_us, double limit_us);
};

/// The verdict-bearing view of one response line — what the chaos smoke and
/// `lph_client --verify --against` compare.  Only the boolean verdict fields
/// ("accepted", "answer", "satisfied", "passed") are semantic; envelope
/// fields like service_ms/memo/batch legitimately differ across runs.
struct VerdictView {
    std::string id;     ///< raw id token ("7" / "\"abc\""); "" when absent
    std::string status; ///< "ok" | "error" | "rejected"
    bool has_verdict = false;
    bool verdict = false;
};

/// Strictly parses one response line into its verdict view; nullopt when the
/// line is not a valid response object (e.g. chaos-garbled bytes) — callers
/// treat that as a transport error, never as a verdict.
std::optional<VerdictView> parse_verdict(const std::string& line);

/// Client-side view of a response's "timing" object (plus the mirrored
/// memo/batch fields), for latency-breakdown reporting in lph_client and the
/// loadgen.  nullopt when the line has no well-formed timing object.
struct TimingView {
    std::uint64_t queue_us = 0;
    std::uint64_t batch_us = 0;
    std::uint64_t exec_us = 0;
    std::uint64_t write_us = 0;
    bool memo_hit = false;
    std::uint64_t batch_size = 1;
    std::string backend;
    std::int64_t worker_pid = 0;
    std::uint64_t generation = 0;

    std::uint64_t stage_sum_us() const {
        return queue_us + batch_us + exec_us + write_us;
    }
};

std::optional<TimingView> parse_timing(const std::string& line);

/// FNV-1a 64-bit digest (the memo and batch grouping key hash).
std::uint64_t fnv1a64(const std::string& data);

} // namespace service
} // namespace lph
