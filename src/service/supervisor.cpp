#include "service/supervisor.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {
namespace service {

namespace {

std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

SupervisorLedger::SupervisorLedger(std::size_t workers, RestartPolicy policy)
    : policy_(policy), slots_(workers) {
    check(workers > 0, "supervisor needs at least one worker slot");
    check(policy_.base_backoff_ms > 0 &&
              policy_.max_backoff_ms >= policy_.base_backoff_ms,
          "restart backoff must satisfy 0 < base <= max");
    check(policy_.max_consecutive_crashes > 0,
          "the circuit breaker threshold must be positive");
}

void SupervisorLedger::on_started(std::size_t i, double now_ms) {
    Slot& slot = slots_.at(i);
    check(slot.state != SlotState::GivenUp,
          "started a worker slot the breaker had given up");
    slot.state = SlotState::Running;
    ++slot.generation;
    slot.restarts = slot.generation - 1;
    slot.started_at_ms = now_ms;
}

bool SupervisorLedger::on_exit(std::size_t i, double now_ms, bool clean) {
    Slot& slot = slots_.at(i);
    const double uptime_ms = now_ms - slot.started_at_ms;
    if (clean) {
        slot.consecutive_crashes = 0;
        slot.state = SlotState::GivenUp; // clean exit: nothing to restart
        return false;
    }
    if (uptime_ms >= policy_.min_healthy_uptime_ms) {
        // A healthy life forgives earlier crashes: backoff starts over.
        slot.consecutive_crashes = 0;
    }
    ++slot.consecutive_crashes;
    if (slot.consecutive_crashes > policy_.max_consecutive_crashes) {
        slot.state = SlotState::GivenUp;
        return false;
    }
    slot.state = SlotState::BackingOff;
    slot.restart_at_ms = now_ms + backoff_ms(slot);
    return true;
}

double SupervisorLedger::backoff_ms(const Slot& slot) const {
    double ceiling = policy_.base_backoff_ms;
    for (int i = 1; i < slot.consecutive_crashes &&
                    ceiling < policy_.max_backoff_ms;
         ++i) {
        ceiling *= 2;
    }
    ceiling = std::min(ceiling, policy_.max_backoff_ms);
    // Jitter in [0.5, 1.5): desynchronizes a pool that crashed together
    // without ever collapsing the delay to zero.
    const std::uint64_t h =
        mix(mix(policy_.jitter_seed ^ 0x5afe) ^
            (slot.generation * 131 +
             static_cast<std::uint64_t>(slot.consecutive_crashes)));
    const double jitter = 0.5 + static_cast<double>(h >> 11) * 0x1.0p-53;
    return ceiling * jitter;
}

int SupervisorLedger::due_slot(double now_ms) const {
    int best = -1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot& slot = slots_[i];
        if (slot.state == SlotState::BackingOff &&
            slot.restart_at_ms <= now_ms &&
            (best < 0 ||
             slot.restart_at_ms <
                 slots_[static_cast<std::size_t>(best)].restart_at_ms)) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

double SupervisorLedger::next_deadline_ms() const {
    double earliest = -1;
    for (const Slot& slot : slots_) {
        if (slot.state == SlotState::BackingOff &&
            (earliest < 0 || slot.restart_at_ms < earliest)) {
            earliest = slot.restart_at_ms;
        }
    }
    return earliest;
}

std::size_t SupervisorLedger::running() const {
    std::size_t n = 0;
    for (const Slot& slot : slots_) {
        n += slot.state == SlotState::Running ? 1 : 0;
    }
    return n;
}

std::size_t SupervisorLedger::given_up() const {
    std::size_t n = 0;
    for (const Slot& slot : slots_) {
        n += slot.state == SlotState::GivenUp ? 1 : 0;
    }
    return n;
}

std::uint64_t SupervisorLedger::total_restarts() const {
    std::uint64_t n = 0;
    for (const Slot& slot : slots_) {
        n += slot.restarts;
    }
    return n;
}

} // namespace service
} // namespace lph
