#include "service/graph_store.hpp"

#include "core/check.hpp"
#include "dtm/view_cache.hpp"
#include "graph/serialize.hpp"
#include "oracle/generators.hpp"

#include <algorithm>
#include <utility>

namespace lph {
namespace service {

void apply_patch_op(LabeledGraph& g, const PatchOp& op) {
    const auto check_node = [&](NodeId u) {
        check(u < g.num_nodes(),
              "patch: node " + std::to_string(u) + " out of range (graph has " +
                  std::to_string(g.num_nodes()) + " nodes)");
    };
    switch (op.kind) {
    case PatchOp::Kind::AddEdge:
        check_node(op.u);
        check_node(op.v);
        check(op.u != op.v, "patch: add_edge rejects self-loops");
        check(!g.has_edge(op.u, op.v),
              "patch: edge {" + std::to_string(op.u) + "," +
                  std::to_string(op.v) + "} already present");
        g.add_edge(op.u, op.v);
        return;
    case PatchOp::Kind::RemoveEdge:
        check_node(op.u);
        check_node(op.v);
        check(g.has_edge(op.u, op.v),
              "patch: edge {" + std::to_string(op.u) + "," +
                  std::to_string(op.v) + "} not present");
        g.remove_edge(op.u, op.v);
        return;
    case PatchOp::Kind::Relabel:
        check_node(op.u);
        g.set_label(op.u, op.label);
        return;
    case PatchOp::Kind::AddNode:
        g.add_node(op.label);
        return;
    case PatchOp::Kind::RemoveNode:
        check_node(op.u);
        check(g.neighbors(op.u).empty(),
              "patch: remove_node requires node " + std::to_string(op.u) +
                  " to be isolated");
        check(g.num_nodes() > 1, "patch: cannot remove the last node");
        g.remove_node(op.u);
        return;
    }
    check(false, "patch: unknown op kind");
}

namespace {

/// Marks every node within `radius` of `seed` in `g`.
void mark_ball(const LabeledGraph& g, NodeId seed, int radius,
               std::vector<char>& flags) {
    if (radius < 0) {
        return;
    }
    const std::vector<int> dist = bounded_distances(g, seed, radius);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (dist[v] >= 0) {
            flags[v] = 1;
        }
    }
}

} // namespace

GraphStore::RegisterResult GraphStore::register_graph(
    const LabeledGraph& graph, const std::string& canonical) {
    const std::uint64_t digest = fnv1a64(canonical);
    RegisterResult result;
    result.digest = digest;
    result.nodes = graph.num_nodes();
    result.edges = graph.num_edges();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(digest);
    if (it != graphs_.end()) {
        result.existed = true;
        return result;
    }
    auto resident = std::make_shared<ResidentGraph>();
    resident->graph = graph;
    resident->canonical = canonical;
    resident->digest = digest;
    graphs_.emplace(digest, std::move(resident));
    return result;
}

std::shared_ptr<ResidentGraph> GraphStore::find(std::uint64_t digest) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(digest);
    return it == graphs_.end() ? nullptr : it->second;
}

PatchOutcome GraphStore::apply_patch(std::uint64_t digest,
                                     const std::vector<PatchOp>& ops,
                                     int radius, const std::string& id_scheme,
                                     int r_id, const std::string& flavor,
                                     const WireLimits& limits) {
    const std::shared_ptr<ResidentGraph> resident = find(digest);
    check(resident != nullptr,
          "unknown graph digest " + std::to_string(digest));
    std::lock_guard<std::mutex> lock(resident->mutex);
    check(resident->digest == digest,
          "unknown graph digest " + std::to_string(digest) +
              " (graph was re-keyed by a concurrent patch)");

    // Stage everything on a copy: an invalid op midway must leave the
    // resident untouched.
    const LabeledGraph& original = resident->graph;
    LabeledGraph work = original;
    std::vector<char> dirty_flags(work.num_nodes(), 0);
    std::vector<std::ptrdiff_t> old_of_new(work.num_nodes());
    for (std::size_t v = 0; v < old_of_new.size(); ++v) {
        old_of_new[v] = static_cast<std::ptrdiff_t>(v);
    }

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const PatchOp& op = ops[i];
        try {
            switch (op.kind) {
            case PatchOp::Kind::AddEdge:
            case PatchOp::Kind::RemoveEdge:
                check(op.kind == PatchOp::Kind::RemoveEdge ||
                          work.num_edges() < limits.max_graph_edges,
                      "patch: graph would exceed " +
                          std::to_string(limits.max_graph_edges) + " edges");
                // An edge edit changes the view of every node within R of an
                // endpoint along paths that existed before OR exist after the
                // edit — BFS both sides (numbering is unchanged by edge ops).
                if (op.u < work.num_nodes() && op.v < work.num_nodes()) {
                    mark_ball(work, op.u, radius, dirty_flags);
                    mark_ball(work, op.v, radius, dirty_flags);
                }
                apply_patch_op(work, op);
                mark_ball(work, op.u, radius, dirty_flags);
                mark_ball(work, op.v, radius, dirty_flags);
                break;
            case PatchOp::Kind::Relabel:
                apply_patch_op(work, op);
                // Labels are visible strictly inside the view (distance
                // <= R-1): a relabel at distance exactly R never reaches a
                // node's verdict, which the boundary tests pin down.
                mark_ball(work, op.u, radius - 1, dirty_flags);
                break;
            case PatchOp::Kind::AddNode:
                check(work.num_nodes() < limits.max_graph_nodes,
                      "patch: graph would exceed " +
                          std::to_string(limits.max_graph_nodes) + " nodes");
                apply_patch_op(work, op);
                dirty_flags.push_back(1);
                old_of_new.push_back(-1);
                break;
            case PatchOp::Kind::RemoveNode:
                // The node is isolated, so its removal only affects others
                // through renumbering — the identifier pass below catches
                // every id shift.
                apply_patch_op(work, op);
                dirty_flags.erase(dirty_flags.begin() +
                                  static_cast<std::ptrdiff_t>(op.u));
                old_of_new.erase(old_of_new.begin() +
                                 static_cast<std::ptrdiff_t>(op.u));
                break;
            }
        } catch (const precondition_error& e) {
            throw precondition_error("op " + std::to_string(i) + ": " +
                                     e.what());
        }
    }

    // Identifier pass: ids are assigned per graph (global ids widen with the
    // node count; local ids depend on structure), so any node whose id
    // differs from its pre-patch id dirties its whole radius-R ball.
    {
        const IdentifierAssignment old_ids =
            identifier_scheme_by_name(id_scheme, original, r_id);
        const IdentifierAssignment new_ids =
            identifier_scheme_by_name(id_scheme, work, r_id);
        for (NodeId v = 0; v < work.num_nodes(); ++v) {
            if (old_of_new[v] >= 0 &&
                new_ids(v) ==
                    old_ids(static_cast<NodeId>(old_of_new[v]))) {
                continue;
            }
            mark_ball(work, v, radius, dirty_flags);
        }
    }

    PatchOutcome outcome;
    outcome.old_digest = digest;
    outcome.canonical = graph_to_text(work);
    outcome.new_digest = fnv1a64(outcome.canonical);
    outcome.graph = work;
    outcome.old_of_new = std::move(old_of_new);
    for (NodeId v = 0; v < work.num_nodes(); ++v) {
        if (dirty_flags[v] != 0) {
            outcome.dirty.push_back(v);
        }
    }
    if (!flavor.empty()) {
        auto it = resident->retained.find(flavor);
        if (it != resident->retained.end() && it->second.digest == digest) {
            outcome.retained_outputs = it->second.outputs;
            outcome.has_retained = true;
        }
    }

    // Commit: re-key the store entry (map mutex nests inside the resident
    // mutex, never the reverse), then swap the staged graph in.
    if (outcome.new_digest != digest) {
        std::lock_guard<std::mutex> map_lock(mutex_);
        graphs_.erase(digest);
        // If a distinct resident already holds the new digest (the patch
        // reproduced registered content), this resident takes over the key;
        // digests name content, so either answer is the same graph.
        graphs_[outcome.new_digest] = resident;
    }
    resident->graph = std::move(work);
    resident->canonical = outcome.canonical;
    resident->digest = outcome.new_digest;
    outcome.version = ++resident->version;
    return outcome;
}

void GraphStore::store_verdicts(std::uint64_t digest,
                                const std::string& flavor,
                                std::vector<std::string> outputs) {
    const std::shared_ptr<ResidentGraph> resident = find(digest);
    if (resident == nullptr) {
        return;
    }
    std::lock_guard<std::mutex> lock(resident->mutex);
    if (resident->digest != digest) {
        return; // a concurrent patch moved the content on; drop silently
    }
    ResidentGraph::Verdicts& slot = resident->retained[flavor];
    slot.digest = digest;
    slot.outputs = std::move(outputs);
}

std::size_t GraphStore::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return graphs_.size();
}

} // namespace service
} // namespace lph
