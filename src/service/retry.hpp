#pragma once

#include "obs/metrics.hpp"

#include <cstdint>
#include <string>

namespace lph {
namespace service {

/// Client-side retry knobs: jittered exponential backoff with a per-request
/// timeout.  Replaying a request is always safe against this service —
/// request execution is a deterministic function of the request's semantic
/// fields, and the memo key excludes id/deadline, so a redelivered request
/// returns the same verdict (typically as a memo hit).
struct RetryPolicy {
    int max_retries = 3;         ///< attempts beyond the first
    double timeout_ms = 2000;    ///< per-attempt response deadline; 0 = none
    double base_backoff_ms = 10; ///< backoff before retry k is base * 2^k ...
    double max_backoff_ms = 500; ///< ... capped here, then jittered
    std::uint64_t seed = 1;      ///< jitter seed (splitmix64 channels)
};

/// Full-jitter backoff before retry `attempt` (1-based) of request
/// `request_index`: uniform in [0, min(max, base * 2^(attempt-1))).  Pure in
/// (seed, request_index, attempt), so a retry schedule replays exactly.
double backoff_delay_ms(const RetryPolicy& policy, std::uint64_t request_index,
                        int attempt);

/// Counters of one retrying client session.
struct RetryStats {
    std::uint64_t sent = 0;        ///< first-attempt sends
    std::uint64_t retries = 0;     ///< re-sends after timeout/disconnect/reject
    std::uint64_t redelivered = 0; ///< duplicate responses discarded (the
                                   ///< first response per id wins)
    std::uint64_t abandoned = 0;   ///< requests given up after max_retries
    std::uint64_t reconnects = 0;  ///< connections re-established

    /// Metric list under the `retry.` naming scheme, for BENCH rows.
    obs::MetricList to_metrics() const;
};

} // namespace service
} // namespace lph
