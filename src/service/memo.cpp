#include "service/memo.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace lph {
namespace service {

obs::MetricList ResultMemoStats::to_metrics() const {
    return {
        {"memo.hits", static_cast<double>(hits)},
        {"memo.misses", static_cast<double>(misses)},
        {"memo.evictions", static_cast<double>(evictions)},
        {"memo.invalidated", static_cast<double>(invalidated)},
        {"memo.entries", static_cast<double>(entries)},
        {"memo.hit_rate", hit_rate()},
    };
}

ResultMemo::ResultMemo(std::size_t max_entries) {
    max_entries_per_shard_ = std::max<std::size_t>(1, max_entries / kShards);
}

ResultMemo::Shard& ResultMemo::shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
}

std::optional<std::string> ResultMemo::lookup(const std::string& key) {
    LPH_SPAN_NAMED(span, "service", "memo.lookup");
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        span.arg("hit", 0);
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    span.arg("hit", 1);
    return it->second->second;
}

void ResultMemo::insert(const std::string& key, const std::string& body) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Requests are deterministic functions of their memo key, so a
        // re-insert carries the same body; just refresh recency.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.emplace_front(key, body);
    shard.index.emplace(key, shard.lru.begin());
    while (shard.lru.size() > max_entries_per_shard_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::instance().instant("service", "memo.evict");
    }
}

std::size_t ResultMemo::invalidate_digest(std::uint64_t digest) {
    // Game/logic/decide memo keys end with '|' + decimal digest (wire.cpp
    // memo_key); everything else (stats/health/register/patch) is unkeyed.
    const std::string suffix = "|" + std::to_string(digest);
    std::size_t dropped = 0;
    for (Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto it = shard.lru.begin(); it != shard.lru.end();) {
            const std::string& key = it->first;
            if (key.size() >= suffix.size() &&
                key.compare(key.size() - suffix.size(), suffix.size(),
                            suffix) == 0) {
                shard.index.erase(key);
                it = shard.lru.erase(it);
                ++dropped;
            } else {
                ++it;
            }
        }
    }
    invalidated_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
}

ResultMemoStats ResultMemo::stats() const {
    ResultMemoStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.invalidated = invalidated_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        stats.entries += shard.lru.size();
    }
    return stats;
}

void ResultMemo::clear() {
    for (Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        shard.lru.clear();
        shard.index.clear();
    }
}

std::vector<std::pair<std::string, std::string>>
ResultMemo::export_entries() const {
    std::vector<std::pair<std::string, std::string>> entries;
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        // The list runs MRU-to-LRU; walk it backwards for oldest-first.
        for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
            entries.push_back(*it);
        }
    }
    return entries;
}

std::size_t ResultMemo::restore(
    const std::vector<std::pair<std::string, std::string>>& entries) {
    std::size_t admitted = 0;
    std::unordered_set<std::string> admitted_keys;
    for (const auto& [key, body] : entries) {
        Shard& shard = shard_for(key);
        const std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            continue;
        }
        shard.lru.emplace_front(key, body);
        shard.index.emplace(key, shard.lru.begin());
        ++admitted;
        admitted_keys.insert(key);
        while (shard.lru.size() > max_entries_per_shard_) {
            // Only evictions of entries *this call* admitted cancel out of
            // the admitted count; displacing a pre-existing LRU tail does
            // not make the snapshot entry any less admitted.
            const std::string& victim = shard.lru.back().first;
            if (admitted_keys.erase(victim) > 0) {
                --admitted;
            }
            shard.index.erase(victim);
            shard.lru.pop_back();
        }
    }
    return admitted;
}

} // namespace service
} // namespace lph
