#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace lph {
namespace service {

/// What the chaos layer does to one wire response before it reaches the
/// peer.  At most one action fires per response; the precedence when several
/// channels trip is KillWorker > Drop > Truncate > Garble > Delay — the
/// harsher fault wins, matching how a real incident would present.
enum class ChaosAction {
    None,
    Delay,      ///< hold the response for delay_ms, then send it intact
    Garble,     ///< flip one byte (xor 0xFF), then send
    Truncate,   ///< send only the first half, then drop the connection
    Drop,       ///< send nothing and drop the connection
    KillWorker, ///< _exit() the worker process mid-request
};

const char* to_string(ChaosAction action);

/// Registers the serving layer's differential checks (currently
/// "service-chaos-vs-direct") with the oracle harness registry; idempotent.
/// Called by ServiceCore's constructor so any binary that serves requests can
/// also fuzz itself.
void register_service_checks();

/// Deterministic, seed-replayable wire-level adversary — the transport-layer
/// sibling of the engine's FaultPlan (dtm/faults.hpp).  Every decision is a
/// pure function of (seed, channel, response index) via splitmix64-style
/// hashing, so a chaos run replays identically regardless of worker count or
/// scheduling, and a single seed fully describes the adversary.
///
/// Garbling is xor-with-0xFF by construction: any garbled ASCII byte lands
/// at >= 0x80, which can never be a JSON digit, quote, or a byte of
/// "true"/"false" — so a garbled response can fail to parse or fail
/// validation, but can never be mistaken for a *different valid verdict*.
/// That is what lets the chaos oracle check assert zero incorrect responses
/// rather than merely zero crashes.
struct ChaosPlan {
    std::uint64_t seed = 0;

    double drop_prob = 0.0;     ///< per response: connection cut, no bytes
    double truncate_prob = 0.0; ///< per response: half the bytes, then cut
    double garble_prob = 0.0;   ///< per response: one byte xor 0xFF
    double delay_prob = 0.0;    ///< per response: stalled by delay_ms
    double kill_prob = 0.0;     ///< per response: worker process killed

    double delay_ms = 5.0;

    bool empty() const {
        return drop_prob <= 0 && truncate_prob <= 0 && garble_prob <= 0 &&
               delay_prob <= 0 && kill_prob <= 0;
    }
};

/// Exit status a chaos-killed worker dies with, so the supervisor can tell
/// injected kills from genuine crashes in its log (both restart the worker).
constexpr int kChaosKillExitStatus = 86;

/// Stateless evaluator of a ChaosPlan, usable concurrently; also keeps
/// monotone counters of what actually fired (for logs and metrics).
class ChaosInjector {
public:
    /// A null plan (or nullptr) injects nothing.
    explicit ChaosInjector(const ChaosPlan* plan) : plan_(plan) {}

    bool active() const { return plan_ != nullptr && !plan_->empty(); }

    /// The action for the `index`-th response this process sends.  Pure in
    /// (seed, index); does not bump counters.
    ChaosAction action_for(std::uint64_t index) const;

    /// action_for() on a process-wide response counter, with the chosen
    /// action's counter bumped — the transport hook.
    ChaosAction next_action();

    /// In-place garble: xors the middle byte with 0xFF (no-op on "").
    static void garble(std::string& line);

    double delay_ms() const { return plan_ != nullptr ? plan_->delay_ms : 0; }

    std::uint64_t injected(ChaosAction action) const;
    std::uint64_t responses_seen() const {
        return next_index_.load(std::memory_order_relaxed);
    }

private:
    const ChaosPlan* plan_;
    std::atomic<std::uint64_t> next_index_{0};
    std::atomic<std::uint64_t> delays_{0};
    std::atomic<std::uint64_t> garbles_{0};
    std::atomic<std::uint64_t> truncates_{0};
    std::atomic<std::uint64_t> drops_{0};
    std::atomic<std::uint64_t> kills_{0};
};

} // namespace service
} // namespace lph
