// The "service-chaos-vs-direct" differential check: serve a seeded request
// workload through a ServiceCore while a ChaosPlan mangles the rendered
// response lines (and "kills the worker" by tearing the core down and
// warm-starting a fresh one from an encoded snapshot), with a retrying
// client on top.  The invariant under test is the resilience contract:
// chaos may cost retries or leave requests unanswered, but every *valid ok
// response* that reaches the client must carry exactly the verdict the
// direct (unbatched, chaos-free) execution produces.  The kill path doubles
// as a snapshot-codec round-trip fuzz.

#include "graph/serialize.hpp"
#include "oracle/generators.hpp"
#include "oracle/harness.hpp"
#include "service/chaos.hpp"
#include "service/core.hpp"
#include "service/graph_store.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"

#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace lph {
namespace service {

namespace {

constexpr int kMaxClientRounds = 12;

double prob_param(const ReproCase& r, const std::string& key) {
    const auto it = r.params.find(key);
    return it != r.params.end() ? std::stod(it->second) : 0.0;
}

/// A small mixed workload over the repro graph: two decider games (one
/// repeated, so the memo path is exercised across the simulated crash), a
/// logic query, and a decide query.
std::vector<Request> build_workload(const LabeledGraph& graph) {
    std::vector<Request> requests;
    auto with_graph = [&graph](Request request) {
        request.has_graph = true;
        request.graph = graph;
        request.canonical_graph = graph_to_text(graph);
        return request;
    };
    Request game;
    game.type = RequestType::Game;
    game.machine = "allsel";
    game.layers = 0;
    game.sigma = true;
    game.ids = "global";
    requests.push_back(with_graph(game));
    Request eulerian_game = game;
    eulerian_game.machine = "eulerian";
    requests.push_back(with_graph(eulerian_game));
    Request logic;
    logic.type = RequestType::Logic;
    logic.formula = "all_selected";
    requests.push_back(with_graph(logic));
    Request decide;
    decide.type = RequestType::Decide;
    decide.problem = "eulerian";
    requests.push_back(with_graph(decide));
    requests.push_back(with_graph(game)); // memo-hit replay of request 0
    for (std::size_t i = 0; i < requests.size(); ++i) {
        requests[i].id = std::to_string(i);
    }
    return requests;
}

ReproCase generate_service_chaos_case(Rng& rng) {
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 1;
    gopt.max_nodes = 5;
    gopt.max_extra_edges = 3;
    gopt.allow_disconnected = true;
    gopt.labels = GraphGenOptions::Labels::ZeroOrOne;
    r.graph = random_graph_instance(rng, gopt);
    r.params["chaos_seed"] = std::to_string(rng.uniform(0, 1u << 20));
    r.params["drop"] = rng.chance(0.5) ? "0.25" : "0.1";
    r.params["truncate"] = rng.chance(0.5) ? "0.2" : "0";
    r.params["garble"] = rng.chance(0.5) ? "0.2" : "0";
    r.params["kill"] = rng.chance(0.5) ? "0.15" : "0";
    return r;
}

std::optional<std::string> compare_service_chaos(const ReproCase& r) {
    const std::vector<Request> requests = build_workload(r.graph);

    ServiceOptions options;
    options.manual_drain = true;
    options.memoize_results = true;

    // Golden verdicts: direct execution, no queue, no memo, no chaos.
    ServiceCore reference(options);
    std::vector<std::optional<VerdictView>> golden;
    for (const Request& request : requests) {
        golden.push_back(parse_verdict(reference.serve_unbatched(request).to_json()));
    }

    ChaosPlan plan;
    plan.seed = std::stoull(r.params.at("chaos_seed"));
    plan.drop_prob = prob_param(r, "drop");
    plan.truncate_prob = prob_param(r, "truncate");
    plan.garble_prob = prob_param(r, "garble");
    plan.kill_prob = prob_param(r, "kill");
    ChaosInjector injector(&plan);

    auto core = std::make_unique<ServiceCore>(options);
    std::set<std::size_t> unanswered;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        unanswered.insert(i);
    }

    for (int round = 0; round < kMaxClientRounds && !unanswered.empty();
         ++round) {
        const std::vector<std::size_t> attempt(unanswered.begin(),
                                               unanswered.end());
        for (const std::size_t i : attempt) {
            std::string line = core->call(requests[i]).to_json();
            switch (injector.next_action()) {
            case ChaosAction::KillWorker: {
                // Simulated crash + supervised warm restart: the response is
                // lost with the worker, the next core starts from the dead
                // worker's snapshot (round-tripped through the codec).
                const std::string bytes = encode_snapshot(core->snapshot_data());
                SnapshotData restored;
                std::string error;
                if (decode_snapshot(bytes, &restored, &error) !=
                    SnapshotReadResult::Loaded) {
                    return "snapshot round-trip rejected its own encoding: " +
                           error;
                }
                core = std::make_unique<ServiceCore>(options);
                core->restore_from(restored);
                continue;
            }
            case ChaosAction::Drop:
                continue; // no bytes reached the client; it will retry
            case ChaosAction::Truncate:
                line.erase(line.size() / 2);
                break;
            case ChaosAction::Garble:
                ChaosInjector::garble(line);
                break;
            case ChaosAction::Delay: // no wall-clock sleeps inside the fuzzer
            case ChaosAction::None:
                break;
            }
            const std::optional<VerdictView> view = parse_verdict(line);
            if (!view.has_value()) {
                continue; // mangled on the wire; the client retries
            }
            if (view->status != "ok") {
                continue; // structured errors/rejections are permitted; retry
            }
            // A valid ok response must be *correct*: right id, same verdict
            // as the direct execution.  This is the zero-incorrect-responses
            // assertion of the resilience contract.
            std::ostringstream detail;
            if (view->id != requests[i].id) {
                detail << "response to request " << requests[i].id
                       << " carried id " << view->id;
                return detail.str();
            }
            if (!golden[i].has_value() || golden[i]->status != "ok") {
                detail << "request " << requests[i].id
                       << " got ok under chaos but "
                       << (golden[i] ? golden[i]->status : "unparseable")
                       << " directly";
                return detail.str();
            }
            if (view->has_verdict != golden[i]->has_verdict ||
                (view->has_verdict && view->verdict != golden[i]->verdict)) {
                detail << "request " << requests[i].id << " ("
                       << to_string(requests[i].type) << ") verdict "
                       << (view->has_verdict ? (view->verdict ? "true" : "false")
                                             : "absent")
                       << " under chaos but "
                       << (golden[i]->has_verdict
                               ? (golden[i]->verdict ? "true" : "false")
                               : "absent")
                       << " directly";
                return detail.str();
            }
            unanswered.erase(i);
        }
    }
    // Requests still unanswered after the retry budget are a liveness cost
    // of aggressive chaos, not a correctness failure — only wrong responses
    // diverge.
    return std::nullopt;
}

// --- service-patch-vs-full-recompute ------------------------------------
//
// Drives a seeded patch sequence against a resident graph through the core's
// graph_register/graph_patch path (incremental dirty-ball recomputation) and
// replays the same sequence as plain inline-graph game requests through
// serve_unbatched (one full recompute per step).  The game fragments must be
// byte-identical at every step, and the digest the patch echoes must match
// the digest of the reference graph mutated by the same ops.

/// One random valid mutation of g; falls back to a label flip of node 0
/// when the drawn kind has no valid move (e.g. remove_edge on an edgeless
/// graph).
PatchOp random_patch_op(Rng& rng, const LabeledGraph& g) {
    for (int attempt = 0; attempt < 16; ++attempt) {
        switch (rng.index(5)) {
        case 0: { // add_edge
            if (g.num_nodes() < 2) {
                break;
            }
            const NodeId u = static_cast<NodeId>(rng.index(g.num_nodes()));
            const NodeId v = static_cast<NodeId>(rng.index(g.num_nodes()));
            if (u != v && !g.has_edge(u, v)) {
                PatchOp op;
                op.kind = PatchOp::Kind::AddEdge;
                op.u = std::min(u, v);
                op.v = std::max(u, v);
                return op;
            }
            break;
        }
        case 1: { // remove_edge (uniform over existing edges)
            std::vector<std::pair<NodeId, NodeId>> edges;
            for (NodeId u = 0; u < g.num_nodes(); ++u) {
                for (const NodeId v : g.neighbors(u)) {
                    if (u < v) {
                        edges.emplace_back(u, v);
                    }
                }
            }
            if (edges.empty()) {
                break;
            }
            const auto& [u, v] = edges[rng.index(edges.size())];
            PatchOp op;
            op.kind = PatchOp::Kind::RemoveEdge;
            op.u = u;
            op.v = v;
            return op;
        }
        case 2: { // relabel
            PatchOp op;
            op.kind = PatchOp::Kind::Relabel;
            op.u = static_cast<NodeId>(rng.index(g.num_nodes()));
            op.label = rng.chance(0.5) ? "1" : "0";
            return op;
        }
        case 3: { // add_node
            if (g.num_nodes() >= 16) {
                break; // keep shrunk repros small
            }
            PatchOp op;
            op.kind = PatchOp::Kind::AddNode;
            op.label = rng.chance(0.5) ? "1" : "0";
            return op;
        }
        case 4: { // remove_node (uniform over isolated nodes)
            if (g.num_nodes() < 2) {
                break;
            }
            std::vector<NodeId> isolated;
            for (NodeId u = 0; u < g.num_nodes(); ++u) {
                if (g.neighbors(u).empty()) {
                    isolated.push_back(u);
                }
            }
            if (isolated.empty()) {
                break;
            }
            PatchOp op;
            op.kind = PatchOp::Kind::RemoveNode;
            op.u = isolated[rng.index(isolated.size())];
            return op;
        }
        }
    }
    PatchOp op;
    op.kind = PatchOp::Kind::Relabel;
    op.u = 0;
    op.label = g.label(0) == "1" ? "0" : "1";
    return op;
}

ReproCase generate_patch_case(Rng& rng) {
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 2;
    gopt.max_nodes = 7;
    gopt.max_extra_edges = 3;
    gopt.allow_disconnected = true;
    gopt.labels = GraphGenOptions::Labels::ZeroOrOne;
    r.graph = random_graph_instance(rng, gopt);
    static const char* kMachines[] = {"allsel", "eulerian", "coloring2",
                                      "coloring3"};
    r.params["machine"] = kMachines[rng.index(4)];
    // Mostly deciders (the retained-verdict fast path); some one-layer games
    // (the engine's partial-leaf path).
    r.params["layers"] = rng.chance(0.3) ? "1" : "0";
    r.params["ids"] = rng.chance(0.5) ? "local" : "global";
    r.params["steps"] = std::to_string(rng.uniform(1, 5));
    r.params["ops_seed"] = std::to_string(rng.uniform(0, 1u << 20));
    return r;
}

std::string param(const ReproCase& r, const std::string& key,
                  const std::string& fallback) {
    const auto it = r.params.find(key);
    return it != r.params.end() ? it->second : fallback;
}

std::optional<std::string> compare_patch_vs_full(const ReproCase& r) {
    const std::string machine = param(r, "machine", "eulerian");
    const int layers = std::stoi(param(r, "layers", "0"));
    const std::string ids = param(r, "ids", "global");
    const int steps = std::stoi(param(r, "steps", "3"));
    Rng ops_rng(std::stoull(param(r, "ops_seed", "1")));

    ServiceOptions options;
    options.manual_drain = true;
    ServiceCore core(options);     // serves the incremental patch path
    ServiceCore reference(options); // full recompute on inline graphs

    // The golden side re-solves from scratch on the interpreted backend (the
    // backend the partial path uses); compiled-vs-interpreted parity is its
    // own check.
    Request golden_query;
    golden_query.type = RequestType::Game;
    golden_query.machine = machine;
    golden_query.layers = layers;
    golden_query.sigma = true;
    golden_query.ids = ids;
    golden_query.backend = "interpreted";

    LabeledGraph mirror = r.graph;
    Request reg;
    reg.type = RequestType::GraphRegister;
    reg.has_graph = true;
    reg.graph = mirror;
    reg.canonical_graph = graph_to_text(mirror);
    if (core.call(reg).status != "ok") {
        return "graph_register failed";
    }
    std::uint64_t digest = fnv1a64(reg.canonical_graph);

    for (int step = 0; step < steps; ++step) {
        Request patch;
        patch.type = RequestType::GraphPatch;
        patch.has_ref_digest = true;
        patch.ref_digest = digest;
        patch.machine = machine;
        patch.layers = layers;
        patch.sigma = true;
        patch.ids = ids;
        const std::size_t op_count = 1 + ops_rng.index(2);
        LabeledGraph staged = mirror;
        for (std::size_t i = 0; i < op_count; ++i) {
            const PatchOp op = random_patch_op(ops_rng, staged);
            apply_patch_op(staged, op); // the shared reference semantics
            patch.ops.push_back(op);
        }
        const Response served = core.call(patch);
        mirror = staged;
        digest = fnv1a64(graph_to_text(mirror));

        // Whatever the query outcome, the ops themselves must have committed:
        // the resident must stay addressable at the mirror's digest (a
        // zero-op patch is a pure state probe).
        Request probe;
        probe.type = RequestType::GraphPatch;
        probe.has_ref_digest = true;
        probe.ref_digest = digest;
        const Response probed = core.call(probe);
        if (probed.status != "ok") {
            std::ostringstream desync;
            desync << "step " << step << ": resident graph desynced (probe at "
                   << digest << ": " << probed.error << ": " << probed.detail
                   << "); ops:";
            for (const PatchOp& op : patch.ops) {
                desync << ' ' << to_string(op.kind) << '(' << op.u << ','
                       << op.v << ')';
            }
            return desync.str();
        }

        golden_query.has_graph = true;
        golden_query.graph = mirror;
        golden_query.canonical_graph = graph_to_text(mirror);
        const Response golden = reference.serve_unbatched(golden_query);

        std::ostringstream detail;
        if (served.status != golden.status) {
            detail << "step " << step << ": patch status " << served.status
                   << " (" << served.error << ": " << served.detail
                   << ") but full recompute " << golden.status << " ("
                   << golden.error << ": " << golden.detail << "); ops:";
            for (const PatchOp& op : patch.ops) {
                detail << ' ' << to_string(op.kind) << '(' << op.u << ','
                       << op.v << ')';
            }
            detail << "; graph: " << golden_query.canonical_graph;
            return detail.str();
        }
        if (served.status != "ok") {
            if (served.error != golden.error) {
                detail << "step " << step << ": patch error " << served.error
                       << " but full recompute " << golden.error;
                return detail.str();
            }
            continue; // both faulted identically (e.g. non-unique local ids)
        }
        const std::string expected_digest =
            "\"digest\":\"" + std::to_string(digest) + '"';
        if (served.body.rfind(expected_digest, 0) != 0) {
            detail << "step " << step << ": patch echoed "
                   << served.body.substr(0, expected_digest.size())
                   << " but the reference graph digests to " << digest;
            return detail.str();
        }
        const std::size_t fragment_at = served.body.find("\"accepted\":");
        if (fragment_at == std::string::npos) {
            detail << "step " << step << ": patch body carries no game "
                   << "fragment: " << served.body;
            return detail.str();
        }
        if (served.body.substr(fragment_at) != golden.body) {
            detail << "step " << step << ": incremental fragment "
                   << served.body.substr(fragment_at)
                   << " != full recompute " << golden.body;
            return detail.str();
        }
    }

    // The resident graph must also answer a plain digest-reference query
    // with the full-recompute body.
    Request by_ref = golden_query;
    by_ref.has_graph = false;
    by_ref.graph = LabeledGraph{};
    by_ref.canonical_graph.clear();
    by_ref.has_ref_digest = true;
    by_ref.ref_digest = digest;
    const Response ref_served = core.call(by_ref);
    const Response golden = reference.serve_unbatched(golden_query);
    if (ref_served.status != golden.status ||
        (ref_served.status == "ok" && ref_served.body != golden.body)) {
        return "digest-reference query diverged from full recompute: " +
               (ref_served.status == "ok" ? ref_served.body
                                          : ref_served.error) +
               " != " + (golden.status == "ok" ? golden.body : golden.error);
    }
    return std::nullopt;
}

} // namespace

void register_service_checks() {
    static std::once_flag once;
    std::call_once(once, [] {
        RegisteredCheck chaos_check;
        chaos_check.name = "service-chaos-vs-direct";
        chaos_check.generate = generate_service_chaos_case;
        chaos_check.compare = compare_service_chaos;
        register_check(chaos_check);
        RegisteredCheck patch_check;
        patch_check.name = "service-patch-vs-full-recompute";
        patch_check.generate = generate_patch_case;
        patch_check.compare = compare_patch_vs_full;
        register_check(patch_check);
    });
}

} // namespace service
} // namespace lph
