// The "service-chaos-vs-direct" differential check: serve a seeded request
// workload through a ServiceCore while a ChaosPlan mangles the rendered
// response lines (and "kills the worker" by tearing the core down and
// warm-starting a fresh one from an encoded snapshot), with a retrying
// client on top.  The invariant under test is the resilience contract:
// chaos may cost retries or leave requests unanswered, but every *valid ok
// response* that reaches the client must carry exactly the verdict the
// direct (unbatched, chaos-free) execution produces.  The kill path doubles
// as a snapshot-codec round-trip fuzz.

#include "graph/serialize.hpp"
#include "oracle/generators.hpp"
#include "oracle/harness.hpp"
#include "service/chaos.hpp"
#include "service/core.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"

#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace lph {
namespace service {

namespace {

constexpr int kMaxClientRounds = 12;

double prob_param(const ReproCase& r, const std::string& key) {
    const auto it = r.params.find(key);
    return it != r.params.end() ? std::stod(it->second) : 0.0;
}

/// A small mixed workload over the repro graph: two decider games (one
/// repeated, so the memo path is exercised across the simulated crash), a
/// logic query, and a decide query.
std::vector<Request> build_workload(const LabeledGraph& graph) {
    std::vector<Request> requests;
    auto with_graph = [&graph](Request request) {
        request.has_graph = true;
        request.graph = graph;
        request.canonical_graph = graph_to_text(graph);
        return request;
    };
    Request game;
    game.type = RequestType::Game;
    game.machine = "allsel";
    game.layers = 0;
    game.sigma = true;
    game.ids = "global";
    requests.push_back(with_graph(game));
    Request eulerian_game = game;
    eulerian_game.machine = "eulerian";
    requests.push_back(with_graph(eulerian_game));
    Request logic;
    logic.type = RequestType::Logic;
    logic.formula = "all_selected";
    requests.push_back(with_graph(logic));
    Request decide;
    decide.type = RequestType::Decide;
    decide.problem = "eulerian";
    requests.push_back(with_graph(decide));
    requests.push_back(with_graph(game)); // memo-hit replay of request 0
    for (std::size_t i = 0; i < requests.size(); ++i) {
        requests[i].id = std::to_string(i);
    }
    return requests;
}

ReproCase generate_service_chaos_case(Rng& rng) {
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 1;
    gopt.max_nodes = 5;
    gopt.max_extra_edges = 3;
    gopt.allow_disconnected = true;
    gopt.labels = GraphGenOptions::Labels::ZeroOrOne;
    r.graph = random_graph_instance(rng, gopt);
    r.params["chaos_seed"] = std::to_string(rng.uniform(0, 1u << 20));
    r.params["drop"] = rng.chance(0.5) ? "0.25" : "0.1";
    r.params["truncate"] = rng.chance(0.5) ? "0.2" : "0";
    r.params["garble"] = rng.chance(0.5) ? "0.2" : "0";
    r.params["kill"] = rng.chance(0.5) ? "0.15" : "0";
    return r;
}

std::optional<std::string> compare_service_chaos(const ReproCase& r) {
    const std::vector<Request> requests = build_workload(r.graph);

    ServiceOptions options;
    options.manual_drain = true;
    options.memoize_results = true;

    // Golden verdicts: direct execution, no queue, no memo, no chaos.
    ServiceCore reference(options);
    std::vector<std::optional<VerdictView>> golden;
    for (const Request& request : requests) {
        golden.push_back(parse_verdict(reference.serve_unbatched(request).to_json()));
    }

    ChaosPlan plan;
    plan.seed = std::stoull(r.params.at("chaos_seed"));
    plan.drop_prob = prob_param(r, "drop");
    plan.truncate_prob = prob_param(r, "truncate");
    plan.garble_prob = prob_param(r, "garble");
    plan.kill_prob = prob_param(r, "kill");
    ChaosInjector injector(&plan);

    auto core = std::make_unique<ServiceCore>(options);
    std::set<std::size_t> unanswered;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        unanswered.insert(i);
    }

    for (int round = 0; round < kMaxClientRounds && !unanswered.empty();
         ++round) {
        const std::vector<std::size_t> attempt(unanswered.begin(),
                                               unanswered.end());
        for (const std::size_t i : attempt) {
            std::string line = core->call(requests[i]).to_json();
            switch (injector.next_action()) {
            case ChaosAction::KillWorker: {
                // Simulated crash + supervised warm restart: the response is
                // lost with the worker, the next core starts from the dead
                // worker's snapshot (round-tripped through the codec).
                const std::string bytes = encode_snapshot(core->snapshot_data());
                SnapshotData restored;
                std::string error;
                if (decode_snapshot(bytes, &restored, &error) !=
                    SnapshotReadResult::Loaded) {
                    return "snapshot round-trip rejected its own encoding: " +
                           error;
                }
                core = std::make_unique<ServiceCore>(options);
                core->restore_from(restored);
                continue;
            }
            case ChaosAction::Drop:
                continue; // no bytes reached the client; it will retry
            case ChaosAction::Truncate:
                line.erase(line.size() / 2);
                break;
            case ChaosAction::Garble:
                ChaosInjector::garble(line);
                break;
            case ChaosAction::Delay: // no wall-clock sleeps inside the fuzzer
            case ChaosAction::None:
                break;
            }
            const std::optional<VerdictView> view = parse_verdict(line);
            if (!view.has_value()) {
                continue; // mangled on the wire; the client retries
            }
            if (view->status != "ok") {
                continue; // structured errors/rejections are permitted; retry
            }
            // A valid ok response must be *correct*: right id, same verdict
            // as the direct execution.  This is the zero-incorrect-responses
            // assertion of the resilience contract.
            std::ostringstream detail;
            if (view->id != requests[i].id) {
                detail << "response to request " << requests[i].id
                       << " carried id " << view->id;
                return detail.str();
            }
            if (!golden[i].has_value() || golden[i]->status != "ok") {
                detail << "request " << requests[i].id
                       << " got ok under chaos but "
                       << (golden[i] ? golden[i]->status : "unparseable")
                       << " directly";
                return detail.str();
            }
            if (view->has_verdict != golden[i]->has_verdict ||
                (view->has_verdict && view->verdict != golden[i]->verdict)) {
                detail << "request " << requests[i].id << " ("
                       << to_string(requests[i].type) << ") verdict "
                       << (view->has_verdict ? (view->verdict ? "true" : "false")
                                             : "absent")
                       << " under chaos but "
                       << (golden[i]->has_verdict
                               ? (golden[i]->verdict ? "true" : "false")
                               : "absent")
                       << " directly";
                return detail.str();
            }
            unanswered.erase(i);
        }
    }
    // Requests still unanswered after the retry budget are a liveness cost
    // of aggressive chaos, not a correctness failure — only wrong responses
    // diverge.
    return std::nullopt;
}

} // namespace

void register_service_checks() {
    static std::once_flag once;
    std::call_once(once, [] {
        RegisteredCheck chaos_check;
        chaos_check.name = "service-chaos-vs-direct";
        chaos_check.generate = generate_service_chaos_case;
        chaos_check.compare = compare_service_chaos;
        register_check(chaos_check);
    });
}

} // namespace service
} // namespace lph
