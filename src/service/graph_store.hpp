#pragma once

#include "service/wire.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lph {
namespace service {

/// Applies one patch op to `g`, validating it against the graph's current
/// state: add_edge rejects self-loops, duplicates and out-of-range nodes;
/// remove_edge requires the edge to exist; relabel requires the node to
/// exist; remove_node requires the node to be isolated (and renumbers every
/// higher id down by one, exactly like LabeledGraph::remove_node).  Throws
/// precondition_error naming the violated rule.  Shared by the resident
/// store, the patch-vs-full-recompute oracle reference and lph_client's
/// golden-request generator so all three agree on patch semantics.
void apply_patch_op(LabeledGraph& g, const PatchOp& op);

/// What one graph_patch did to a resident graph.
struct PatchOutcome {
    std::uint64_t old_digest = 0;
    std::uint64_t new_digest = 0; ///< == old_digest when the patch round-trips
    std::uint64_t version = 0;    ///< total patches applied to this resident
    /// Snapshot of the patched graph — evaluation must run against the state
    /// this patch produced even if later patches land concurrently.
    LabeledGraph graph;
    std::string canonical; ///< graph_to_text(graph), the new digest input
    /// Nodes (new numbering, ascending) whose radius-R view may differ
    /// between the old and new graph: BFS balls around every edit in both
    /// the pre- and post-op graphs, plus every node whose identifier
    /// changed.  Every node NOT listed provably keeps its verdict, so a
    /// recompute may reuse retained results for the complement.
    std::vector<NodeId> dirty;
    /// old_of_new[v] = v's index in the pre-patch graph, -1 when v was added
    /// by this patch.  Maps retained verdicts across remove_node renumbering.
    std::vector<std::ptrdiff_t> old_of_new;
    /// Per-node verdicts retained for the requested flavor, valid for
    /// old_digest and indexed by OLD node ids (empty when none were stored
    /// or the stored ones describe a different digest).
    std::vector<std::string> retained_outputs;
    bool has_retained = false;
};

/// One resident graph plus the per-flavor verdicts retained for it.
struct ResidentGraph {
    /// Outputs of one full (or incrementally merged) clean evaluation,
    /// indexed by node id, tagged with the graph content they describe.
    struct Verdicts {
        std::uint64_t digest = 0;
        std::vector<std::string> outputs;
    };

    mutable std::mutex mutex;
    LabeledGraph graph;
    std::string canonical;
    std::uint64_t digest = 0;
    std::uint64_t version = 0;
    /// Keyed by the query flavor ("machine|layers|sigma|ids" — rendered by
    /// ServiceCore), so coloring3 verdicts never answer an eulerian query.
    std::map<std::string, Verdicts> retained;
};

/// The resident-graph store behind graph_register / graph_patch: graphs are
/// keyed by the FNV-1a digest of their canonical text, so registration is
/// idempotent and a digest always names exactly one graph content.  Patches
/// re-key the resident under its new digest; the old digest stops resolving
/// (a client holding it must re-register or follow the echoed new digest).
///
/// Lock order: a resident's mutex may be held while taking the store map
/// mutex (apply_patch re-keys), never the reverse — find() copies the
/// shared_ptr out under the map mutex and releases it before any resident
/// lock is taken.
class GraphStore {
public:
    struct RegisterResult {
        std::uint64_t digest = 0;
        std::size_t nodes = 0;
        std::size_t edges = 0;
        bool existed = false; ///< same content was already resident
    };

    /// Admits a graph (idempotent: same canonical text → same digest, one
    /// resident).  `canonical` must be graph_to_text(graph).
    RegisterResult register_graph(const LabeledGraph& graph,
                                  const std::string& canonical);

    /// The resident a digest names, nullptr when unknown.
    std::shared_ptr<ResidentGraph> find(std::uint64_t digest) const;

    /// Applies `ops` in order to the resident graph `digest` names and
    /// computes the dirty set for radius `radius` under identifier scheme
    /// `id_scheme` ("global" | "local") with identifier radius `r_id`.
    /// `flavor` selects which retained verdicts to snapshot into the outcome
    /// ("" = none).  `limits` bounds growth (node/edge counts).  Throws
    /// precondition_error on an unknown digest, an invalid op (message
    /// prefixed "op <i>: "), or a patch that would exceed the limits or
    /// empty the graph.  On throw the resident is unchanged — ops are staged
    /// on a copy.
    PatchOutcome apply_patch(std::uint64_t digest,
                             const std::vector<PatchOp>& ops, int radius,
                             const std::string& id_scheme, int r_id,
                             const std::string& flavor,
                             const WireLimits& limits);

    /// Retains per-node verdicts for `flavor` on the resident `digest`
    /// names.  A no-op when the digest no longer resolves or the resident
    /// has moved on to different content (a concurrent patch won the race) —
    /// stale verdicts must never be installed.
    void store_verdicts(std::uint64_t digest, const std::string& flavor,
                        std::vector<std::string> outputs);

    /// Number of resident graphs.
    std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<ResidentGraph>> graphs_;
};

} // namespace service
} // namespace lph
