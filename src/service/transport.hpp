#pragma once

#include <cstdint>
#include <string>

namespace lph {
namespace service {

/// Process-wide SIGPIPE opt-out.  Every tool that writes to a socket or a
/// pipe calls this once at startup: a peer that disconnects mid-response
/// must surface as an EPIPE transport error on the write path, never as a
/// process-killing signal.  (Socket writes additionally pass MSG_NOSIGNAL,
/// but stdout/stdin pipes have no per-call equivalent.)
void ignore_sigpipe();

/// What ended a transport operation.  `PeerClosed` folds EPIPE/ECONNRESET
/// (and EOF on reads): the peer going away is an expected, recoverable event
/// for a serving daemon, distinct from genuine I/O failures.
enum class TransportStatus {
    Ok,
    PeerClosed,
    TimedOut,
    Error,
};

const char* to_string(TransportStatus status);

/// Writes all of `data` to a socket fd with MSG_NOSIGNAL.  On failure,
/// `*error` (optional) gets a structured "send: <errno text>" detail.
TransportStatus send_all(int fd, const std::string& data,
                         std::string* error = nullptr);

/// Reads one '\n'-terminated line from fd into `line` via `buffer` (a final
/// unterminated line is still delivered, then the next call reports
/// PeerClosed).  `timeout_ms` > 0 bounds the wait for *each* read syscall
/// via poll(); 0 blocks indefinitely.
TransportStatus recv_line_fd(int fd, std::string& buffer, std::string& line,
                             int timeout_ms = 0, std::string* error = nullptr);

} // namespace service
} // namespace lph
