#include "pictures/picture.hpp"

#include "core/check.hpp"

#include <deque>
#include <sstream>

namespace lph {

Picture::Picture(std::size_t rows, std::size_t cols, std::size_t bits)
    : rows_(rows), cols_(cols), bits_(bits),
      cells_(rows * cols, BitString(bits, '0')) {
    check(rows >= 1 && cols >= 1, "Picture: dimensions must be positive");
}

const BitString& Picture::at(std::size_t row, std::size_t col) const {
    check(row < rows_ && col < cols_, "Picture::at: out of range");
    return cells_[row * cols_ + col];
}

void Picture::set(std::size_t row, std::size_t col, BitString value) {
    check(row < rows_ && col < cols_, "Picture::set: out of range");
    check(value.size() == bits_ && is_bit_string(value),
          "Picture::set: value must be a t-bit string");
    cells_[row * cols_ + col] = std::move(value);
}

bool Picture::operator==(const Picture& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && bits_ == other.bits_ &&
           cells_ == other.cells_;
}

std::string Picture::to_string() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            if (j > 0) {
                out << ' ';
            }
            out << at(i, j);
        }
        out << '\n';
    }
    return out.str();
}

Structure picture_structure(const Picture& p) {
    Structure s(p.rows() * p.cols(), p.bits(), 2);
    const auto element = [&p](std::size_t i, std::size_t j) {
        return i * p.cols() + j;
    };
    for (std::size_t i = 0; i < p.rows(); ++i) {
        for (std::size_t j = 0; j < p.cols(); ++j) {
            const BitString& value = p.at(i, j);
            for (std::size_t b = 0; b < p.bits(); ++b) {
                if (value[b] == '1') {
                    s.set_unary(b, element(i, j));
                }
            }
            if (i + 1 < p.rows()) {
                s.add_binary(0, element(i, j), element(i + 1, j)); // vertical
            }
            if (j + 1 < p.cols()) {
                s.add_binary(1, element(i, j), element(i, j + 1)); // horizontal
            }
        }
    }
    return s;
}

Picture blank_picture(std::size_t rows, std::size_t cols, std::size_t bits) {
    return Picture(rows, cols, bits);
}

namespace {

BitString trit(std::size_t value) {
    return encode_unsigned_width(value % 3, 2);
}

} // namespace

LabeledGraph picture_to_graph(const Picture& p) {
    LabeledGraph g;
    const auto node = [&p](std::size_t i, std::size_t j) { return i * p.cols() + j; };
    for (std::size_t i = 0; i < p.rows(); ++i) {
        for (std::size_t j = 0; j < p.cols(); ++j) {
            g.add_node(trit(i) + trit(j) + p.at(i, j));
        }
    }
    for (std::size_t i = 0; i < p.rows(); ++i) {
        for (std::size_t j = 0; j < p.cols(); ++j) {
            if (j + 1 < p.cols()) {
                g.add_edge(node(i, j), node(i, j + 1));
            }
            if (i + 1 < p.rows()) {
                g.add_edge(node(i, j), node(i + 1, j));
            }
        }
    }
    return g;
}

std::optional<Picture> graph_to_picture(const LabeledGraph& g, std::size_t bits) {
    const std::size_t label_len = 4 + bits;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u).size() != label_len) {
            return std::nullopt;
        }
    }
    auto row_code = [&](NodeId u) { return decode_unsigned(g.label(u).substr(0, 2)); };
    auto col_code = [&](NodeId u) { return decode_unsigned(g.label(u).substr(2, 2)); };
    auto content = [&](NodeId u) { return g.label(u).substr(4); };

    // Locate the top-left corner: codes (0,0), degree <= 2, and no neighbor
    // carrying a predecessor coordinate code.
    NodeId corner = g.num_nodes();
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (row_code(u) != 0 || col_code(u) != 0 || g.degree(u) > 2) {
            continue;
        }
        bool ok = true;
        for (NodeId v : g.neighbors(u)) {
            const bool below = row_code(v) == 1 && col_code(v) == 0;
            const bool right = row_code(v) == 0 && col_code(v) == 1;
            if (!below && !right) {
                ok = false;
                break;
            }
        }
        if (ok) {
            corner = u;
            break;
        }
    }
    if (corner == g.num_nodes()) {
        return std::nullopt;
    }

    // BFS assigning coordinates from mod-3 code differences.
    std::vector<std::pair<long, long>> coord(g.num_nodes(), {-1, -1});
    coord[corner] = {0, 0};
    std::deque<NodeId> queue{corner};
    long max_row = 0;
    long max_col = 0;
    while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : g.neighbors(u)) {
            const auto ru = row_code(u);
            const auto cu = col_code(u);
            const auto rv = row_code(v);
            const auto cv = col_code(v);
            long dr = 0;
            long dc = 0;
            if (cu == cv && rv == (ru + 1) % 3) {
                dr = 1;
            } else if (cu == cv && ru == (rv + 1) % 3) {
                dr = -1;
            } else if (ru == rv && cv == (cu + 1) % 3) {
                dc = 1;
            } else if (ru == rv && cu == (cv + 1) % 3) {
                dc = -1;
            } else {
                return std::nullopt; // neighbor codes inconsistent with a grid
            }
            const std::pair<long, long> next{coord[u].first + dr,
                                             coord[u].second + dc};
            if (next.first < 0 || next.second < 0) {
                return std::nullopt;
            }
            if (coord[v].first < 0) {
                coord[v] = next;
                max_row = std::max(max_row, next.first);
                max_col = std::max(max_col, next.second);
                queue.push_back(v);
            } else if (coord[v] != next) {
                return std::nullopt;
            }
        }
    }

    const std::size_t rows = static_cast<std::size_t>(max_row) + 1;
    const std::size_t cols = static_cast<std::size_t>(max_col) + 1;
    if (rows * cols != g.num_nodes()) {
        return std::nullopt;
    }
    Picture p(rows, cols, bits);
    std::vector<bool> seen(g.num_nodes(), false);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const auto [r, c] = coord[u];
        if (r < 0) {
            return std::nullopt; // disconnected piece
        }
        const std::size_t cell = static_cast<std::size_t>(r) * cols +
                                 static_cast<std::size_t>(c);
        if (seen[cell]) {
            return std::nullopt;
        }
        seen[cell] = true;
        p.set(static_cast<std::size_t>(r), static_cast<std::size_t>(c), content(u));
    }
    // Verify the full grid edge set is present.
    if (g.num_edges() != rows * (cols - 1) + cols * (rows - 1)) {
        return std::nullopt;
    }
    return p;
}

} // namespace lph
