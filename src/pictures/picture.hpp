#pragma once

#include "core/bitstring.hpp"
#include "graph/graph.hpp"
#include "structure/structure.hpp"

#include <optional>

namespace lph {

/// A t-bit picture: an (m x n)-matrix of bit strings of length t
/// (Section 9.2.1).  Rows and columns are 0-based here; the paper's pixel
/// (1,1) is our (0,0) top-left corner.
class Picture {
public:
    Picture(std::size_t rows, std::size_t cols, std::size_t bits);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t bits() const { return bits_; }

    const BitString& at(std::size_t row, std::size_t col) const;
    void set(std::size_t row, std::size_t col, BitString value);

    bool operator==(const Picture& other) const;

    std::string to_string() const;

private:
    std::size_t rows_;
    std::size_t cols_;
    std::size_t bits_;
    std::vector<BitString> cells_;
};

/// The structural representation $P of a picture (Figure 5): one element per
/// pixel, t unary relations O_1..O_t for the bit values, ->_1 the vertical
/// successor (downwards) and ->_2 the horizontal successor (rightwards).
Structure picture_structure(const Picture& p);

/// The blank (all-zero) t-bit picture.
Picture blank_picture(std::size_t rows, std::size_t cols, std::size_t bits = 1);

/// Encodes a picture as a labeled grid graph (Section 9.2.2).  Each pixel
/// becomes a node labeled with its row index mod 3 (2 bits), column index
/// mod 3 (2 bits), and its t content bits; the mod-3 coordinates let nodes
/// recover edge directions locally, which is what makes formula translation
/// between pictures and graphs possible.
LabeledGraph picture_to_graph(const Picture& p);

/// Decodes a graph produced by picture_to_graph (or hand-built in the same
/// format); nullopt when the graph is not a valid picture encoding.
std::optional<Picture> graph_to_picture(const LabeledGraph& g, std::size_t bits);

} // namespace lph
