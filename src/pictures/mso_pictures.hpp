#pragma once

#include "logic/formula.hpp"
#include "pictures/picture.hpp"

namespace lph {

/// Monadic second-order formulas on picture structures (Section 9.2.1).
/// Signature (t, 2): O_b marks bit b, ->_1 is the vertical successor
/// (downwards), ->_2 the horizontal successor (rightwards).
namespace picture_formulas {

/// x lies in the top row / bottom row / first column / last column.
Formula top_row(const std::string& x);
Formula bottom_row(const std::string& x);
Formula first_column(const std::string& x);
Formula last_column(const std::string& x);

/// x is the top-left / bottom-right corner.
Formula top_left(const std::string& x);
Formula bottom_right(const std::string& x);

/// "Some pixel has bit b set" (1-based bit index, as in O_b).
Formula some_bit(std::size_t b);

/// "Every pixel has bit b set".
Formula all_bits(std::size_t b);

/// SQUARE as an existential monadic sentence: a diagonal set D starts at the
/// top-left corner, moves one step down-right at a time, and may touch the
/// bottom row or last column only at the bottom-right corner.  Defines
/// exactly the square pictures — the logic-side counterpart of
/// square_tiling_system() (Theorem 29's correspondence, exercised in tests).
Formula square();

/// "The first column is all zeros (bit 1 clear)" — a plain LFO-style check.
Formula first_column_blank();

} // namespace picture_formulas

/// Evaluates a sentence on a picture's structural representation
/// (brute-force monadic quantification; keep pictures small).
bool picture_satisfies(const Picture& p, const Formula& sentence,
                       std::size_t max_universe = 24);

} // namespace lph
