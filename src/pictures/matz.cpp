#include "pictures/matz.hpp"

#include "core/check.hpp"

#include <limits>

namespace lph {

std::uint64_t iterated_exp(int level, std::uint64_t m) {
    check(level >= 1, "iterated_exp: level must be positive");
    std::uint64_t value = m;
    for (int i = 0; i < level; ++i) {
        if (value >= 64) {
            return std::numeric_limits<std::uint64_t>::max();
        }
        value = std::uint64_t{1} << value;
    }
    return value;
}

bool in_matz_language(int level, std::size_t rows, std::size_t cols) {
    if (rows == 0 || cols == 0) {
        return false;
    }
    return iterated_exp(level, rows) == cols;
}

std::optional<Picture> matz_witness(int level, std::size_t rows,
                                    std::uint64_t max_cells) {
    const std::uint64_t cols = iterated_exp(level, rows);
    if (cols == std::numeric_limits<std::uint64_t>::max() ||
        cols * rows > max_cells) {
        return std::nullopt;
    }
    return blank_picture(rows, static_cast<std::size_t>(cols), 1);
}

} // namespace lph
