#include "pictures/mso_pictures.hpp"

#include "logic/eval.hpp"

namespace lph {

namespace picture_formulas {

using namespace fl;

Formula top_row(const std::string& x) {
    return negate(exists_conn("$tr_" + x, x, binary(1, "$tr_" + x, x)));
}

Formula bottom_row(const std::string& x) {
    return negate(exists_conn("$br_" + x, x, binary(1, x, "$br_" + x)));
}

Formula first_column(const std::string& x) {
    return negate(exists_conn("$fc_" + x, x, binary(2, "$fc_" + x, x)));
}

Formula last_column(const std::string& x) {
    return negate(exists_conn("$lc_" + x, x, binary(2, x, "$lc_" + x)));
}

Formula top_left(const std::string& x) {
    return conj(top_row(x), first_column(x));
}

Formula bottom_right(const std::string& x) {
    return conj(bottom_row(x), last_column(x));
}

Formula some_bit(std::size_t b) {
    return exists("x", unary(b, "x"));
}

Formula all_bits(std::size_t b) {
    return forall("x", unary(b, "x"));
}

Formula square() {
    // D starts at the top-left corner; every D-pixel is the bottom-right
    // corner or has a D-pixel one step down-right; a D-pixel on the bottom
    // row or the last column must be the bottom-right corner.
    const Formula starts = forall("s", implies(top_left("s"), apply("D", {"s"})));
    const Formula steps = forall(
        "x",
        implies(apply("D", {"x"}),
                disj(bottom_right("x"),
                     exists_conn(
                         "z", "x",
                         conj(binary(1, "x", "z"),
                              exists_conn("y", "z",
                                          conj(binary(2, "z", "y"),
                                               apply("D", {"y"}))))))));
    const Formula edges = forall(
        "w", implies(conj(apply("D", {"w"}),
                          disj(bottom_row("w"), last_column("w"))),
                     bottom_right("w")));
    return exists_so("D", 1, conj(starts, conj(steps, edges)));
}

Formula first_column_blank() {
    return forall("x", implies(first_column("x"), negate(unary(1, "x"))));
}

} // namespace picture_formulas

bool picture_satisfies(const Picture& p, const Formula& sentence,
                       std::size_t max_universe) {
    SOPolicy policy;
    policy.max_universe_size = max_universe;
    return satisfies(picture_structure(p), sentence, policy);
}

} // namespace lph
