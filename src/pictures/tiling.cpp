#include "pictures/tiling.hpp"

#include "core/check.hpp"

namespace lph {

TilingSystem::TilingSystem(std::size_t gamma_size, std::size_t bits)
    : gamma_size_(gamma_size), bits_(bits),
      projection_(gamma_size, BitString(bits, '0')) {
    check(gamma_size >= 1, "TilingSystem: alphabet must be nonempty");
}

void TilingSystem::set_projection(int symbol, BitString image) {
    check(symbol >= 0 && static_cast<std::size_t>(symbol) < gamma_size_,
          "TilingSystem::set_projection: symbol out of range");
    check(image.size() == bits_ && is_bit_string(image),
          "TilingSystem::set_projection: image must be a t-bit string");
    projection_[static_cast<std::size_t>(symbol)] = std::move(image);
}

void TilingSystem::allow_tile(Tile tile) {
    for (int s : tile) {
        check(s == kBorder || (s >= 0 && static_cast<std::size_t>(s) < gamma_size_),
              "TilingSystem::allow_tile: symbol out of range");
    }
    tiles_.insert(tile);
}

void TilingSystem::allow_tiles_where(
    const std::function<bool(int, int, int, int)>& pred) {
    std::vector<int> symbols{kBorder};
    for (std::size_t s = 0; s < gamma_size_; ++s) {
        symbols.push_back(static_cast<int>(s));
    }
    for (int a : symbols) {
        for (int b : symbols) {
            for (int c : symbols) {
                for (int d : symbols) {
                    if (pred(a, b, c, d)) {
                        tiles_.insert({a, b, c, d});
                    }
                }
            }
        }
    }
}

namespace {

/// Backtracking search over Gamma-assignments in column-major order.
class PreimageSearch {
public:
    PreimageSearch(const TilingSystem& system, const Picture& p,
                   const std::vector<BitString>& projection,
                   std::size_t gamma_size)
        : system_(system), p_(p), gamma_size_(gamma_size) {
        // Candidate symbols per picture value.
        candidates_.resize(p.rows() * p.cols());
        for (std::size_t r = 0; r < p.rows(); ++r) {
            for (std::size_t c = 0; c < p.cols(); ++c) {
                auto& list = candidates_[r * p.cols() + c];
                for (std::size_t s = 0; s < gamma_size; ++s) {
                    if (projection[s] == p.at(r, c)) {
                        list.push_back(static_cast<int>(s));
                    }
                }
            }
        }
        assignment_.assign(p.rows() * p.cols(), kUnassigned);
    }

    std::optional<std::vector<int>> run() {
        if (extend(0)) {
            return assignment_;
        }
        return std::nullopt;
    }

private:
    static constexpr int kUnassigned = -2;

    /// Cell index in column-major visiting order.
    std::pair<std::size_t, std::size_t> order_to_cell(std::size_t k) const {
        const std::size_t col = k / p_.rows();
        const std::size_t row = k % p_.rows();
        return {row, col};
    }

    /// Symbol at bordered coordinates, kUnassigned if interior and not yet
    /// set.
    int bordered_symbol(long bi, long bj) const {
        if (bi < 0 || bj < 0 || bi > static_cast<long>(p_.rows()) + 1 ||
            bj > static_cast<long>(p_.cols()) + 1) {
            return kUnassigned;
        }
        if (bi == 0 || bj == 0 || bi == static_cast<long>(p_.rows()) + 1 ||
            bj == static_cast<long>(p_.cols()) + 1) {
            return TilingSystem::kBorder;
        }
        return assignment_[static_cast<std::size_t>(bi - 1) * p_.cols() +
                           static_cast<std::size_t>(bj - 1)];
    }

    /// Checks every window containing the just-assigned cell whose four
    /// entries are all determined.
    bool windows_ok(std::size_t row, std::size_t col) const {
        const long br = static_cast<long>(row) + 1;
        const long bc = static_cast<long>(col) + 1;
        for (long i = br - 1; i <= br; ++i) {
            for (long j = bc - 1; j <= bc; ++j) {
                if (i < 0 || j < 0 || i > static_cast<long>(p_.rows()) ||
                    j > static_cast<long>(p_.cols())) {
                    continue;
                }
                const int a = bordered_symbol(i, j);
                const int b = bordered_symbol(i, j + 1);
                const int c = bordered_symbol(i + 1, j);
                const int d = bordered_symbol(i + 1, j + 1);
                if (a == kUnassigned || b == kUnassigned || c == kUnassigned ||
                    d == kUnassigned) {
                    continue;
                }
                if (!system_.tile_allowed({a, b, c, d})) {
                    return false;
                }
            }
        }
        return true;
    }

    bool extend(std::size_t k) {
        if (k == assignment_.size()) {
            return true;
        }
        const auto [row, col] = order_to_cell(k);
        for (int s : candidates_[row * p_.cols() + col]) {
            assignment_[row * p_.cols() + col] = s;
            if (windows_ok(row, col) && extend(k + 1)) {
                return true;
            }
        }
        assignment_[row * p_.cols() + col] = kUnassigned;
        return false;
    }

    const TilingSystem& system_;
    const Picture& p_;
    [[maybe_unused]] std::size_t gamma_size_;
    std::vector<std::vector<int>> candidates_;
    std::vector<int> assignment_;
};

} // namespace

std::optional<std::vector<int>> TilingSystem::find_preimage(const Picture& p) const {
    check(p.bits() == bits_, "TilingSystem: picture bit width mismatch");
    PreimageSearch search(*this, p, projection_, gamma_size_);
    return search.run();
}

bool TilingSystem::verify_preimage(const Picture& p, const std::vector<int>& q) const {
    if (q.size() != p.rows() * p.cols()) {
        return false;
    }
    for (std::size_t r = 0; r < p.rows(); ++r) {
        for (std::size_t c = 0; c < p.cols(); ++c) {
            const int s = q[r * p.cols() + c];
            if (s < 0 || static_cast<std::size_t>(s) >= gamma_size_ ||
                projection_[static_cast<std::size_t>(s)] != p.at(r, c)) {
                return false;
            }
        }
    }
    auto symbol = [&](long bi, long bj) -> int {
        if (bi == 0 || bj == 0 || bi == static_cast<long>(p.rows()) + 1 ||
            bj == static_cast<long>(p.cols()) + 1) {
            return kBorder;
        }
        return q[static_cast<std::size_t>(bi - 1) * p.cols() +
                 static_cast<std::size_t>(bj - 1)];
    };
    for (long i = 0; i <= static_cast<long>(p.rows()); ++i) {
        for (long j = 0; j <= static_cast<long>(p.cols()); ++j) {
            if (!tile_allowed({symbol(i, j), symbol(i, j + 1), symbol(i + 1, j),
                               symbol(i + 1, j + 1)})) {
                return false;
            }
        }
    }
    return true;
}

TilingSystem all_blank_tiling_system() {
    TilingSystem system(1, 1);
    system.set_projection(0, "0");
    system.allow_tiles_where([](int, int, int, int) { return true; });
    return system;
}

TilingSystem square_tiling_system() {
    // Gamma: 0 = off-diagonal (O), 1 = diagonal (D).
    constexpr int O = 0;
    constexpr int D = 1;
    constexpr int B = TilingSystem::kBorder;
    TilingSystem system(2, 1);
    system.set_projection(O, "0");
    system.set_projection(D, "0");
    system.allow_tiles_where([](int a, int b, int c, int d) {
        // Top-left corner is D.
        if (a == B && b == B && c == B && d != B && d != D) {
            return false;
        }
        // A diagonal cell continues diagonally, or sits in the bottom-right
        // corner (both right and bottom are border).
        if (a == D && !(d == D || (b == B && c == B))) {
            return false;
        }
        // A D can only be created by its upper-left D or be the very corner.
        if (d == D && a != D && !(a == B && b == B && c == B)) {
            return false;
        }
        return true;
    });
    return system;
}

TilingSystem binary_counter_tiling_system() {
    // Gamma symbol = 2 * bit + carry, where `carry` is the carry entering the
    // cell from below when this column is incremented to the next.
    constexpr int B = TilingSystem::kBorder;
    const auto bit = [](int s) { return s / 2; };
    const auto carry = [](int s) { return s % 2; };
    TilingSystem system(4, 1);
    for (int s = 0; s < 4; ++s) {
        system.set_projection(s, "0");
    }
    system.allow_tiles_where([&](int a, int b, int c, int d) {
        // Horizontal increment: right bit = left bit XOR left carry.
        if (a != B && b != B && bit(b) != (bit(a) ^ carry(a))) {
            return false;
        }
        if (c != B && d != B && bit(d) != (bit(c) ^ carry(c))) {
            return false;
        }
        // Vertical carry chain: carry(upper) = bit(lower) AND carry(lower).
        if (a != B && c != B && carry(a) != (bit(c) & carry(c))) {
            return false;
        }
        if (b != B && d != B && carry(b) != (bit(d) & carry(d))) {
            return false;
        }
        // Bottom row: the increment injects a carry of 1.
        if (c == B && d == B) {
            if (a != B && carry(a) != 1) {
                return false;
            }
            if (b != B && carry(b) != 1) {
                return false;
            }
        }
        // Top row: no overflow unless this is the last column.
        if (a == B && b == B && c != B && d != B && (bit(c) & carry(c)) != 0) {
            return false;
        }
        // Left border: first column is all zeros.
        if (a == B && c == B) {
            if (b != B && bit(b) != 0) {
                return false;
            }
            if (d != B && bit(d) != 0) {
                return false;
            }
        }
        // Right border: last column is all ones.
        if (b == B && d == B) {
            if (a != B && bit(a) != 1) {
                return false;
            }
            if (c != B && bit(c) != 1) {
                return false;
            }
        }
        return true;
    });
    return system;
}

} // namespace lph
