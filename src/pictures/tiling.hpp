#pragma once

#include "pictures/picture.hpp"

#include <array>
#include <functional>
#include <optional>
#include <set>

namespace lph {

/// A tiling system (Giammarresi–Restivo–Seibert–Thomas, Theorem 29): a local
/// language over a finite alphabet Gamma given by the allowed 2x2 tiles of
/// the border-framed picture, plus a projection pi : Gamma -> {0,1}^t.
/// A picture P is recognized iff some Gamma-picture Q with pi(Q) = P has all
/// its 2x2 windows (over the #-bordered frame) among the allowed tiles.
///
/// Tiling systems characterize existential monadic second-order logic on
/// pictures, which is the engine behind the infiniteness proof (Section 9.2).
class TilingSystem {
public:
    /// The border symbol # in tiles.
    static constexpr int kBorder = -1;

    /// A 2x2 tile (top-left, top-right, bottom-left, bottom-right); entries
    /// are Gamma indices or kBorder.
    using Tile = std::array<int, 4>;

    TilingSystem(std::size_t gamma_size, std::size_t bits);

    std::size_t gamma_size() const { return gamma_size_; }
    std::size_t bits() const { return bits_; }

    /// Sets pi(symbol) = image (a t-bit string).
    void set_projection(int symbol, BitString image);

    void allow_tile(Tile tile);

    /// Allows every tile over (Gamma union {#})^4 satisfying the predicate.
    void allow_tiles_where(const std::function<bool(int, int, int, int)>& pred);

    std::size_t num_tiles() const { return tiles_.size(); }
    bool tile_allowed(const Tile& tile) const { return tiles_.count(tile) > 0; }

    /// Searches for a preimage of p (column-major backtracking with eager
    /// window checks); nullopt when p is not recognized.  The returned
    /// assignment is row-major over p's cells.
    std::optional<std::vector<int>> find_preimage(const Picture& p) const;

    bool recognizes(const Picture& p) const { return find_preimage(p).has_value(); }

    /// Verifies a proposed preimage: projection and all windows.
    bool verify_preimage(const Picture& p, const std::vector<int>& q) const;

private:
    std::size_t gamma_size_;
    std::size_t bits_;
    std::vector<BitString> projection_;
    std::set<Tile> tiles_;
};

/// Recognizes exactly the blank square pictures (rows == cols) — the classic
/// diagonal tiling system.
TilingSystem square_tiling_system();

/// Recognizes exactly the blank pictures of size m x 2^m — the binary
/// counter construction underlying the Matz–Schweikardt–Thomas separating
/// languages (columns hold the values 0 .. 2^m - 1 in binary, least
/// significant bit at the bottom).
TilingSystem binary_counter_tiling_system();

/// Recognizes all blank pictures (sanity baseline).
TilingSystem all_blank_tiling_system();

} // namespace lph
