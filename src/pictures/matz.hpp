#pragma once

#include "pictures/picture.hpp"

#include <cstdint>
#include <optional>

namespace lph {

/// The iterated-exponential scale of the Matz–Schweikardt–Thomas separating
/// picture languages (Theorem 27).  Level 1 is 2^m, level k+1 is 2^(level k).
/// Saturates at uint64 max.
std::uint64_t iterated_exp(int level, std::uint64_t m);

/// Membership in the level-l separating language: blank pictures whose width
/// equals iterated_exp(level, height).  The paper's Theorem 27 places (a
/// variant of) this language on level l of the monadic second-order
/// hierarchy on pictures and outside level l-1; level 1 is exactly the
/// language recognized by binary_counter_tiling_system().
bool in_matz_language(int level, std::size_t rows, std::size_t cols);

/// The unique member of the level-l language with the given height, when the
/// width fits in memory bounds.
std::optional<Picture> matz_witness(int level, std::size_t rows,
                                    std::uint64_t max_cells = 1u << 20);

} // namespace lph
