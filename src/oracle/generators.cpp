#include "oracle/generators.hpp"

#include "core/check.hpp"

#include <utility>
#include <vector>

namespace lph {

namespace {

BitString random_label(Rng& rng, const GraphGenOptions& opt) {
    switch (opt.labels) {
    case GraphGenOptions::Labels::AllOnes:
        return "1";
    case GraphGenOptions::Labels::ZeroOrOne:
        return rng.chance(0.5) ? "1" : "0";
    case GraphGenOptions::Labels::RandomBits: {
        BitString label;
        for (std::size_t i = 0; i < opt.label_length; ++i) {
            label += rng.chance(0.5) ? '1' : '0';
        }
        return label;
    }
    }
    return "1";
}

void relabel(LabeledGraph& g, Rng& rng, const GraphGenOptions& opt) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, random_label(rng, opt));
    }
}

/// One connected piece of `n` nodes from the family mix.
LabeledGraph connected_piece(Rng& rng, std::size_t n, std::size_t max_extra) {
    switch (rng.index(6)) {
    case 0:
        return random_tree(n, rng);
    case 1:
        return path_graph(n);
    case 2:
        return n >= 3 ? cycle_graph(n) : path_graph(n);
    case 3:
        return complete_graph(n);
    case 4:
        return n >= 2 ? star_graph(n) : path_graph(n);
    default:
        return random_connected_graph(n, rng.uniform(0, max_extra), rng);
    }
}

/// Disjoint union, appending `piece` onto `g` with shifted node ids.
void append_component(LabeledGraph& g, const LabeledGraph& piece) {
    const NodeId base = g.num_nodes();
    for (NodeId u = 0; u < piece.num_nodes(); ++u) {
        g.add_node(piece.label(u));
    }
    for (NodeId u = 0; u < piece.num_nodes(); ++u) {
        for (NodeId v : piece.neighbors(u)) {
            if (u < v) {
                g.add_edge(base + u, base + v);
            }
        }
    }
}

} // namespace

LabeledGraph random_graph_instance(Rng& rng, const GraphGenOptions& opt) {
    check(opt.min_nodes >= 1 && opt.min_nodes <= opt.max_nodes,
          "random_graph_instance: bad node range");
    const std::size_t n = opt.min_nodes + rng.index(opt.max_nodes - opt.min_nodes + 1);

    LabeledGraph g;
    if (!opt.allow_disconnected || rng.chance(0.3)) {
        g = connected_piece(rng, n, opt.max_extra_edges);
    } else {
        // A union of small components, padded with isolated vertices — the
        // connectivity edge cases the Eulerian fast path used to reject.
        std::size_t remaining = n;
        while (remaining > 0) {
            if (rng.chance(0.3)) {
                g.add_node("1"); // isolated vertex
                --remaining;
                continue;
            }
            const std::size_t piece = 1 + rng.index(remaining);
            append_component(
                g, piece == 1 ? single_node_graph("1")
                              : connected_piece(rng, piece, opt.max_extra_edges));
            remaining -= piece;
        }
    }
    relabel(g, rng, opt);
    return g;
}

IdentifierAssignment random_identifier_scheme(Rng& rng, const LabeledGraph& g,
                                              int r_id, std::string* scheme) {
    // Locally unique small ids only make sense on connected graphs (the
    // greedy construction BFSes); fall back to global ids otherwise.
    const bool local = g.is_connected() && rng.chance(0.5);
    const std::string name = local ? "local" : "global";
    if (scheme != nullptr) {
        *scheme = name;
    }
    return identifier_scheme_by_name(name, g, r_id);
}

IdentifierAssignment identifier_scheme_by_name(const std::string& scheme,
                                               const LabeledGraph& g, int r_id) {
    if (scheme == "local") {
        return make_small_local_ids(g, r_id);
    }
    check(scheme == "global",
          "identifier_scheme_by_name: unknown scheme " + scheme);
    return make_global_ids(g);
}

namespace {

struct FormulaScope {
    std::vector<std::string> fo_vars;
    std::vector<std::string> so_vars; // all arity 1 (monadic)
    int quantifiers_left = 0;
    int so_left = 0;
};

std::string fresh_fo(const FormulaScope& scope) {
    return "x" + std::to_string(scope.fo_vars.size());
}

std::string fresh_so(const FormulaScope& scope) {
    return "X" + std::to_string(scope.so_vars.size());
}

const std::string& pick_var(Rng& rng, const std::vector<std::string>& vars) {
    return vars[rng.index(vars.size())];
}

Formula random_atom(Rng& rng, const FormulaScope& scope) {
    if (scope.fo_vars.empty()) {
        return rng.chance(0.5) ? fl::top() : fl::bottom();
    }
    const std::size_t kinds = scope.so_vars.empty() ? 4 : 5;
    switch (rng.index(kinds)) {
    case 0:
        return fl::unary(1, pick_var(rng, scope.fo_vars));
    case 1:
        return fl::binary(1, pick_var(rng, scope.fo_vars),
                          pick_var(rng, scope.fo_vars));
    case 2:
        return fl::binary(2, pick_var(rng, scope.fo_vars),
                          pick_var(rng, scope.fo_vars));
    case 3:
        return fl::equals(pick_var(rng, scope.fo_vars),
                          pick_var(rng, scope.fo_vars));
    default:
        return fl::apply(pick_var(rng, scope.so_vars),
                         {pick_var(rng, scope.fo_vars)});
    }
}

Formula random_body(Rng& rng, FormulaScope scope, int depth) {
    // Spend remaining quantifiers with decreasing probability so formulas
    // mix quantifier prefixes with connective structure.
    if (scope.quantifiers_left > 0 && rng.chance(0.45)) {
        --scope.quantifiers_left;
        const bool so_allowed = scope.so_left > 0;
        const bool conn_allowed = !scope.fo_vars.empty();
        const std::size_t kinds = 2 + (conn_allowed ? 2 : 0) + (so_allowed ? 2 : 0);
        std::size_t kind = rng.index(kinds);
        if (kind < 2) {
            const std::string x = fresh_fo(scope);
            FormulaScope inner = scope;
            inner.fo_vars.push_back(x);
            Formula body = random_body(rng, std::move(inner), depth);
            return kind == 0 ? fl::exists(x, std::move(body))
                             : fl::forall(x, std::move(body));
        }
        kind -= 2;
        if (conn_allowed && kind < 2) {
            const std::string x = fresh_fo(scope);
            const std::string anchor = pick_var(rng, scope.fo_vars);
            FormulaScope inner = scope;
            inner.fo_vars.push_back(x);
            Formula body = random_body(rng, std::move(inner), depth);
            return kind == 0 ? fl::exists_conn(x, anchor, std::move(body))
                             : fl::forall_conn(x, anchor, std::move(body));
        }
        if (conn_allowed) {
            kind -= 2;
        }
        --scope.so_left;
        const std::string rel = fresh_so(scope);
        FormulaScope inner = scope;
        inner.so_vars.push_back(rel);
        Formula body = random_body(rng, std::move(inner), depth);
        return kind == 0 ? fl::exists_so(rel, 1, std::move(body))
                         : fl::forall_so(rel, 1, std::move(body));
    }
    if (depth <= 0 || rng.chance(0.3)) {
        return random_atom(rng, scope);
    }
    switch (rng.index(5)) {
    case 0:
        return fl::negate(random_body(rng, scope, depth - 1));
    case 1:
        return fl::disj(random_body(rng, scope, depth - 1),
                        random_body(rng, scope, depth - 1));
    case 2:
        return fl::conj(random_body(rng, scope, depth - 1),
                        random_body(rng, scope, depth - 1));
    case 3:
        return fl::implies(random_body(rng, scope, depth - 1),
                           random_body(rng, scope, depth - 1));
    default:
        return fl::iff(random_body(rng, scope, depth - 1),
                       random_body(rng, scope, depth - 1));
    }
}

} // namespace

Formula random_sentence(Rng& rng, const FormulaGenOptions& opt) {
    FormulaScope scope;
    scope.quantifiers_left = opt.max_quantifiers;
    // At most one SO quantifier per sentence keeps the 2^|universe| subset
    // folds affordable for the no-early-exit reference checker.
    scope.so_left = opt.allow_so ? 1 : 0;
    return random_body(rng, std::move(scope), opt.max_depth);
}

std::uint64_t instance_seed(std::uint64_t corpus_seed, std::uint64_t index) {
    // splitmix64 finalizer over the pair.
    std::uint64_t z = corpus_seed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace lph
