#pragma once

#include "core/rng.hpp"
#include "graph/generators.hpp"
#include "graph/identifiers.hpp"
#include "logic/formula.hpp"

#include <cstdint>
#include <string>

namespace lph {

/// Seeded random instance generation for the differential harness.
///
/// Every generator draws exclusively from the Rng it is handed, so a corpus
/// replays byte-identically from `--seed`: same seed, same graphs, same
/// identifier schemes, same formulas, in the same order.

/// Knobs for one random graph draw.  Sizes are kept tiny on purpose — every
/// oracle the instance is fed to is exponential.
struct GraphGenOptions {
    std::size_t min_nodes = 2;
    std::size_t max_nodes = 5;
    /// Extra non-tree edges on top of the random spanning tree (per
    /// connected component), drawn in [0, max_extra_edges].
    std::size_t max_extra_edges = 3;
    /// When true, the draw may produce a union of several connected
    /// components plus isolated vertices — the shapes the graph-algorithm
    /// fast paths historically got wrong.  Paper graphs are connected, so
    /// the game/logic checks leave this off.
    bool allow_disconnected = false;
    enum class Labels {
        AllOnes,   ///< every label "1" (paper's selected-node convention)
        ZeroOrOne, ///< each label independently "0" or "1"
        RandomBits ///< independent random labels of length label_length
    };
    Labels labels = Labels::AllOnes;
    std::size_t label_length = 2;
};

/// One random graph from a family mix (tree / sparse connected / path /
/// cycle / complete / star, optionally a disconnected union with isolated
/// vertices), labeled per `opt.labels`.
LabeledGraph random_graph_instance(Rng& rng, const GraphGenOptions& opt);

/// One of the library's identifier schemes, chosen by the rng:
/// "global" (make_global_ids) or "local" (make_small_local_ids at r_id).
/// The chosen scheme's name is written to *scheme so the harness can record
/// it in repro files and rebuild the same assignment from the name alone.
IdentifierAssignment random_identifier_scheme(Rng& rng, const LabeledGraph& g,
                                              int r_id, std::string* scheme);

/// Rebuilds the identifier assignment a repro file names.
IdentifierAssignment identifier_scheme_by_name(const std::string& scheme,
                                               const LabeledGraph& g, int r_id);

/// Knobs for one random sentence over the graph-structure signature
/// (1 unary, 2 binary relations).
struct FormulaGenOptions {
    /// Total quantifier budget (FO + connected + SO combined).
    int max_quantifiers = 4;
    /// Connective depth budget below the quantifier prefix.
    int max_depth = 4;
    /// Allow monadic second-order quantifiers (keep the structure's domain
    /// at or below SOPolicy::max_universe_size when set).
    bool allow_so = false;
};

/// One random *sentence* (no free variables): every atom only mentions
/// variables bound by an enclosing quantifier, so both model checkers accept
/// it without an assignment.
Formula random_sentence(Rng& rng, const FormulaGenOptions& opt);

/// Splits one corpus seed into a per-instance seed.  A plain counter would
/// make adjacent instances' streams overlap after a shared prefix; this
/// mixes the bits (splitmix64 finalizer) so instance i and i+1 are unrelated.
std::uint64_t instance_seed(std::uint64_t corpus_seed, std::uint64_t index);

} // namespace lph
