#include "oracle/selftest.hpp"

#include "hierarchy/game.hpp"
#include "machines/deciders.hpp"
#include "oracle/generators.hpp"
#include "oracle/shrink.hpp"

#include <sstream>

namespace lph {

namespace {

/// Deliberately buggy copy of the engine's unanimity aggregation: it folds
/// the per-node verdicts starting at node 1, silently dropping node 0 — the
/// classic off-by-one the differential harness exists to catch.
bool buggy_unanimity_accepts(const LabeledGraph& g, const IdentifierAssignment& id,
                             const LocalMachine& machine) {
    const ExecutionResult run = run_local(
        machine, g, id, CertificateListAssignment::empty(g.num_nodes()), {});
    if (!run.ok() || !run.completed) {
        return false;
    }
    bool unanimous = true;
    for (NodeId u = 1; u < g.num_nodes(); ++u) { // BUG: starts at 1, not 0
        unanimous = unanimous && run.node_accepts(u);
    }
    return unanimous;
}

bool engine_accepts(const LabeledGraph& g, const IdentifierAssignment& id,
                    const LocalMachine& machine) {
    GameSpec spec;
    spec.machine = &machine;
    // No quantifier layers: the game is exactly one arbiter run.
    GameOptions options;
    options.threads = 1;
    return play_game(spec, g, id, options).accepted;
}

} // namespace

SelftestResult run_selftest(std::uint64_t seed, std::size_t max_instances) {
    SelftestResult result;
    result.seed = seed;

    const AllSelectedDecider machine;
    const DivergencePredicate diverges = [&machine](const LabeledGraph& g) {
        if (g.num_nodes() == 0) {
            return false;
        }
        const IdentifierAssignment id = make_global_ids(g);
        return buggy_unanimity_accepts(g, id, machine) !=
               engine_accepts(g, id, machine);
    };

    GraphGenOptions gopt;
    gopt.min_nodes = 2;
    gopt.max_nodes = 5;
    gopt.max_extra_edges = 2;
    gopt.labels = GraphGenOptions::Labels::ZeroOrOne;

    for (std::size_t i = 0; i < max_instances; ++i) {
        Rng rng(instance_seed(seed, i));
        const LabeledGraph g = random_graph_instance(rng, gopt);
        ++result.instances_tried;
        if (!diverges(g)) {
            continue;
        }
        result.divergence_found = true;
        result.original_nodes = g.num_nodes();
        result.shrunk = shrink_graph(g, diverges);
        result.shrunk_nodes = result.shrunk.num_nodes();
        std::ostringstream detail;
        detail << "planted off-by-one caught after " << result.instances_tried
               << " instance(s); shrunk from " << result.original_nodes
               << " to " << result.shrunk_nodes << " node(s)";
        result.detail = detail.str();
        return result;
    }
    result.detail = "planted off-by-one was NOT caught — the harness is broken";
    return result;
}

} // namespace lph
