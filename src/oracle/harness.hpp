#pragma once

#include "core/rng.hpp"
#include "oracle/repro.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lph {

namespace obs {
class Session;
}

/// One confirmed disagreement between a fast path and its oracle, after
/// counterexample shrinking.
struct Divergence {
    ReproCase repro;     ///< the shrunk, re-runnable counterexample
    std::string detail;  ///< what disagreed, on the shrunk instance
    std::size_t original_nodes = 0;
    std::size_t shrunk_nodes = 0;
};

/// Outcome of fuzzing one differential check over a seeded corpus.
struct CheckReport {
    std::string check;
    std::uint64_t seed = 0;
    std::size_t instances = 0;
    /// Wall-clock of the whole corpus, including shrinking any divergences.
    double wall_ms = 0;
    std::vector<Divergence> divergences;
    bool passed() const { return divergences.empty(); }
    double instances_per_sec() const {
        return wall_ms > 0
                   ? 1000.0 * static_cast<double>(instances) / wall_ms
                   : 0.0;
    }
};

/// Names of all registered differential checks, in execution order:
///   game-par-vs-ref            parallel+memoized game engine vs the
///                              single-threaded uncached reference
///   game-cache-vs-nocache      view cache on vs off, plus a reused shared
///                              cache and its verdict-mismatch counter
///   game-compiled-vs-interpreted
///                              compiled decision-table backend (packed
///                              evaluation + orbit sharing) vs interpreted,
///                              including game_tree_size bit-equality
///   logic-eval-vs-expansion    evaluate() vs quantifier-expansion reference
///   eulerian-vs-bruteforce     degree/component test + Hierholzer vs
///                              brute-force trail search
///   coloring-vs-bruteforce     backtracking/DSATUR/bipartite vs k^n scan
///   hamiltonian-vs-bruteforce  pruned search vs permutation scan
///   reduction-eulerian-vs-theorem
///                              AllSelectedToEulerian output vs Prop. 15
std::vector<std::string> check_names();

bool is_check_name(const std::string& name);

/// One differential check as the registry stores it.  Higher layers (the
/// serving library's chaos check, for instance) register their own checks
/// through register_check(); the oracle library cannot depend on them, so
/// the registry is open instead of a closed table.
struct RegisteredCheck {
    std::string name;
    ReproCase (*generate)(Rng&) = nullptr;
    std::optional<std::string> (*compare)(const ReproCase&) = nullptr;
    /// Optional check-specific parameter simplifications for the shrinker.
    std::vector<std::map<std::string, std::string>> (*param_shrinks)(
        const std::map<std::string, std::string>&) = nullptr;
};

/// Appends one check to the registry (thread-safe).  Re-registering an
/// existing name is a checked error except when generate/compare are
/// pointer-identical (idempotent re-registration from multiple cores).
void register_check(const RegisteredCheck& check);

/// Fuzzes one check: `instances` seeded random instances, fast path vs
/// oracle on each; every divergence is shrunk to a 1-minimal counterexample
/// before being reported.  When `obs` is set, the check accumulates
/// `oracle.*` counters (checks, instances, divergences, wall_ms) into the
/// session's registry; span tracing is independent and follows the ambient
/// obs::Tracer.
CheckReport run_check(const std::string& name, std::uint64_t seed,
                      std::size_t instances, obs::Session* obs = nullptr);

/// Re-executes one repro case.  Returns the divergence detail, or nullopt
/// when fast path and oracle now agree.
std::optional<std::string> replay_repro(const ReproCase& repro);

/// One JSON object (single line) summarizing a report; divergence entries
/// carry detail and instance sizes but not the repro text.
std::string report_row_json(const CheckReport& report);

std::string json_escape(const std::string& s);

} // namespace lph
