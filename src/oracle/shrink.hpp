#pragma once

#include "graph/graph.hpp"

#include <cstddef>
#include <functional>

namespace lph {

/// "Does the fast path still disagree with the oracle on this graph?"
/// Candidate graphs may be degenerate (empty, disconnected, relabeled); a
/// predicate that throws on a candidate is treated as "no divergence there".
using DivergencePredicate = std::function<bool(const LabeledGraph&)>;

struct ShrinkStats {
    std::size_t predicate_calls = 0;
    std::size_t nodes_removed = 0;
    std::size_t edges_removed = 0;
    std::size_t labels_simplified = 0;
};

/// Copy of g without node u (remaining nodes are renumbered densely,
/// preserving relative order; u's edges vanish with it).
LabeledGraph remove_node_copy(const LabeledGraph& g, NodeId u);

/// Copy of g without the edge {u, v}.
LabeledGraph remove_edge_copy(const LabeledGraph& g, NodeId u, NodeId v);

/// Greedy delta-debugging to a local minimum: repeatedly tries dropping a
/// node, dropping an edge, and simplifying a label to "1", keeping any
/// candidate on which `diverges` still holds, until a full sweep makes no
/// progress.  The result is 1-minimal: no single node/edge removal or label
/// simplification preserves the divergence.  Requires diverges(g) on entry.
LabeledGraph shrink_graph(const LabeledGraph& g, const DivergencePredicate& diverges,
                          ShrinkStats* stats = nullptr);

} // namespace lph
