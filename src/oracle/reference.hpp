#pragma once

#include "graph/graph.hpp"
#include "hierarchy/game.hpp"
#include "logic/eval.hpp"

#include <cstdint>
#include <optional>

namespace lph {

/// Deliberately naive reference implementations ("oracles") for the
/// differential harness.
///
/// Everything here favors being *obviously correct* over being fast: plain
/// recursion, exhaustive enumeration, no caches, no threads, no incremental
/// state.  Each oracle answers the same finite, decidable question as one of
/// the library's fast paths, so on any instance a disagreement between the
/// two is a bug by construction — in one side or the other.  All oracles are
/// exponential; the harness keeps instances tiny.

/// Brute-force EULERIAN: backtracking search for a closed walk that uses
/// every edge exactly once, straight from the definition (no Euler-theorem
/// shortcut, no connectivity reasoning).
bool ref_is_eulerian(const LabeledGraph& g);

/// Brute-force k-COLORABLE: enumerates all k^n color functions and checks
/// each against the definition of properness.
bool ref_is_k_colorable(const LabeledGraph& g, int k);

/// Brute-force HAMILTONIAN: enumerates node permutations with a fixed first
/// node and checks each for being a cycle in g.
bool ref_is_hamiltonian(const LabeledGraph& g);

/// What the reference game evaluation reports: the deterministic fields of a
/// GameResult (the engine guarantees these are identical across thread
/// counts and cache settings, so they must also match this reference).
struct RefGameResult {
    bool accepted = false;
    std::uint64_t machine_runs = 0;
    std::uint64_t faulted_runs = 0;
    std::optional<CertificateAssignment> witness;
};

/// Reference certificate-game evaluation: single-threaded recursive
/// enumeration with the view cache disabled and no odometer state.  It scans
/// layer assignments in the same linear order as the engine (node 0 is the
/// fastest-running digit) with the same early exits, so machine_runs /
/// faulted_runs / witness must match the engine bit for bit, not just the
/// verdict.  `tolerate_faults` mirrors GameOptions::tolerate_faults.
RefGameResult ref_play_game(const GameSpec& spec, const LabeledGraph& g,
                            const IdentifierAssignment& id,
                            const ExecutionOptions& exec = {},
                            bool tolerate_faults = false);

/// Direct FO/MSO model checking by quantifier expansion: every quantifier is
/// expanded into its full table of instance values, folded *without* early
/// exits; second-order quantifiers enumerate subsets by include/exclude
/// recursion; variable bindings are plain assignment copies.
bool ref_evaluate(const Structure& s, const Formula& phi, const Assignment& sigma,
                  const SOPolicy& policy = {});

/// Reference counterpart of satisfies() for sentences.
bool ref_satisfies(const Structure& s, const Formula& sentence,
                   const SOPolicy& policy = {});

} // namespace lph
