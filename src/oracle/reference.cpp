#include "oracle/reference.hpp"

#include "core/check.hpp"
#include "logic/formula.hpp"

#include <algorithm>
#include <functional>

namespace lph {

namespace {

/// Trail search from `at`: extends the walk by any unused incident edge and
/// accepts when all edges are used and the walk is back at `start`.
bool extend_trail(const LabeledGraph& g,
                  const std::vector<std::pair<NodeId, NodeId>>& edges,
                  std::vector<bool>& used, std::size_t used_count, NodeId at,
                  NodeId start) {
    if (used_count == edges.size()) {
        return at == start;
    }
    for (std::size_t e = 0; e < edges.size(); ++e) {
        if (used[e]) {
            continue;
        }
        NodeId next;
        if (edges[e].first == at) {
            next = edges[e].second;
        } else if (edges[e].second == at) {
            next = edges[e].first;
        } else {
            continue;
        }
        used[e] = true;
        if (extend_trail(g, edges, used, used_count + 1, next, start)) {
            return true;
        }
        used[e] = false;
    }
    return false;
}

} // namespace

bool ref_is_eulerian(const LabeledGraph& g) {
    if (g.num_nodes() == 0) {
        return false;
    }
    if (g.num_edges() == 0) {
        return true; // the empty closed walk uses every (no) edge once
    }
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (u < v) {
                edges.emplace_back(u, v);
            }
        }
    }
    // A closed walk through all edges passes every edge endpoint, so if one
    // exists it exists from the first positive-degree node.
    NodeId start = 0;
    while (g.degree(start) == 0) {
        ++start;
    }
    std::vector<bool> used(edges.size(), false);
    return extend_trail(g, edges, used, 0, start, start);
}

bool ref_is_k_colorable(const LabeledGraph& g, int k) {
    check(k >= 1, "ref_is_k_colorable: k must be positive");
    const std::size_t n = g.num_nodes();
    check(n <= 12, "ref_is_k_colorable: instance too large for brute force");
    std::vector<int> colors(n, 0);
    while (true) {
        bool proper = true;
        for (NodeId u = 0; u < n && proper; ++u) {
            for (NodeId v : g.neighbors(u)) {
                if (colors[u] == colors[v]) {
                    proper = false;
                    break;
                }
            }
        }
        if (proper) {
            return true;
        }
        std::size_t pos = 0;
        while (pos < n && ++colors[pos] == k) {
            colors[pos] = 0;
            ++pos;
        }
        if (pos == n) {
            return false;
        }
    }
}

bool ref_is_hamiltonian(const LabeledGraph& g) {
    const std::size_t n = g.num_nodes();
    if (n < 3) {
        return false; // a simple-graph cycle needs at least 3 nodes
    }
    check(n <= 10, "ref_is_hamiltonian: instance too large for brute force");
    // All cyclic orders, with node 0 fixed in front.
    std::vector<NodeId> perm(n - 1);
    for (std::size_t i = 0; i < perm.size(); ++i) {
        perm[i] = i + 1;
    }
    do {
        bool cycle = g.has_edge(0, perm.front()) && g.has_edge(perm.back(), 0);
        for (std::size_t i = 0; i + 1 < perm.size() && cycle; ++i) {
            cycle = g.has_edge(perm[i], perm[i + 1]);
        }
        if (cycle) {
            return true;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return false;
}

// ---------------------------------------------------------------------------
// Reference game evaluation.
// ---------------------------------------------------------------------------

namespace {

class RefGameSolver {
public:
    RefGameSolver(const GameSpec& spec, const LabeledGraph& g,
                  const IdentifierAssignment& id, const ExecutionOptions& exec,
                  bool tolerate_faults)
        : spec_(spec), g_(g), id_(id), tolerate_faults_(tolerate_faults),
          leaf_exec_(exec) {
        check(spec.machine != nullptr, "ref_play_game: no machine");
        if (tolerate_faults_ && leaf_exec_.on_violation == FaultPolicy::Throw) {
            leaf_exec_.on_violation = FaultPolicy::Record;
        }
        const std::size_t n = g.num_nodes();
        options_.resize(spec.layers.size());
        for (std::size_t l = 0; l < spec.layers.size(); ++l) {
            options_[l].resize(n);
            double product = 1;
            for (NodeId u = 0; u < n; ++u) {
                options_[l][u] = spec.layers[l]->options(g, id, u);
                check(!options_[l][u].empty(),
                      "ref_play_game: a certificate domain is empty");
                product *= static_cast<double>(options_[l][u].size());
            }
            check(product <= 4e6,
                  "ref_play_game: layer assignment space too large for the "
                  "reference engine");
        }
        chosen_.assign(spec.layers.size(),
                       CertificateAssignment(std::vector<BitString>(n)));
    }

    RefGameResult run() {
        result_.accepted = value(0);
        return result_;
    }

private:
    bool existential(std::size_t layer) const {
        return spec_.starts_existential ? layer % 2 == 0 : layer % 2 == 1;
    }

    bool leaf() {
        ++result_.machine_runs;
        const auto list = CertificateListAssignment::concatenate(
            chosen_, g_.num_nodes());
        try {
            const ExecutionResult exec =
                run_local(*spec_.machine, g_, id_, list, leaf_exec_);
            if (!exec.ok() || !exec.faults.empty()) {
                ++result_.faulted_runs;
                return false;
            }
            return exec.accepted;
        } catch (const run_error&) {
            if (!tolerate_faults_) {
                throw;
            }
            ++result_.faulted_runs;
            return false;
        }
    }

    /// Scans every assignment of `layer`, node n-1 in the outermost loop so
    /// node 0 varies fastest — the engine's linear order.  Returns true on
    /// the first assignment whose subgame value equals `want`.
    bool scan(std::size_t layer, std::size_t unassigned, bool want) {
        if (unassigned == 0) {
            return value(layer + 1) == want;
        }
        const NodeId u = unassigned - 1;
        for (const BitString& option : options_[layer][u]) {
            chosen_[layer].set(u, option);
            if (scan(layer, unassigned - 1, want)) {
                return true;
            }
        }
        return false;
    }

    /// Exact value of the subgame starting at `layer` under chosen_[0..layer).
    bool value(std::size_t layer) {
        if (layer == spec_.layers.size()) {
            return leaf();
        }
        const bool want = existential(layer);
        const bool found = scan(layer, g_.num_nodes(), want);
        if (layer == 0 && found && existential(0)) {
            result_.witness = chosen_[0]; // still holds the deciding assignment
        }
        return found ? want : !want;
    }

    const GameSpec& spec_;
    const LabeledGraph& g_;
    const IdentifierAssignment& id_;
    bool tolerate_faults_;
    ExecutionOptions leaf_exec_;
    std::vector<std::vector<std::vector<BitString>>> options_; // [layer][node]
    std::vector<CertificateAssignment> chosen_;
    RefGameResult result_;
};

} // namespace

RefGameResult ref_play_game(const GameSpec& spec, const LabeledGraph& g,
                            const IdentifierAssignment& id,
                            const ExecutionOptions& exec, bool tolerate_faults) {
    return RefGameSolver(spec, g, id, exec, tolerate_faults).run();
}

// ---------------------------------------------------------------------------
// Reference model checking by quantifier expansion.
// ---------------------------------------------------------------------------

namespace {

Element ref_lookup(const Assignment& sigma, const std::string& var) {
    const auto it = sigma.fo.find(var);
    check(it != sigma.fo.end(),
          "ref_evaluate: unassigned first-order variable " + var);
    return it->second;
}

bool ref_eval(const Structure& s, const Formula& phi, Assignment sigma,
              const SOPolicy& policy);

/// Folds the subset lattice of `universe` (include/exclude per tuple) without
/// early exits: returns whether *some* (existential) or *every* (universal)
/// subset satisfies the body.
bool fold_subsets(const Structure& s, const FormulaNode& node,
                  const Assignment& sigma, const SOPolicy& policy,
                  const std::vector<ElementTuple>& universe, std::size_t next,
                  RelationValue value, bool existential) {
    if (next == universe.size()) {
        Assignment inner = sigma;
        inner.so.insert_or_assign(node.rel_var, std::move(value));
        return ref_eval(s, node.children[0], std::move(inner), policy);
    }
    const bool without =
        fold_subsets(s, node, sigma, policy, universe, next + 1, value,
                     existential);
    value.insert(universe[next]);
    const bool with = fold_subsets(s, node, sigma, policy, universe, next + 1,
                                   std::move(value), existential);
    return existential ? (without || with) : (without && with);
}

bool ref_eval(const Structure& s, const Formula& phi, Assignment sigma,
              const SOPolicy& policy) {
    const FormulaNode& node = *phi;
    switch (node.kind) {
    case FormulaKind::Top:
        return true;
    case FormulaKind::Bottom:
        return false;
    case FormulaKind::Unary:
        check(node.rel_index >= 1 && node.rel_index <= s.num_unary(),
              "ref_evaluate: unary relation index out of signature");
        return s.unary_holds(node.rel_index - 1, ref_lookup(sigma, node.var));
    case FormulaKind::Binary:
        check(node.rel_index >= 1 && node.rel_index <= s.num_binary(),
              "ref_evaluate: binary relation index out of signature");
        return s.binary_holds(node.rel_index - 1, ref_lookup(sigma, node.var),
                              ref_lookup(sigma, node.var2));
    case FormulaKind::Equals:
        return ref_lookup(sigma, node.var) == ref_lookup(sigma, node.var2);
    case FormulaKind::Apply: {
        const auto it = sigma.so.find(node.rel_var);
        check(it != sigma.so.end(),
              "ref_evaluate: unassigned second-order variable " + node.rel_var);
        ElementTuple t;
        for (const auto& a : node.args) {
            t.push_back(ref_lookup(sigma, a));
        }
        return it->second.contains(t);
    }
    case FormulaKind::Not:
        return !ref_eval(s, node.children[0], sigma, policy);
    case FormulaKind::Or:
        return ref_eval(s, node.children[0], sigma, policy) |
               ref_eval(s, node.children[1], sigma, policy);
    case FormulaKind::And:
        return ref_eval(s, node.children[0], sigma, policy) &
               ref_eval(s, node.children[1], sigma, policy);
    case FormulaKind::Implies:
        return !ref_eval(s, node.children[0], sigma, policy) |
               ref_eval(s, node.children[1], sigma, policy);
    case FormulaKind::Iff:
        return ref_eval(s, node.children[0], sigma, policy) ==
               ref_eval(s, node.children[1], sigma, policy);
    case FormulaKind::ExistsFO:
    case FormulaKind::ForallFO: {
        const bool existential = node.kind == FormulaKind::ExistsFO;
        bool some = false;
        bool all = true;
        for (Element a = 0; a < s.domain_size(); ++a) {
            Assignment inner = sigma;
            inner.fo.insert_or_assign(node.var, a);
            const bool v = ref_eval(s, node.children[0], std::move(inner), policy);
            some = some || v;
            all = all && v;
        }
        return existential ? some : all;
    }
    case FormulaKind::ExistsConn:
    case FormulaKind::ForallConn: {
        const bool existential = node.kind == FormulaKind::ExistsConn;
        const Element anchor = ref_lookup(sigma, node.var2);
        bool some = false;
        bool all = true;
        for (Element a : s.connected_to(anchor)) {
            Assignment inner = sigma;
            inner.fo.insert_or_assign(node.var, a);
            const bool v = ref_eval(s, node.children[0], std::move(inner), policy);
            some = some || v;
            all = all && v;
        }
        return existential ? some : all;
    }
    case FormulaKind::ExistsSO:
    case FormulaKind::ForallSO: {
        const bool existential = node.kind == FormulaKind::ExistsSO;
        const auto universe = so_tuple_universe(s, node.arity, policy);
        check(universe.size() <= policy.max_universe_size,
              "ref_evaluate: second-order universe too large");
        Assignment base = sigma;
        base.so.erase(node.rel_var);
        return fold_subsets(s, node, base, policy, universe, 0,
                            RelationValue(node.arity), existential);
    }
    }
    check(false, "ref_evaluate: unreachable");
    return false;
}

} // namespace

bool ref_evaluate(const Structure& s, const Formula& phi, const Assignment& sigma,
                  const SOPolicy& policy) {
    return ref_eval(s, phi, sigma, policy);
}

bool ref_satisfies(const Structure& s, const Formula& sentence,
                   const SOPolicy& policy) {
    check(free_fo_variables(sentence).empty(),
          "ref_satisfies: sentence has free first-order variables");
    check(free_so_variables(sentence).empty(),
          "ref_satisfies: sentence has free second-order variables");
    return ref_evaluate(s, sentence, Assignment{}, policy);
}

} // namespace lph
