#include "oracle/repro.hpp"

#include "core/check.hpp"
#include "graph/serialize.hpp"

#include <fstream>
#include <sstream>

namespace lph {

std::string repro_to_text(const ReproCase& repro) {
    check(repro.check.find_first_of(" \n") == std::string::npos &&
              !repro.check.empty(),
          "repro_to_text: check name must be a single token");
    std::ostringstream out;
    out << "lph-fuzz-repro 1\n";
    out << "check " << repro.check << "\n";
    out << "seed " << repro.seed << "\n";
    for (const auto& [key, value] : repro.params) {
        check(key.find_first_of(" \n") == std::string::npos && !key.empty(),
              "repro_to_text: param key must be a single token");
        check(value.find('\n') == std::string::npos,
              "repro_to_text: param value must be a single line");
        out << "param " << key << " " << value << "\n";
    }
    out << graph_to_text(repro.graph);
    return out.str();
}

ReproCase repro_from_text(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    check(static_cast<bool>(std::getline(in, line)) && line == "lph-fuzz-repro 1",
          "repro_from_text: missing 'lph-fuzz-repro 1' header");

    ReproCase repro;
    std::string graph_section;
    bool in_graph = false;
    while (std::getline(in, line)) {
        if (in_graph) {
            graph_section += line;
            graph_section += '\n';
            continue;
        }
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream fields(line);
        std::string directive;
        fields >> directive;
        if (directive == "check") {
            check(static_cast<bool>(fields >> repro.check),
                  "repro_from_text: malformed check line");
        } else if (directive == "seed") {
            check(static_cast<bool>(fields >> repro.seed),
                  "repro_from_text: malformed seed line");
        } else if (directive == "param") {
            std::string key;
            check(static_cast<bool>(fields >> key),
                  "repro_from_text: malformed param line");
            std::string value;
            std::getline(fields, value);
            if (!value.empty() && value.front() == ' ') {
                value.erase(0, 1);
            }
            repro.params[key] = value;
        } else if (directive == "graph") {
            in_graph = true;
            graph_section += line;
            graph_section += '\n';
        } else {
            check(false, "repro_from_text: unknown directive '" + directive + "'");
        }
    }
    check(!repro.check.empty(), "repro_from_text: missing check line");
    check(in_graph, "repro_from_text: missing graph section");
    repro.graph = graph_from_text(graph_section);
    return repro;
}

void write_repro_file(const std::string& path, const ReproCase& repro) {
    std::ofstream out(path);
    check(out.good(), "write_repro_file: cannot open " + path);
    out << repro_to_text(repro);
    out.flush();
    check(out.good(), "write_repro_file: write to " + path + " failed");
}

ReproCase read_repro_file(const std::string& path) {
    std::ifstream in(path);
    check(in.good(), "read_repro_file: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return repro_from_text(buffer.str());
}

} // namespace lph
