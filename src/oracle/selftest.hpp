#pragma once

#include "graph/graph.hpp"

#include <cstdint>
#include <string>

namespace lph {

/// Outcome of the harness self-test (see run_selftest).
struct SelftestResult {
    bool divergence_found = false;
    std::uint64_t seed = 0;
    std::size_t instances_tried = 0;
    std::size_t original_nodes = 0;
    std::size_t shrunk_nodes = 0;
    LabeledGraph shrunk;
    std::string detail;
};

/// Proves the harness can actually catch and shrink bugs: runs a copy of the
/// engine's unanimity aggregation with a deliberate off-by-one (it skips
/// node 0's verdict) against the real leaf-only game over a seeded corpus,
/// and delta-debugs the first divergence.  The planted bug's minimal
/// counterexample is a single node whose label is not "1", so a healthy
/// harness reports divergence_found with shrunk_nodes == 1.
SelftestResult run_selftest(std::uint64_t seed = 7, std::size_t max_instances = 500);

} // namespace lph
