#pragma once

#include "graph/graph.hpp"

#include <cstdint>
#include <map>
#include <string>

namespace lph {

/// A self-contained, re-runnable counterexample: which differential check
/// diverged, the corpus seed it came from, the check-specific parameters
/// (identifier scheme, k, layer count, formula text...), and the (shrunk)
/// graph.  `lph_fuzz --repro FILE` re-executes exactly this case.
struct ReproCase {
    std::string check;
    std::uint64_t seed = 0;
    std::map<std::string, std::string> params;
    LabeledGraph graph;
};

/// Text format (round-trips exactly):
///
///     lph-fuzz-repro 1
///     check <name>
///     seed <u64>
///     param <key> <value...>        # zero or more; value runs to end of line
///     graph <n>                     # graph section, see graph/serialize.hpp
///     label <node> <bits>
///     edge <u> <v>
std::string repro_to_text(const ReproCase& repro);

/// Parses the format above; throws precondition_error on malformed input.
ReproCase repro_from_text(const std::string& text);

/// File convenience wrappers; throw precondition_error on I/O failure.
void write_repro_file(const std::string& path, const ReproCase& repro);
ReproCase read_repro_file(const std::string& path);

} // namespace lph
