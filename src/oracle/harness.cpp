#include "oracle/harness.hpp"

#include "core/bitstring.hpp"
#include "core/check.hpp"
#include "dtm/view_cache.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/eulerian.hpp"
#include "graphalg/hamiltonian.hpp"
#include "hierarchy/compiled.hpp"
#include "hierarchy/game.hpp"
#include "logic/eval.hpp"
#include "machines/deciders.hpp"
#include "machines/verifiers.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "oracle/generators.hpp"
#include "oracle/reference.hpp"
#include "oracle/shrink.hpp"
#include "reductions/classic_reductions.hpp"
#include "structure/graph_structure.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

namespace lph {

namespace {

const std::string& param(const ReproCase& r, const std::string& key) {
    const auto it = r.params.find(key);
    check(it != r.params.end(), "repro case is missing param '" + key + "'");
    return it->second;
}

// --------------------------------------------------------------------------
// Machine corpus for the game checks.  Every machine here is deterministic
// and cheap; what matters is that accept/fault patterns depend on the
// certificates in order-sensitive ways, so enumeration-order bugs show up in
// machine_runs and witness, not just the verdict.
// --------------------------------------------------------------------------

/// Violates its declared step bound whenever its certificate list contains a
/// '1' and accepts iff the list is exactly "0" — exercises the
/// tolerate_faults path and the faulted_runs counter.
class FussyVerifier : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return Polynomial::constant(64); }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter& meter) const override {
        if (input.certificates.find('1') != std::string::npos) {
            meter.charge(1'000'000); // blows the declared bound
        }
        return {{}, true, input.certificates == "0" ? "1" : "0"};
    }
};

/// Two-layer arbiter: a node accepts iff its Adam bit implies its Eve bit —
/// the certificate list at each node is "<eve>#<adam>".
class ImpliesVerifier : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return Polynomial{256, 16}; }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter& meter) const override {
        meter.charge(input.certificates.size());
        const auto parts = split_hash(input.certificates);
        const bool eve = !parts.empty() && parts[0] == "1";
        const bool adam = parts.size() > 1 && parts[1] == "1";
        return {{}, true, (!adam || eve) ? "1" : "0"};
    }
};

std::unique_ptr<LocalMachine> make_corpus_machine(const std::string& name) {
    if (name == "coloring2") {
        return std::make_unique<ColoringVerifier>(2);
    }
    if (name == "coloring3") {
        return std::make_unique<ColoringVerifier>(3);
    }
    if (name == "allsel") {
        return std::make_unique<AllSelectedDecider>();
    }
    if (name == "fussy") {
        return std::make_unique<FussyVerifier>();
    }
    if (name == "implies") {
        return std::make_unique<ImpliesVerifier>();
    }
    check(false, "unknown corpus machine '" + name + "'");
    return nullptr;
}

std::unique_ptr<CertificateDomain> make_corpus_domain(const std::string& machine,
                                                      const LocalMachine& m) {
    if (machine == "coloring2" || machine == "coloring3") {
        const auto& verifier = dynamic_cast<const ColoringVerifier&>(m);
        std::vector<BitString> colors;
        for (int c = 0; c < verifier.k(); ++c) {
            colors.push_back(verifier.encode_color(c));
        }
        return std::make_unique<FixedOptionsDomain>(std::move(colors));
    }
    if (machine == "implies") {
        return std::make_unique<FixedOptionsDomain>(
            std::vector<BitString>{"0", "1"});
    }
    // allsel / fussy enumerate the raw strings of length <= 1: "", "0", "1".
    return std::make_unique<RawBitStringDomain>(1);
}

struct BuiltGame {
    std::unique_ptr<LocalMachine> machine;
    std::vector<std::unique_ptr<CertificateDomain>> domains;
    GameSpec spec;
    bool tolerate = false;
};

BuiltGame build_game(const ReproCase& r) {
    BuiltGame built;
    const std::string machine = param(r, "machine");
    built.machine = make_corpus_machine(machine);
    const int layers = std::stoi(param(r, "layers"));
    check(layers >= 1 && layers <= 3, "game repro: bad layer count");
    for (int l = 0; l < layers; ++l) {
        built.domains.push_back(make_corpus_domain(machine, *built.machine));
    }
    built.spec.machine = built.machine.get();
    for (const auto& domain : built.domains) {
        built.spec.layers.push_back(domain.get());
    }
    built.spec.starts_existential = param(r, "sigma") == "1";
    built.tolerate = machine == "fussy";
    return built;
}

IdentifierAssignment ids_of(const ReproCase& r, const LocalMachine& m) {
    return identifier_scheme_by_name(param(r, "ids"), r.graph, m.id_radius());
}

ReproCase generate_game_case(Rng& rng) {
    static const char* kMachines[] = {"coloring2", "coloring3", "allsel", "fussy",
                                      "implies"};
    ReproCase r;
    const std::string machine = kMachines[rng.index(5)];
    GraphGenOptions gopt;
    gopt.min_nodes = 2;
    gopt.max_nodes = machine == "coloring3" ? 3 : 4;
    gopt.max_extra_edges = 2;
    gopt.labels = (machine == "allsel" || machine == "fussy")
                      ? GraphGenOptions::Labels::ZeroOrOne
                      : GraphGenOptions::Labels::AllOnes;
    r.graph = random_graph_instance(rng, gopt);
    r.params["machine"] = machine;
    const int layers = machine == "implies" ? 2
                       : (machine != "fussy" && rng.chance(0.35)) ? 2
                                                                  : 1;
    r.params["layers"] = std::to_string(layers);
    r.params["sigma"] = rng.chance(0.5) ? "1" : "0";
    std::string scheme;
    const auto machine_obj = make_corpus_machine(machine);
    random_identifier_scheme(rng, r.graph, machine_obj->id_radius(), &scheme);
    r.params["ids"] = scheme;
    return r;
}

/// The deterministic fields of one engine or reference run, with thrown
/// run_errors folded in (both sides must throw on the same instances).
struct GameOutcome {
    bool threw = false;
    bool accepted = false;
    std::uint64_t machine_runs = 0;
    std::uint64_t faulted_runs = 0;
    std::optional<CertificateAssignment> witness;
};

GameOutcome run_engine(const GameSpec& spec, const LabeledGraph& g,
                       const IdentifierAssignment& id, const GameOptions& options) {
    GameOutcome out;
    try {
        GameResult result = play_game(spec, g, id, options);
        out.accepted = result.accepted;
        out.machine_runs = result.machine_runs;
        out.faulted_runs = result.faulted_runs;
        out.witness = std::move(result.witness);
    } catch (const run_error&) {
        out.threw = true;
    }
    return out;
}

GameOutcome run_reference(const GameSpec& spec, const LabeledGraph& g,
                          const IdentifierAssignment& id, bool tolerate) {
    GameOutcome out;
    try {
        RefGameResult result = ref_play_game(spec, g, id, ExecutionOptions{}, tolerate);
        out.accepted = result.accepted;
        out.machine_runs = result.machine_runs;
        out.faulted_runs = result.faulted_runs;
        out.witness = std::move(result.witness);
    } catch (const run_error&) {
        out.threw = true;
    }
    return out;
}

std::optional<std::string> diff_outcome(const std::string& a_name,
                                        const GameOutcome& a,
                                        const std::string& b_name,
                                        const GameOutcome& b) {
    std::ostringstream out;
    if (a.threw != b.threw) {
        out << (a.threw ? a_name : b_name) << " threw run_error but "
            << (a.threw ? b_name : a_name) << " did not";
        return out.str();
    }
    if (a.threw) {
        return std::nullopt; // both aborted identically
    }
    if (a.accepted != b.accepted) {
        out << a_name << " accepted=" << a.accepted << " but " << b_name
            << " accepted=" << b.accepted;
        return out.str();
    }
    if (a.machine_runs != b.machine_runs) {
        out << a_name << " machine_runs=" << a.machine_runs << " but " << b_name
            << " machine_runs=" << b.machine_runs;
        return out.str();
    }
    if (a.faulted_runs != b.faulted_runs) {
        out << a_name << " faulted_runs=" << a.faulted_runs << " but " << b_name
            << " faulted_runs=" << b.faulted_runs;
        return out.str();
    }
    if (a.witness.has_value() != b.witness.has_value() ||
        (a.witness.has_value() && !(*a.witness == *b.witness))) {
        out << a_name << " and " << b_name << " disagree on the witness";
        return out.str();
    }
    return std::nullopt;
}

std::optional<std::string> compare_game_par_vs_ref(const ReproCase& r) {
    const BuiltGame built = build_game(r);
    const IdentifierAssignment id = ids_of(r, *built.machine);
    GameOptions fast;
    fast.threads = 4;
    fast.memoize_views = true;
    fast.tolerate_faults = built.tolerate;
    const GameOutcome engine = run_engine(built.spec, r.graph, id, fast);
    const GameOutcome reference =
        run_reference(built.spec, r.graph, id, built.tolerate);
    return diff_outcome("engine(threads=4,cache=on)", engine, "reference",
                        reference);
}

std::optional<std::string> compare_game_cache_vs_nocache(const ReproCase& r) {
    const BuiltGame built = build_game(r);
    const IdentifierAssignment id = ids_of(r, *built.machine);
    GameOptions uncached;
    uncached.threads = 1;
    uncached.memoize_views = false;
    uncached.tolerate_faults = built.tolerate;
    GameOptions cached = uncached;
    cached.memoize_views = true;
    const GameOutcome off = run_engine(built.spec, r.graph, id, uncached);
    const GameOutcome on = run_engine(built.spec, r.graph, id, cached);
    if (auto diff = diff_outcome("cache=on", on, "cache=off", off)) {
        return diff;
    }
    // A cache reused across solves must not bleed verdicts between runs.
    ViewCache shared(1 << 12);
    GameOptions shared_opts = cached;
    shared_opts.view_cache = &shared;
    const GameOutcome warm1 = run_engine(built.spec, r.graph, id, shared_opts);
    const GameOutcome warm2 = run_engine(built.spec, r.graph, id, shared_opts);
    if (auto diff = diff_outcome("shared-cache pass 1", warm1, "cache=off", off)) {
        return diff;
    }
    if (auto diff = diff_outcome("shared-cache pass 2", warm2, "cache=off", off)) {
        return diff;
    }
    const std::uint64_t mismatches = shared.stats().verdict_mismatches;
    if (mismatches != 0) {
        return "shared view cache recorded " + std::to_string(mismatches) +
               " verdict mismatch(es) for equal keys";
    }
    return std::nullopt;
}

std::optional<std::string>
compare_game_compiled_vs_interpreted(const ReproCase& r) {
    const BuiltGame built = build_game(r);
    const IdentifierAssignment id = ids_of(r, *built.machine);
    GameOptions interpreted;
    interpreted.threads = 4;
    interpreted.memoize_views = true;
    interpreted.tolerate_faults = built.tolerate;
    interpreted.backend = GameBackend::Interpreted;
    GameOptions compiled = interpreted;
    compiled.backend = GameBackend::Compiled;
    const GameOutcome itp = run_engine(built.spec, r.graph, id, interpreted);
    const GameOutcome cmp = run_engine(built.spec, r.graph, id, compiled);
    if (auto diff = diff_outcome("compiled(threads=4)", cmp, "interpreted", itp)) {
        return diff;
    }
    // The sequential packed path (one chunk, no published terminals) must
    // agree too.
    GameOptions compiled_seq = compiled;
    compiled_seq.threads = 1;
    const GameOutcome seq = run_engine(built.spec, r.graph, id, compiled_seq);
    if (auto diff = diff_outcome("compiled(threads=1)", seq, "interpreted", itp)) {
        return diff;
    }
    // When the context compiles, the orbit-multiplied game_tree_size must
    // equal the interpreted per-node product bit for bit.
    const GameTables tables(built.spec, r.graph, id);
    if (const CompiledGameCore* core =
            tables.compiled(built.spec, r.graph, id, ExecutionOptions{})) {
        if (core->tree_size() != tables.tree_size()) {
            return "compiled tree_size=" + std::to_string(core->tree_size()) +
                   " but interpreted tree_size=" +
                   std::to_string(tables.tree_size());
        }
    }
    return std::nullopt;
}

std::vector<std::map<std::string, std::string>>
game_param_shrinks(const std::map<std::string, std::string>& params) {
    std::vector<std::map<std::string, std::string>> candidates;
    if (params.count("layers") && params.at("layers") == "2" &&
        params.at("machine") != "implies") {
        auto p = params;
        p["layers"] = "1";
        candidates.push_back(std::move(p));
    }
    if (params.count("machine") && params.at("machine") == "coloring3") {
        auto p = params;
        p["machine"] = "coloring2";
        candidates.push_back(std::move(p));
    }
    if (params.count("ids") && params.at("ids") == "local") {
        auto p = params;
        p["ids"] = "global";
        candidates.push_back(std::move(p));
    }
    return candidates;
}

// --------------------------------------------------------------------------
// Logic: evaluate() vs the no-early-exit quantifier-expansion reference.
// --------------------------------------------------------------------------

ReproCase generate_logic_case(Rng& rng) {
    ReproCase r;
    // With an SO quantifier the reference folds 2^|domain| subsets, so SO
    // instances stay much smaller than FO-only ones.
    const bool so = rng.chance(0.3);
    GraphGenOptions gopt;
    gopt.min_nodes = 2;
    gopt.max_nodes = so ? 3 : 5;
    gopt.max_extra_edges = 2;
    gopt.labels = GraphGenOptions::Labels::RandomBits;
    gopt.label_length = so ? 1 : 2;
    r.graph = random_graph_instance(rng, gopt);
    r.params["so"] = so ? "1" : "0";
    r.params["fseed"] = std::to_string(rng.uniform(0, ~std::uint64_t{0} - 1));
    return r;
}

std::optional<std::string> compare_logic(const ReproCase& r) {
    FormulaGenOptions fopt;
    fopt.max_quantifiers = 3;
    fopt.max_depth = 3;
    fopt.allow_so = param(r, "so") == "1";
    Rng frng(std::stoull(param(r, "fseed")));
    const Formula sentence = random_sentence(frng, fopt);
    const GraphStructure gs(r.graph);
    const bool fast = satisfies(gs.structure(), sentence);
    const bool slow = ref_satisfies(gs.structure(), sentence);
    if (fast != slow) {
        std::ostringstream out;
        out << "evaluate() says " << fast << " but quantifier expansion says "
            << slow << " for sentence " << to_string(sentence);
        return out.str();
    }
    return std::nullopt;
}

// --------------------------------------------------------------------------
// Graph algorithms vs brute force.
// --------------------------------------------------------------------------

ReproCase generate_eulerian_case(Rng& rng) {
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 1;
    gopt.max_nodes = 6;
    gopt.max_extra_edges = 2;
    gopt.allow_disconnected = true; // isolated vertices are the point here
    r.graph = random_graph_instance(rng, gopt);
    return r;
}

std::optional<std::string> compare_eulerian(const ReproCase& r) {
    const LabeledGraph& g = r.graph;
    const bool fast = is_eulerian(g);
    const bool slow = ref_is_eulerian(g);
    if (fast != slow) {
        return "is_eulerian says " + std::to_string(fast) +
               " but the brute-force trail search says " + std::to_string(slow);
    }
    const auto cycle = find_eulerian_cycle(g);
    if (cycle.has_value() != fast) {
        return std::string("find_eulerian_cycle ") +
               (cycle ? "found a cycle" : "found nothing") +
               " but is_eulerian says " + std::to_string(fast);
    }
    if (cycle.has_value() && !verify_eulerian_cycle(g, *cycle)) {
        return "find_eulerian_cycle returned a walk verify_eulerian_cycle rejects";
    }
    return std::nullopt;
}

ReproCase generate_coloring_case(Rng& rng) {
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 1;
    gopt.max_nodes = 6;
    gopt.max_extra_edges = 4;
    gopt.allow_disconnected = true;
    r.graph = random_graph_instance(rng, gopt);
    r.params["k"] = std::to_string(2 + rng.index(3));
    return r;
}

std::optional<std::string> compare_coloring(const ReproCase& r) {
    const LabeledGraph& g = r.graph;
    const int k = std::stoi(param(r, "k"));
    check(k >= 1, "coloring repro: bad k");
    const auto found = find_k_coloring(g, k);
    const bool fast = found.has_value();
    const bool slow = ref_is_k_colorable(g, k);
    if (fast != slow) {
        return "find_k_coloring says " + std::to_string(fast) +
               " but the k^n brute force says " + std::to_string(slow);
    }
    if (found.has_value() && !verify_coloring(g, *found, k)) {
        return "find_k_coloring returned a coloring verify_coloring rejects";
    }
    const bool dsatur = is_k_colorable_dsatur(g, k);
    if (dsatur != slow) {
        return "DSATUR says " + std::to_string(dsatur) +
               " but the k^n brute force says " + std::to_string(slow);
    }
    if (k == 2 && is_bipartite(g) != slow) {
        return "is_bipartite disagrees with the 2^n brute force";
    }
    return std::nullopt;
}

std::vector<std::map<std::string, std::string>>
coloring_param_shrinks(const std::map<std::string, std::string>& params) {
    std::vector<std::map<std::string, std::string>> candidates;
    const auto it = params.find("k");
    if (it != params.end() && std::stoi(it->second) > 2) {
        auto p = params;
        p["k"] = std::to_string(std::stoi(it->second) - 1);
        candidates.push_back(std::move(p));
    }
    return candidates;
}

ReproCase generate_hamiltonian_case(Rng& rng) {
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 3;
    gopt.max_nodes = 7;
    gopt.max_extra_edges = 4;
    r.graph = random_graph_instance(rng, gopt);
    return r;
}

std::optional<std::string> compare_hamiltonian(const ReproCase& r) {
    const LabeledGraph& g = r.graph;
    if (g.num_nodes() == 0) {
        return std::nullopt; // the fast path requires a nonempty graph
    }
    const auto cycle = find_hamiltonian_cycle(g);
    const bool fast = cycle.has_value();
    const bool slow = ref_is_hamiltonian(g);
    if (fast != slow) {
        return "find_hamiltonian_cycle says " + std::to_string(fast) +
               " but the permutation brute force says " + std::to_string(slow);
    }
    if (cycle.has_value() && !verify_hamiltonian_cycle(g, *cycle)) {
        return "find_hamiltonian_cycle returned a cycle "
               "verify_hamiltonian_cycle rejects";
    }
    return std::nullopt;
}

// --------------------------------------------------------------------------
// Reductions: AllSelectedToEulerian output vs Proposition 15.
// --------------------------------------------------------------------------

ReproCase generate_reduction_case(Rng& rng) {
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 1;
    gopt.max_nodes = 3;
    gopt.max_extra_edges = 1;
    gopt.labels = GraphGenOptions::Labels::ZeroOrOne;
    r.graph = random_graph_instance(rng, gopt);
    std::string scheme;
    const AllSelectedToEulerian machine;
    random_identifier_scheme(rng, r.graph, machine.id_radius(), &scheme);
    r.params["ids"] = scheme;
    return r;
}

std::optional<std::string> compare_reduction_eulerian(const ReproCase& r) {
    const LabeledGraph& g = r.graph;
    const AllSelectedToEulerian machine;
    const IdentifierAssignment id =
        identifier_scheme_by_name(param(r, "ids"), g, machine.id_radius());
    const ReducedGraph reduced = apply_reduction(machine, g, id);
    const bool fast = is_eulerian(reduced.graph);
    const bool slow = ref_is_eulerian(reduced.graph);
    if (fast != slow) {
        return "on the reduced graph, is_eulerian says " + std::to_string(fast) +
               " but the brute-force trail search says " + std::to_string(slow);
    }
    bool all_selected = true;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        all_selected = all_selected && g.label(u) == "1";
    }
    if (fast != all_selected) {
        return "Proposition 15 violated: input all-selected=" +
               std::to_string(all_selected) + " but the reduced graph is " +
               (fast ? "" : "not ") + "Eulerian";
    }
    return std::nullopt;
}

// --------------------------------------------------------------------------
// Registry and runner.
// --------------------------------------------------------------------------

/// The open check registry: the built-in engine checks plus whatever higher
/// layers add through register_check().  Guarded by one mutex; callers copy
/// what they need out so a concurrent registration never invalidates an
/// in-flight corpus run.
std::mutex& registry_mutex() {
    static std::mutex mutex;
    return mutex;
}

std::vector<RegisteredCheck>& registry_locked() {
    static std::vector<RegisteredCheck> checks = {
        {"game-par-vs-ref", generate_game_case, compare_game_par_vs_ref,
         game_param_shrinks},
        {"game-cache-vs-nocache", generate_game_case,
         compare_game_cache_vs_nocache, game_param_shrinks},
        {"game-compiled-vs-interpreted", generate_game_case,
         compare_game_compiled_vs_interpreted, game_param_shrinks},
        {"logic-eval-vs-expansion", generate_logic_case, compare_logic, nullptr},
        {"eulerian-vs-bruteforce", generate_eulerian_case, compare_eulerian,
         nullptr},
        {"coloring-vs-bruteforce", generate_coloring_case, compare_coloring,
         coloring_param_shrinks},
        {"hamiltonian-vs-bruteforce", generate_hamiltonian_case,
         compare_hamiltonian, nullptr},
        {"reduction-eulerian-vs-theorem", generate_reduction_case,
         compare_reduction_eulerian, nullptr},
    };
    return checks;
}

RegisteredCheck find_check(const std::string& name) {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    for (const RegisteredCheck& c : registry_locked()) {
        if (name == c.name) {
            return c;
        }
    }
    check(false, "unknown differential check '" + name + "'");
    throw precondition_error("unreachable");
}

/// Shrinks a diverging case to a fixpoint, alternating graph delta-debugging
/// with check-specific parameter simplification.
Divergence shrink_case(const RegisteredCheck& c, const ReproCase& original,
                       const std::string& original_detail) {
    Divergence result;
    result.original_nodes = original.graph.num_nodes();

    ReproCase current = original;
    bool progress = true;
    while (progress) {
        progress = false;
        const DivergencePredicate still_diverges = [&](const LabeledGraph& g) {
            ReproCase candidate = current;
            candidate.graph = g;
            return c.compare(candidate).has_value();
        };
        const LabeledGraph smaller = shrink_graph(current.graph, still_diverges);
        if (!(smaller == current.graph)) {
            current.graph = smaller;
            progress = true;
        }
        if (c.param_shrinks != nullptr) {
            for (auto& candidate_params : c.param_shrinks(current.params)) {
                ReproCase candidate = current;
                candidate.params = candidate_params;
                bool diverges = false;
                try {
                    diverges = c.compare(candidate).has_value();
                } catch (...) {
                    diverges = false;
                }
                if (diverges) {
                    current.params = std::move(candidate_params);
                    progress = true;
                    break;
                }
            }
        }
    }

    result.repro = current;
    result.shrunk_nodes = current.graph.num_nodes();
    const auto detail = c.compare(current);
    result.detail = detail.value_or(original_detail);
    return result;
}

} // namespace

std::vector<std::string> check_names() {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    std::vector<std::string> names;
    for (const RegisteredCheck& c : registry_locked()) {
        names.emplace_back(c.name);
    }
    return names;
}

bool is_check_name(const std::string& name) {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    for (const RegisteredCheck& c : registry_locked()) {
        if (name == c.name) {
            return true;
        }
    }
    return false;
}

void register_check(const RegisteredCheck& new_check) {
    check(!new_check.name.empty() && new_check.generate != nullptr &&
              new_check.compare != nullptr,
          "register_check needs a name, a generator, and a comparator");
    const std::lock_guard<std::mutex> lock(registry_mutex());
    for (const RegisteredCheck& c : registry_locked()) {
        if (c.name == new_check.name) {
            check(c.generate == new_check.generate &&
                      c.compare == new_check.compare,
                  "differential check '" + new_check.name +
                      "' is already registered with different functions");
            return; // idempotent re-registration
        }
    }
    registry_locked().push_back(new_check);
}

CheckReport run_check(const std::string& name, std::uint64_t seed,
                      std::size_t instances, obs::Session* obs) {
    const RegisteredCheck c = find_check(name);
    CheckReport report;
    report.check = name;
    report.seed = seed;
    report.instances = instances;
    const auto start = std::chrono::steady_clock::now();
    {
        LPH_SPAN_NAMED(check_span, "oracle", "oracle.check");
        check_span.arg("instances", instances);
        for (std::size_t i = 0; i < instances; ++i) {
            const std::uint64_t iseed = instance_seed(seed, i);
            Rng rng(iseed);
            ReproCase instance = c.generate(rng);
            instance.check = name;
            instance.seed = iseed;
            instance.params["instance"] = std::to_string(i);
            const auto detail = c.compare(instance);
            if (detail.has_value()) {
                LPH_SPAN_NAMED(shrink_span, "oracle", "oracle.shrink");
                shrink_span.arg("original_nodes", instance.graph.num_nodes());
                report.divergences.push_back(shrink_case(c, instance, *detail));
            }
        }
    }
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (obs != nullptr) {
        obs->metrics().accumulate(
            "oracle.",
            {
                {"checks", 1.0},
                {"instances", static_cast<double>(instances)},
                {"divergences", static_cast<double>(report.divergences.size())},
                {"wall_ms", report.wall_ms},
            });
    }
    return report;
}

std::optional<std::string> replay_repro(const ReproCase& repro) {
    return find_check(repro.check).compare(repro);
}

std::string json_escape(const std::string& s) {
    std::string out;
    for (const char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string report_row_json(const CheckReport& report) {
    std::ostringstream out;
    out << "{\"check\":\"" << json_escape(report.check) << "\""
        << ",\"seed\":" << report.seed << ",\"instances\":" << report.instances
        << ",\"wall_ms\":" << report.wall_ms
        << ",\"instances_per_sec\":" << report.instances_per_sec()
        << ",\"divergences\":" << report.divergences.size() << ",\"status\":\""
        << (report.passed() ? "pass" : "fail") << "\",\"details\":[";
    for (std::size_t i = 0; i < report.divergences.size(); ++i) {
        const Divergence& d = report.divergences[i];
        if (i > 0) {
            out << ",";
        }
        out << "{\"detail\":\"" << json_escape(d.detail)
            << "\",\"original_nodes\":" << d.original_nodes
            << ",\"shrunk_nodes\":" << d.shrunk_nodes << "}";
    }
    out << "]}";
    return out.str();
}

} // namespace lph
