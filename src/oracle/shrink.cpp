#include "oracle/shrink.hpp"

#include "core/check.hpp"

namespace lph {

namespace {

bool holds(const DivergencePredicate& diverges, const LabeledGraph& g,
           ShrinkStats* stats) {
    if (stats != nullptr) {
        ++stats->predicate_calls;
    }
    try {
        return diverges(g);
    } catch (...) {
        // A candidate the comparison cannot even run on (guards, empty
        // graph...) is not a divergence we can shrink toward.
        return false;
    }
}

} // namespace

LabeledGraph remove_node_copy(const LabeledGraph& g, NodeId u) {
    LabeledGraph out;
    std::vector<NodeId> remap(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v != u) {
            remap[v] = out.add_node(g.label(v));
        }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v == u) {
            continue;
        }
        for (NodeId w : g.neighbors(v)) {
            if (w != u && v < w) {
                out.add_edge(remap[v], remap[w]);
            }
        }
    }
    return out;
}

LabeledGraph remove_edge_copy(const LabeledGraph& g, NodeId drop_u, NodeId drop_v) {
    LabeledGraph out;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        out.add_node(g.label(v));
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        for (NodeId w : g.neighbors(v)) {
            if (v >= w) {
                continue;
            }
            if ((v == drop_u && w == drop_v) || (v == drop_v && w == drop_u)) {
                continue;
            }
            out.add_edge(v, w);
        }
    }
    return out;
}

LabeledGraph shrink_graph(const LabeledGraph& g, const DivergencePredicate& diverges,
                          ShrinkStats* stats) {
    check(holds(diverges, g, stats),
          "shrink_graph: the starting instance does not diverge");
    LabeledGraph current = g;
    bool progress = true;
    while (progress) {
        progress = false;

        // Nodes first: one successful removal shrinks the search space for
        // everything after it the most.
        for (NodeId u = 0; u < current.num_nodes();) {
            const LabeledGraph candidate = remove_node_copy(current, u);
            if (holds(diverges, candidate, stats)) {
                current = candidate;
                progress = true;
                if (stats != nullptr) {
                    ++stats->nodes_removed;
                }
                // Do not advance: node u now names a different node.
            } else {
                ++u;
            }
        }

        for (NodeId u = 0; u < current.num_nodes(); ++u) {
            // Snapshot the neighbor list: `current` changes under us.
            const std::vector<NodeId> neighbors = current.neighbors(u);
            for (NodeId v : neighbors) {
                if (u >= v) {
                    continue;
                }
                const LabeledGraph candidate = remove_edge_copy(current, u, v);
                if (holds(diverges, candidate, stats)) {
                    current = candidate;
                    progress = true;
                    if (stats != nullptr) {
                        ++stats->edges_removed;
                    }
                }
            }
        }

        for (NodeId u = 0; u < current.num_nodes(); ++u) {
            if (current.label(u) == "1") {
                continue;
            }
            LabeledGraph candidate = current;
            candidate.set_label(u, "1");
            if (holds(diverges, candidate, stats)) {
                current = candidate;
                progress = true;
                if (stats != nullptr) {
                    ++stats->labels_simplified;
                }
            }
        }
    }
    return current;
}

} // namespace lph
