#include "automata/mso_words.hpp"

#include "core/check.hpp"
#include "logic/eval.hpp"
#include "structure/structure.hpp"

#include <map>
#include <set>

namespace lph {
namespace {

/// Assigns one alphabet track per quantified variable (track 0 is the base
/// bit of the word); checks that bound names are distinct and arities are 1.
void collect_tracks(const Formula& phi, std::map<std::string, std::size_t>& tracks) {
    const FormulaNode& node = *phi;
    switch (node.kind) {
    case FormulaKind::ExistsFO:
    case FormulaKind::ForallFO:
    case FormulaKind::ExistsConn:
    case FormulaKind::ForallConn:
        check(tracks.emplace(node.var, tracks.size() + 1).second,
              "compile_mso_to_dfa: variable name '" + node.var + "' bound twice");
        break;
    case FormulaKind::ExistsSO:
    case FormulaKind::ForallSO:
        check(node.arity == 1, "compile_mso_to_dfa: only monadic SO supported");
        check(tracks.emplace(node.rel_var, tracks.size() + 1).second,
              "compile_mso_to_dfa: variable name '" + node.rel_var + "' bound twice");
        break;
    case FormulaKind::Apply:
        check(node.arity == 1, "compile_mso_to_dfa: only monadic SO supported");
        break;
    default:
        break;
    }
    for (const auto& c : node.children) {
        collect_tracks(c, tracks);
    }
}

class Compiler {
public:
    explicit Compiler(std::map<std::string, std::size_t> tracks)
        : tracks_(std::move(tracks)),
          alphabet_(std::size_t{1} << (tracks_.size() + 1)) {
        check(tracks_.size() <= 12, "compile_mso_to_dfa: too many variables");
    }

    std::size_t alphabet() const { return alphabet_; }

    Dfa compile(const Formula& phi) {
        const FormulaNode& node = *phi;
        switch (node.kind) {
        case FormulaKind::Top:
            return constant(true);
        case FormulaKind::Bottom:
            return constant(false);
        case FormulaKind::Unary: {
            check(node.rel_index == 1, "compile_mso_to_dfa: words have one O");
            // Every x-marked position carries base bit 1.
            return marked_positions_satisfy(track_of(node.var),
                                            [](std::size_t sym) { return sym & 1; });
        }
        case FormulaKind::Binary: {
            check(node.rel_index == 1, "compile_mso_to_dfa: words have one ->");
            return successor(track_of(node.var), track_of(node.var2));
        }
        case FormulaKind::Equals:
            return tracks_agree(track_of(node.var), track_of(node.var2));
        case FormulaKind::Apply: {
            const std::size_t tx = track_of(node.args[0]);
            const std::size_t tX = track_of(node.rel_var);
            return marked_positions_satisfy(
                tx, [tX](std::size_t sym) { return (sym >> tX) & 1; });
        }
        case FormulaKind::Not:
            return compile(node.children[0]).complemented().minimized();
        case FormulaKind::Or:
            return Dfa::union_of(compile(node.children[0]), compile(node.children[1]))
                .minimized();
        case FormulaKind::And:
            return Dfa::intersection(compile(node.children[0]),
                                     compile(node.children[1]))
                .minimized();
        case FormulaKind::Implies:
            return Dfa::union_of(compile(node.children[0]).complemented(),
                                 compile(node.children[1]))
                .minimized();
        case FormulaKind::Iff: {
            const Dfa a = compile(node.children[0]);
            const Dfa b = compile(node.children[1]);
            return Dfa::union_of(Dfa::intersection(a, b),
                                 Dfa::intersection(a.complemented(),
                                                   b.complemented()))
                .minimized();
        }
        case FormulaKind::ExistsFO:
            return project(
                Dfa::intersection(compile(node.children[0]), singleton(track_of(node.var))),
                track_of(node.var));
        case FormulaKind::ForallFO: {
            // forall x. phi == !exists x. !phi
            const Dfa inner = compile(node.children[0]).complemented();
            return project(Dfa::intersection(inner, singleton(track_of(node.var))),
                           track_of(node.var))
                .complemented()
                .minimized();
        }
        case FormulaKind::ExistsConn:
        case FormulaKind::ForallConn: {
            // Desugar via the successor relation:
            //   exists x ~ y. phi == exists x. ((x->y | y->x) & phi)
            const Formula guard = fl::disj(fl::binary(1, node.var, node.var2),
                                           fl::binary(1, node.var2, node.var));
            if (node.kind == FormulaKind::ExistsConn) {
                const Dfa body = Dfa::intersection(compile(guard),
                                                   compile(node.children[0]));
                return project(
                    Dfa::intersection(body, singleton(track_of(node.var))),
                    track_of(node.var));
            }
            // forall x ~ y. phi == !exists x. (guard & !phi)
            const Dfa body = Dfa::intersection(
                compile(guard), compile(node.children[0]).complemented());
            return project(Dfa::intersection(body, singleton(track_of(node.var))),
                           track_of(node.var))
                .complemented()
                .minimized();
        }
        case FormulaKind::ExistsSO:
            return project(compile(node.children[0]), track_of(node.rel_var));
        case FormulaKind::ForallSO:
            return project(compile(node.children[0]).complemented(),
                           track_of(node.rel_var))
                .complemented()
                .minimized();
        }
        check(false, "compile_mso_to_dfa: unreachable");
        return constant(false);
    }

private:
    std::size_t track_of(const std::string& var) const {
        const auto it = tracks_.find(var);
        check(it != tracks_.end(), "compile_mso_to_dfa: unknown variable " + var);
        return it->second;
    }

    Dfa constant(bool value) const {
        Dfa dfa(1, alphabet_, 0);
        dfa.set_accepting(0, value);
        for (std::size_t s = 0; s < alphabet_; ++s) {
            dfa.set_transition(0, s, 0);
        }
        return dfa;
    }

    /// Every position marked on `track` satisfies pred(symbol).
    Dfa marked_positions_satisfy(
        std::size_t track, const std::function<bool(std::size_t)>& pred) const {
        Dfa dfa(2, alphabet_, 0);
        dfa.set_accepting(0, true);
        for (std::size_t s = 0; s < alphabet_; ++s) {
            const bool marked = (s >> track) & 1;
            dfa.set_transition(0, s, marked && !pred(s) ? 1 : 0);
            dfa.set_transition(1, s, 1);
        }
        return dfa;
    }

    /// Every position agrees on the two tracks.
    Dfa tracks_agree(std::size_t t1, std::size_t t2) const {
        Dfa dfa(2, alphabet_, 0);
        dfa.set_accepting(0, true);
        for (std::size_t s = 0; s < alphabet_; ++s) {
            const bool agree = ((s >> t1) & 1) == ((s >> t2) & 1);
            dfa.set_transition(0, s, agree ? 0 : 1);
            dfa.set_transition(1, s, 1);
        }
        return dfa;
    }

    /// x -> y: an x-mark is immediately followed by a y-mark, y-marks appear
    /// only there, and an x-mark at the last position is rejected.
    Dfa successor(std::size_t tx, std::size_t ty) const {
        // States: 0 = neutral (accepting), 1 = just saw x (expect y), 2 = dead.
        Dfa dfa(3, alphabet_, 0);
        dfa.set_accepting(0, true);
        for (std::size_t s = 0; s < alphabet_; ++s) {
            const bool x = (s >> tx) & 1;
            const bool y = (s >> ty) & 1;
            dfa.set_transition(0, s, y ? 2 : (x ? 1 : 0));
            dfa.set_transition(1, s, (y && !x) ? 0 : 2);
            dfa.set_transition(2, s, 2);
        }
        return dfa;
    }

    /// Exactly one mark on the track.
    Dfa singleton(std::size_t track) const {
        Dfa dfa(3, alphabet_, 0);
        dfa.set_accepting(1, true);
        for (std::size_t s = 0; s < alphabet_; ++s) {
            const bool marked = (s >> track) & 1;
            dfa.set_transition(0, s, marked ? 1 : 0);
            dfa.set_transition(1, s, marked ? 2 : 1);
            dfa.set_transition(2, s, 2);
        }
        return dfa;
    }

    /// Existential projection of a track: guess its bits nondeterministically.
    Dfa project(const Dfa& dfa, std::size_t track) const {
        dfa.validate();
        Nfa nfa(dfa.num_states(), alphabet_);
        nfa.set_start(dfa.start());
        for (std::size_t q = 0; q < dfa.num_states(); ++q) {
            nfa.set_accepting(q, dfa.is_accepting(q));
            for (std::size_t s = 0; s < alphabet_; ++s) {
                nfa.add_transition(q, s, dfa.transition(q, s));
                nfa.add_transition(q, s,
                                   dfa.transition(q, s ^ (std::size_t{1} << track)));
            }
        }
        return nfa.determinized().minimized();
    }

    std::map<std::string, std::size_t> tracks_;
    std::size_t alphabet_;
};

} // namespace

Dfa compile_mso_to_dfa(const Formula& sentence) {
    check(free_fo_variables(sentence).empty() && free_so_variables(sentence).empty(),
          "compile_mso_to_dfa: sentence must be closed");
    std::map<std::string, std::size_t> tracks;
    collect_tracks(sentence, tracks);
    Compiler compiler(std::move(tracks));
    return compiler.compile(sentence).minimized();
}

bool dfa_accepts_bits(const Dfa& dfa, const BitString& word) {
    check(is_bit_string(word), "dfa_accepts_bits: not a bit string");
    std::vector<std::size_t> symbols;
    symbols.reserve(word.size());
    for (char c : word) {
        symbols.push_back(c == '1' ? 1 : 0);
    }
    return dfa.accepts(symbols);
}

bool mso_holds_on_word(const Formula& sentence, const BitString& word) {
    check(!word.empty(), "mso_holds_on_word: word must be nonempty");
    Structure s(word.size(), 1, 1);
    for (std::size_t i = 0; i < word.size(); ++i) {
        if (word[i] == '1') {
            s.set_unary(0, i);
        }
        if (i + 1 < word.size()) {
            s.add_binary(0, i, i + 1);
        }
    }
    return satisfies(s, sentence);
}

std::size_t count_nerode_classes(const std::function<bool(const BitString&)>& lang,
                                 std::size_t prefix_len, std::size_t suffix_len) {
    std::vector<BitString> words{""};
    for (std::size_t len = 1; len <= std::max(prefix_len, suffix_len); ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t v = 0; v < count; ++v) {
            words.push_back(encode_unsigned_width(v, static_cast<int>(len)));
        }
    }
    std::set<std::vector<bool>> signatures;
    for (const auto& prefix : words) {
        if (prefix.size() > prefix_len) {
            continue;
        }
        std::vector<bool> signature;
        for (const auto& suffix : words) {
            if (suffix.size() > suffix_len) {
                continue;
            }
            signature.push_back(lang(prefix + suffix));
        }
        signatures.insert(std::move(signature));
    }
    return signatures.size();
}

} // namespace lph
