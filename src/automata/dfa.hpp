#pragma once

#include <cstddef>
#include <vector>

namespace lph {

/// A complete deterministic finite automaton over the alphabet
/// {0, ..., alphabet_size-1}.
class Dfa {
public:
    Dfa(std::size_t num_states, std::size_t alphabet_size, std::size_t start);

    std::size_t num_states() const { return accepting_.size(); }
    std::size_t alphabet_size() const { return alphabet_size_; }
    std::size_t start() const { return start_; }

    void set_transition(std::size_t state, std::size_t symbol, std::size_t target);
    std::size_t transition(std::size_t state, std::size_t symbol) const;
    void set_accepting(std::size_t state, bool accepting = true);
    bool is_accepting(std::size_t state) const;

    bool accepts(const std::vector<std::size_t>& word) const;

    /// Throws unless every transition has been set.
    void validate() const;

    Dfa complemented() const;
    static Dfa intersection(const Dfa& a, const Dfa& b);
    static Dfa union_of(const Dfa& a, const Dfa& b);

    /// Hopcroft-style minimization (partition refinement over reachable
    /// states).
    Dfa minimized() const;

    /// Is the accepted language empty?
    bool is_empty() const;

    /// Language equivalence via emptiness of the symmetric difference.
    static bool equivalent(const Dfa& a, const Dfa& b);

    /// A shortest accepted word, if any.
    std::vector<std::size_t> shortest_accepted() const;

private:
    std::size_t alphabet_size_;
    std::size_t start_;
    std::vector<std::vector<std::size_t>> delta_; // [state][symbol]
    std::vector<bool> accepting_;
};

/// A nondeterministic automaton (no epsilon moves) with subset construction.
class Nfa {
public:
    Nfa(std::size_t num_states, std::size_t alphabet_size);

    void add_transition(std::size_t state, std::size_t symbol, std::size_t target);
    void set_start(std::size_t state);
    void set_accepting(std::size_t state, bool accepting = true);

    std::size_t num_states() const { return accepting_.size(); }
    std::size_t alphabet_size() const { return alphabet_size_; }

    Dfa determinized() const;

    static Nfa from_dfa(const Dfa& dfa);

private:
    std::size_t alphabet_size_;
    std::vector<bool> start_;
    std::vector<std::vector<std::vector<std::size_t>>> delta_;
    std::vector<bool> accepting_;
};

} // namespace lph
