#pragma once

#include "automata/dfa.hpp"
#include "core/bitstring.hpp"
#include "logic/formula.hpp"

#include <functional>

namespace lph {

/// The Büchi–Elgot–Trakhtenbrot compiler (used by Section 9.3): translates a
/// monadic second-order sentence over word structures — signature (1,1),
/// O_1 = "bit is 1", ->_1 = position successor — into an equivalent DFA over
/// the binary alphabet.
///
/// Supported formula shapes: the full Table 1 grammar restricted to unary
/// second-order variables; bounded quantifiers are desugared via the
/// successor relation.  All quantifier-bound variable names must be distinct.
///
/// The returned DFA reads one symbol per position ('0'/'1' mapped to 0/1)
/// and accepts exactly the words whose structure satisfies the sentence.
Dfa compile_mso_to_dfa(const Formula& sentence);

/// Convenience: run a compiled DFA on a bit string.
bool dfa_accepts_bits(const Dfa& dfa, const BitString& word);

/// Evaluates the sentence directly on the word structure (reference
/// semantics for cross-checking the compiler).
bool mso_holds_on_word(const Formula& sentence, const BitString& word);

/// Counts the Myhill–Nerode classes of a language restricted to prefixes of
/// length <= prefix_len, distinguishing by suffixes of length <= suffix_len.
/// A regular language has boundedly many classes; MAJORITY (at least half
/// the bits are 1) does not — the empirical content of the Section 9.3
/// non-membership arguments.
std::size_t count_nerode_classes(const std::function<bool(const BitString&)>& lang,
                                 std::size_t prefix_len, std::size_t suffix_len);

} // namespace lph
