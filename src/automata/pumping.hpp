#pragma once

#include "automata/dfa.hpp"
#include "core/bitstring.hpp"

#include <functional>
#include <optional>

namespace lph {

/// The pumping lemma, made executable (used by the Section 9.3 arguments):
/// any word accepted by a DFA with |w| >= #states decomposes as w = xyz with
/// |xy| <= #states, y nonempty, and x y^i z accepted for every i.
struct PumpingDecomposition {
    std::vector<std::size_t> x;
    std::vector<std::size_t> y;
    std::vector<std::size_t> z;

    std::vector<std::size_t> pumped(std::size_t i) const;
};

/// Finds the decomposition via the first repeated state on w's run.
/// Requires dfa.accepts(w) and w.size() >= dfa.num_states().
PumpingDecomposition pump_decomposition(const Dfa& dfa,
                                        const std::vector<std::size_t>& word);

/// A refutation that `dfa` decides `lang`: either a direct disagreement on a
/// short word, or a pumped word where the DFA's verdict contradicts the
/// language's.
struct DfaRefutation {
    std::vector<std::size_t> witness;
    bool dfa_verdict = false;
    bool lang_verdict = false;
    bool via_pumping = false;
};

/// Searches words of length <= max_len (breadth-first over the alphabet) for
/// a disagreement between the DFA and the language oracle; on each accepted
/// long word it additionally tries pumped variants.  nullopt when no
/// refutation was found within the budget.
std::optional<DfaRefutation>
refute_dfa_for_language(const Dfa& dfa,
                        const std::function<bool(const std::vector<std::size_t>&)>& lang,
                        std::size_t max_len);

/// The Section 9.3-flavored demonstration: for ANY candidate DFA over {0,1},
/// MAJORITY (at least half the bits are 1) yields a refutation — built from
/// the Myhill–Nerode pair 1^i 0^j vs 1^j 0^j for colliding states i < j <=
/// #states.  Always succeeds.
DfaRefutation majority_nerode_refutation(const Dfa& dfa);

} // namespace lph
