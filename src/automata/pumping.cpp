#include "automata/pumping.hpp"

#include "core/check.hpp"

#include <map>

namespace lph {

std::vector<std::size_t> PumpingDecomposition::pumped(std::size_t i) const {
    std::vector<std::size_t> word = x;
    for (std::size_t rep = 0; rep < i; ++rep) {
        word.insert(word.end(), y.begin(), y.end());
    }
    word.insert(word.end(), z.begin(), z.end());
    return word;
}

PumpingDecomposition pump_decomposition(const Dfa& dfa,
                                        const std::vector<std::size_t>& word) {
    check(dfa.accepts(word), "pump_decomposition: word must be accepted");
    check(word.size() >= dfa.num_states(),
          "pump_decomposition: word shorter than the state count");
    // Track the first repeated state along the run.
    std::map<std::size_t, std::size_t> first_seen; // state -> position
    std::size_t state = dfa.start();
    first_seen.emplace(state, 0);
    for (std::size_t pos = 0; pos < word.size(); ++pos) {
        state = dfa.transition(state, word[pos]);
        const auto [it, inserted] = first_seen.emplace(state, pos + 1);
        if (!inserted) {
            PumpingDecomposition d;
            d.x.assign(word.begin(), word.begin() + static_cast<long>(it->second));
            d.y.assign(word.begin() + static_cast<long>(it->second),
                       word.begin() + static_cast<long>(pos) + 1);
            d.z.assign(word.begin() + static_cast<long>(pos) + 1, word.end());
            check(!d.y.empty(), "pump_decomposition: internal error");
            return d;
        }
    }
    check(false, "pump_decomposition: unreachable (pigeonhole)");
    return {};
}

std::optional<DfaRefutation>
refute_dfa_for_language(const Dfa& dfa,
                        const std::function<bool(const std::vector<std::size_t>&)>& lang,
                        std::size_t max_len) {
    std::vector<std::vector<std::size_t>> frontier{{}};
    for (std::size_t len = 0; len <= max_len; ++len) {
        std::vector<std::vector<std::size_t>> next;
        for (const auto& word : frontier) {
            const bool d = dfa.accepts(word);
            const bool l = lang(word);
            if (d != l) {
                return DfaRefutation{word, d, l, false};
            }
            // Pump accepted long words and compare verdicts on the variants.
            if (d && word.size() >= dfa.num_states()) {
                const auto decomposition = pump_decomposition(dfa, word);
                for (std::size_t i : {0u, 2u, 3u}) {
                    const auto pumped = decomposition.pumped(i);
                    const bool dp = dfa.accepts(pumped); // true by the lemma
                    const bool lp = lang(pumped);
                    if (dp != lp) {
                        return DfaRefutation{pumped, dp, lp, true};
                    }
                }
            }
            if (word.size() < max_len) {
                for (std::size_t s = 0; s < dfa.alphabet_size(); ++s) {
                    auto extended = word;
                    extended.push_back(s);
                    next.push_back(std::move(extended));
                }
            }
        }
        frontier = std::move(next);
        if (frontier.empty()) {
            break;
        }
    }
    return std::nullopt;
}

DfaRefutation majority_nerode_refutation(const Dfa& dfa) {
    check(dfa.alphabet_size() >= 2,
          "majority_nerode_refutation: need symbols 0 and 1");
    const std::size_t n = dfa.num_states();
    const auto majority = [](const std::vector<std::size_t>& w) {
        std::size_t ones = 0;
        for (std::size_t s : w) {
            ones += s == 1;
        }
        return 2 * ones >= w.size();
    };
    // States reached on 1^0, 1^1, ..., 1^n collide somewhere (pigeonhole).
    std::map<std::size_t, std::size_t> seen; // state -> i
    std::size_t state = dfa.start();
    std::size_t i = 0;
    std::size_t j = 0;
    seen.emplace(state, 0);
    for (std::size_t k = 1; k <= n; ++k) {
        state = dfa.transition(state, 1);
        const auto [it, inserted] = seen.emplace(state, k);
        if (!inserted) {
            i = it->second;
            j = k;
            break;
        }
    }
    check(j > i, "majority_nerode_refutation: internal error");
    // The DFA cannot distinguish 1^i from 1^j, so it gives the same verdict
    // to 1^i 0^j and 1^j 0^j — but only 1^j 0^j (exactly half ones) is in
    // MAJORITY, so one verdict is wrong.
    auto build = [](std::size_t ones, std::size_t zeros) {
        std::vector<std::size_t> w(ones, 1);
        w.insert(w.end(), zeros, 0);
        return w;
    };
    const auto w_in = build(j, j);
    const auto w_out = build(i, j);
    const bool verdict_in = dfa.accepts(w_in);
    const bool verdict_out = dfa.accepts(w_out);
    check(verdict_in == verdict_out,
          "majority_nerode_refutation: states must collide");
    // Exactly one of the two words is in MAJORITY, so whichever way the DFA
    // decides the shared state, it is wrong on one of them.
    if (verdict_in != majority(w_in)) {
        return DfaRefutation{w_in, verdict_in, majority(w_in), true};
    }
    return DfaRefutation{w_out, verdict_out, majority(w_out), true};
}

} // namespace lph
