#include "automata/dfa.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace lph {

namespace {
constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
} // namespace

Dfa::Dfa(std::size_t num_states, std::size_t alphabet_size, std::size_t start)
    : alphabet_size_(alphabet_size), start_(start),
      delta_(num_states, std::vector<std::size_t>(alphabet_size, kUnset)),
      accepting_(num_states, false) {
    check(num_states > 0, "Dfa: need at least one state");
    check(alphabet_size > 0, "Dfa: need a nonempty alphabet");
    check(start < num_states, "Dfa: start state out of range");
}

void Dfa::set_transition(std::size_t state, std::size_t symbol, std::size_t target) {
    check(state < num_states() && symbol < alphabet_size_ && target < num_states(),
          "Dfa::set_transition: out of range");
    delta_[state][symbol] = target;
}

std::size_t Dfa::transition(std::size_t state, std::size_t symbol) const {
    check(state < num_states() && symbol < alphabet_size_,
          "Dfa::transition: out of range");
    const std::size_t target = delta_[state][symbol];
    check(target != kUnset, "Dfa::transition: transition not set");
    return target;
}

void Dfa::set_accepting(std::size_t state, bool accepting) {
    check(state < num_states(), "Dfa::set_accepting: out of range");
    accepting_[state] = accepting;
}

bool Dfa::is_accepting(std::size_t state) const {
    check(state < num_states(), "Dfa::is_accepting: out of range");
    return accepting_[state];
}

bool Dfa::accepts(const std::vector<std::size_t>& word) const {
    std::size_t state = start_;
    for (std::size_t symbol : word) {
        state = transition(state, symbol);
    }
    return accepting_[state];
}

void Dfa::validate() const {
    for (const auto& row : delta_) {
        for (std::size_t target : row) {
            check(target != kUnset, "Dfa::validate: incomplete transition table");
        }
    }
}

Dfa Dfa::complemented() const {
    validate();
    Dfa result = *this;
    for (std::size_t q = 0; q < num_states(); ++q) {
        result.accepting_[q] = !accepting_[q];
    }
    return result;
}

namespace {

Dfa product(const Dfa& a, const Dfa& b, bool conjunction) {
    check(a.alphabet_size() == b.alphabet_size(), "Dfa product: alphabet mismatch");
    a.validate();
    b.validate();
    const std::size_t nb = b.num_states();
    Dfa result(a.num_states() * nb, a.alphabet_size(), a.start() * nb + b.start());
    for (std::size_t qa = 0; qa < a.num_states(); ++qa) {
        for (std::size_t qb = 0; qb < nb; ++qb) {
            const std::size_t q = qa * nb + qb;
            const bool acc = conjunction
                                 ? a.is_accepting(qa) && b.is_accepting(qb)
                                 : a.is_accepting(qa) || b.is_accepting(qb);
            result.set_accepting(q, acc);
            for (std::size_t s = 0; s < a.alphabet_size(); ++s) {
                result.set_transition(q, s,
                                      a.transition(qa, s) * nb + b.transition(qb, s));
            }
        }
    }
    return result;
}

} // namespace

Dfa Dfa::intersection(const Dfa& a, const Dfa& b) { return product(a, b, true); }
Dfa Dfa::union_of(const Dfa& a, const Dfa& b) { return product(a, b, false); }

Dfa Dfa::minimized() const {
    validate();
    // Restrict to reachable states.
    std::vector<std::size_t> reachable;
    std::vector<std::size_t> index(num_states(), kUnset);
    std::deque<std::size_t> queue{start_};
    index[start_] = 0;
    reachable.push_back(start_);
    while (!queue.empty()) {
        const std::size_t q = queue.front();
        queue.pop_front();
        for (std::size_t s = 0; s < alphabet_size_; ++s) {
            const std::size_t t = delta_[q][s];
            if (index[t] == kUnset) {
                index[t] = reachable.size();
                reachable.push_back(t);
                queue.push_back(t);
            }
        }
    }
    const std::size_t n = reachable.size();

    // Partition refinement (Moore's algorithm).
    std::vector<std::size_t> block(n);
    for (std::size_t i = 0; i < n; ++i) {
        block[i] = accepting_[reachable[i]] ? 1 : 0;
    }
    std::size_t num_blocks = 2;
    while (true) {
        std::map<std::vector<std::size_t>, std::size_t> signature_to_block;
        std::vector<std::size_t> next_block(n);
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<std::size_t> signature{block[i]};
            for (std::size_t s = 0; s < alphabet_size_; ++s) {
                signature.push_back(block[index[delta_[reachable[i]][s]]]);
            }
            const auto [it, inserted] =
                signature_to_block.emplace(signature, signature_to_block.size());
            next_block[i] = it->second;
            (void)inserted;
        }
        const std::size_t new_count = signature_to_block.size();
        block = std::move(next_block);
        if (new_count == num_blocks) {
            break;
        }
        num_blocks = new_count;
    }

    Dfa result(num_blocks, alphabet_size_, block[0]);
    for (std::size_t i = 0; i < n; ++i) {
        result.set_accepting(block[i], accepting_[reachable[i]]);
        for (std::size_t s = 0; s < alphabet_size_; ++s) {
            result.set_transition(block[i], s, block[index[delta_[reachable[i]][s]]]);
        }
    }
    return result;
}

bool Dfa::is_empty() const { return shortest_accepted().empty() && !accepting_[start_]; }

std::vector<std::size_t> Dfa::shortest_accepted() const {
    validate();
    if (accepting_[start_]) {
        return {};
    }
    std::vector<std::pair<std::size_t, std::size_t>> parent(
        num_states(), {kUnset, kUnset}); // (previous state, symbol)
    std::vector<bool> visited(num_states(), false);
    std::deque<std::size_t> queue{start_};
    visited[start_] = true;
    while (!queue.empty()) {
        const std::size_t q = queue.front();
        queue.pop_front();
        for (std::size_t s = 0; s < alphabet_size_; ++s) {
            const std::size_t t = delta_[q][s];
            if (visited[t]) {
                continue;
            }
            visited[t] = true;
            parent[t] = {q, s};
            if (accepting_[t]) {
                std::vector<std::size_t> word;
                std::size_t current = t;
                while (parent[current].first != kUnset) {
                    word.push_back(parent[current].second);
                    current = parent[current].first;
                }
                std::reverse(word.begin(), word.end());
                return word;
            }
            queue.push_back(t);
        }
    }
    return {};
}

bool Dfa::equivalent(const Dfa& a, const Dfa& b) {
    const Dfa only_a = intersection(a, b.complemented());
    const Dfa only_b = intersection(b, a.complemented());
    return only_a.is_empty() && only_b.is_empty();
}

Nfa::Nfa(std::size_t num_states, std::size_t alphabet_size)
    : alphabet_size_(alphabet_size), start_(num_states, false),
      delta_(num_states,
             std::vector<std::vector<std::size_t>>(alphabet_size)),
      accepting_(num_states, false) {
    check(num_states > 0, "Nfa: need at least one state");
}

void Nfa::add_transition(std::size_t state, std::size_t symbol, std::size_t target) {
    check(state < num_states() && symbol < alphabet_size_ && target < num_states(),
          "Nfa::add_transition: out of range");
    delta_[state][symbol].push_back(target);
}

void Nfa::set_start(std::size_t state) {
    check(state < num_states(), "Nfa::set_start: out of range");
    start_[state] = true;
}

void Nfa::set_accepting(std::size_t state, bool accepting) {
    check(state < num_states(), "Nfa::set_accepting: out of range");
    accepting_[state] = accepting;
}

Dfa Nfa::determinized() const {
    using StateSet = std::set<std::size_t>;
    StateSet initial;
    for (std::size_t q = 0; q < num_states(); ++q) {
        if (start_[q]) {
            initial.insert(q);
        }
    }
    std::map<StateSet, std::size_t> index;
    std::vector<StateSet> sets{initial};
    index.emplace(initial, 0);
    std::vector<std::vector<std::size_t>> delta;
    std::vector<bool> accepting;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        const StateSet current = sets[i];
        delta.emplace_back(alphabet_size_, 0);
        bool acc = false;
        for (std::size_t q : current) {
            acc = acc || accepting_[q];
        }
        accepting.push_back(acc);
        for (std::size_t s = 0; s < alphabet_size_; ++s) {
            StateSet next;
            for (std::size_t q : current) {
                next.insert(delta_[q][s].begin(), delta_[q][s].end());
            }
            const auto [it, inserted] = index.emplace(next, sets.size());
            if (inserted) {
                sets.push_back(next);
            }
            delta[i][s] = it->second;
        }
    }
    Dfa result(sets.size(), alphabet_size_, 0);
    for (std::size_t q = 0; q < sets.size(); ++q) {
        result.set_accepting(q, accepting[q]);
        for (std::size_t s = 0; s < alphabet_size_; ++s) {
            result.set_transition(q, s, delta[q][s]);
        }
    }
    return result;
}

Nfa Nfa::from_dfa(const Dfa& dfa) {
    dfa.validate();
    Nfa nfa(dfa.num_states(), dfa.alphabet_size());
    nfa.set_start(dfa.start());
    for (std::size_t q = 0; q < dfa.num_states(); ++q) {
        nfa.set_accepting(q, dfa.is_accepting(q));
        for (std::size_t s = 0; s < dfa.alphabet_size(); ++s) {
            nfa.add_transition(q, s, dfa.transition(q, s));
        }
    }
    return nfa;
}

} // namespace lph
