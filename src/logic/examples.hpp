#pragma once

#include "logic/formula.hpp"

namespace lph {

/// The example formulas of Section 5.2, built exactly as in the paper.
/// All are evaluated on structural representations of labeled graphs
/// (signature (1,2); see GraphStructure).
namespace paper_formulas {

/// IsNode(x) = !exists y ~ x. (y ->_2 x): x is a node element, not a bit.
Formula is_node(const std::string& x);

/// IsBit0 / IsBit1: x is a labeling bit of value 0 / 1.
Formula is_bit0(const std::string& x);
Formula is_bit1(const std::string& x);

/// exists-over-nodes: exists x. (IsNode(x) & phi) — and the duals/bounded
/// forms used throughout Section 5.2.
Formula exists_node(const std::string& x, Formula phi);
Formula forall_node(const std::string& x, Formula phi);
Formula exists_node_conn(const std::string& x, const std::string& y, Formula phi);
Formula forall_node_conn(const std::string& x, const std::string& y, Formula phi);
Formula exists_node_within(const std::string& x, int r, const std::string& y,
                           Formula phi);
Formula forall_node_within(const std::string& x, int r, const std::string& y,
                           Formula phi);

/// IsSelected(x): the node x is labeled with the string "1" (Example 2).
Formula is_selected(const std::string& x);

/// ALL-SELECTED as the LFO-sentence forall-node x. IsSelected(x) (Example 2).
Formula all_selected();

/// WellColored(x) over unary variables C0, C1, C2 (Example 3).
Formula well_colored(const std::string& x);

/// 3-COLORABLE as the Sigma_1^LFO-sentence of Example 3.
Formula three_colorable();

/// 2-COLORABLE analogously (used in Proposition 21).
Formula two_colorable();

/// k-COLORABLE for arbitrary k >= 1 over variables C0..C(k-1).
Formula k_colorable(int k);

/// The PointsTo[theta] schema of Example 4 over relation variables P (binary),
/// X and Y (unary): x's parent pointer points toward a node satisfying theta,
/// assuming Eve wins the charge game.
Formula points_to(Formula theta_of_x, const std::string& x);

/// NOT-ALL-SELECTED as the Sigma_3^LFO-sentence ExistsUnselectedNode
/// (Example 4).
Formula exists_unselected_node();

/// NON-3-COLORABLE as the Pi_4^LFO-sentence of Example 5.
Formula non_three_colorable();

/// DegreeTwo(x) over the binary variable H (Example 6).
Formula degree_two(const std::string& x);

/// InAgreementOn[R](x) = forall-node y ~ x. (R(x) <-> R(y)) (Example 6).
Formula in_agreement_on(const std::string& rel, const std::string& x);

/// HAMILTONIAN as the Sigma_5^LFO-sentence of Example 6.
Formula hamiltonian();

/// NON-HAMILTONIAN as the Pi_4^LFO-sentence of Example 7.
Formula non_hamiltonian();

} // namespace paper_formulas

} // namespace lph
