#include "logic/eval.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {

void RelationValue::insert(ElementTuple t) {
    check(t.size() == arity_, "RelationValue::insert: arity mismatch");
    tuples_.insert(std::move(t));
}

namespace {

Element lookup(const Assignment& sigma, const std::string& var) {
    const auto it = sigma.fo.find(var);
    check(it != sigma.fo.end(), "evaluate: unassigned first-order variable " + var);
    return it->second;
}

class Evaluator {
public:
    Evaluator(const Structure& s, const SOPolicy& policy) : s_(s), policy_(policy) {}

    bool eval(const Formula& phi, Assignment& sigma) {
        const FormulaNode& node = *phi;
        switch (node.kind) {
        case FormulaKind::Top:
            return true;
        case FormulaKind::Bottom:
            return false;
        case FormulaKind::Unary:
            check(node.rel_index <= s_.num_unary(),
                  "evaluate: unary relation index out of signature");
            return s_.unary_holds(node.rel_index - 1, lookup(sigma, node.var));
        case FormulaKind::Binary:
            check(node.rel_index <= s_.num_binary(),
                  "evaluate: binary relation index out of signature");
            return s_.binary_holds(node.rel_index - 1, lookup(sigma, node.var),
                                   lookup(sigma, node.var2));
        case FormulaKind::Equals:
            return lookup(sigma, node.var) == lookup(sigma, node.var2);
        case FormulaKind::Apply: {
            const auto it = sigma.so.find(node.rel_var);
            check(it != sigma.so.end(),
                  "evaluate: unassigned second-order variable " + node.rel_var);
            check(it->second.arity() == node.arity,
                  "evaluate: arity mismatch for " + node.rel_var);
            ElementTuple t;
            t.reserve(node.args.size());
            for (const auto& a : node.args) {
                t.push_back(lookup(sigma, a));
            }
            return it->second.contains(t);
        }
        case FormulaKind::Not:
            return !eval(node.children[0], sigma);
        case FormulaKind::Or:
            return eval(node.children[0], sigma) || eval(node.children[1], sigma);
        case FormulaKind::And:
            return eval(node.children[0], sigma) && eval(node.children[1], sigma);
        case FormulaKind::Implies:
            return !eval(node.children[0], sigma) || eval(node.children[1], sigma);
        case FormulaKind::Iff:
            return eval(node.children[0], sigma) == eval(node.children[1], sigma);
        case FormulaKind::ExistsFO:
        case FormulaKind::ForallFO: {
            const bool existential = node.kind == FormulaKind::ExistsFO;
            for (Element a = 0; a < s_.domain_size(); ++a) {
                if (eval_with(node.children[0], sigma, node.var, a) == existential) {
                    return existential;
                }
            }
            return !existential;
        }
        case FormulaKind::ExistsConn:
        case FormulaKind::ForallConn: {
            const bool existential = node.kind == FormulaKind::ExistsConn;
            const Element anchor = lookup(sigma, node.var2);
            for (Element a : s_.connected_to(anchor)) {
                if (eval_with(node.children[0], sigma, node.var, a) == existential) {
                    return existential;
                }
            }
            return !existential;
        }
        case FormulaKind::ExistsSO:
        case FormulaKind::ForallSO:
            return eval_so(node, sigma);
        }
        check(false, "evaluate: unreachable");
        return false;
    }

private:
    bool eval_with(const Formula& phi, Assignment& sigma, const std::string& var,
                   Element a) {
        const auto it = sigma.fo.find(var);
        if (it == sigma.fo.end()) {
            sigma.fo.emplace(var, a);
            const bool result = eval(phi, sigma);
            sigma.fo.erase(var);
            return result;
        }
        const Element saved = it->second;
        it->second = a;
        const bool result = eval(phi, sigma);
        sigma.fo[var] = saved;
        return result;
    }

    bool eval_so(const FormulaNode& node, Assignment& sigma) {
        const bool existential = node.kind == FormulaKind::ExistsSO;
        const auto universe = so_tuple_universe(s_, node.arity, policy_);
        check(universe.size() <= policy_.max_universe_size,
              "evaluate: second-order universe too large (" +
                  std::to_string(universe.size()) + " tuples for " + node.rel_var +
                  "); shrink the instance or use SOPolicy::LocalTuples");
        const std::uint64_t count = std::uint64_t{1} << universe.size();

        const auto saved = sigma.so.find(node.rel_var);
        const bool had = saved != sigma.so.end();
        const RelationValue saved_value = had ? saved->second : RelationValue(node.arity);
        if (had) {
            sigma.so.erase(node.rel_var);
        }

        bool result = !existential;
        for (std::uint64_t mask = 0; mask < count; ++mask) {
            RelationValue value(node.arity);
            for (std::size_t i = 0; i < universe.size(); ++i) {
                if ((mask >> i) & 1) {
                    value.insert(universe[i]);
                }
            }
            sigma.so.insert_or_assign(node.rel_var, std::move(value));
            const bool inner = eval(node.children[0], sigma);
            sigma.so.erase(node.rel_var);
            if (inner == existential) {
                result = existential;
                break;
            }
        }
        if (had) {
            sigma.so.insert_or_assign(node.rel_var, saved_value);
        }
        return result;
    }

    const Structure& s_;
    const SOPolicy& policy_;
};

} // namespace

std::vector<ElementTuple> so_tuple_universe(const Structure& s, std::size_t arity,
                                            const SOPolicy& policy) {
    std::vector<ElementTuple> universe;
    if (arity == 1) {
        for (Element a = 0; a < s.domain_size(); ++a) {
            universe.push_back({a});
        }
        return universe;
    }
    if (policy.universe == SOPolicy::Universe::AllTuples) {
        ElementTuple t(arity, 0);
        while (true) {
            universe.push_back(t);
            std::size_t pos = arity;
            while (pos > 0) {
                --pos;
                if (++t[pos] < s.domain_size()) {
                    break;
                }
                t[pos] = 0;
                if (pos == 0) {
                    return universe;
                }
            }
        }
    }
    // LocalTuples: every element lies within locality_radius of the first.
    for (Element a = 0; a < s.domain_size(); ++a) {
        const auto nearby = s.ball(a, policy.locality_radius);
        ElementTuple t(arity, a);
        std::vector<std::size_t> idx(arity - 1, 0);
        while (true) {
            for (std::size_t i = 0; i + 1 < arity; ++i) {
                t[i + 1] = nearby[idx[i]];
            }
            universe.push_back(t);
            std::size_t pos = arity - 1;
            while (pos > 0) {
                --pos;
                if (++idx[pos] < nearby.size()) {
                    break;
                }
                idx[pos] = 0;
                if (pos == 0) {
                    goto next_first;
                }
            }
        }
    next_first:;
    }
    return universe;
}

bool evaluate(const Structure& s, const Formula& phi, const Assignment& sigma,
              const SOPolicy& policy) {
    Assignment working = sigma;
    Evaluator evaluator(s, policy);
    return evaluator.eval(phi, working);
}

bool satisfies(const Structure& s, const Formula& sentence, const SOPolicy& policy) {
    check(free_fo_variables(sentence).empty(),
          "satisfies: sentence has free first-order variables");
    check(free_so_variables(sentence).empty(),
          "satisfies: sentence has free second-order variables");
    return evaluate(s, sentence, Assignment{}, policy);
}

} // namespace lph
