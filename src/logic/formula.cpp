#include "logic/formula.hpp"

#include "core/check.hpp"

#include <atomic>
#include <sstream>

namespace lph {
namespace {

Formula make(FormulaNode node) {
    return std::make_shared<const FormulaNode>(std::move(node));
}

/// Fresh-variable source for shorthand expansion and capture avoidance.
std::string fresh_variable() {
    static std::atomic<std::uint64_t> counter{0};
    return "$fresh" + std::to_string(counter.fetch_add(1));
}

} // namespace

namespace fl {

Formula top() {
    FormulaNode node;
    node.kind = FormulaKind::Top;
    return make(std::move(node));
}

Formula bottom() {
    FormulaNode node;
    node.kind = FormulaKind::Bottom;
    return make(std::move(node));
}

Formula unary(std::size_t i, const std::string& x) {
    check(i >= 1, "fl::unary: relation indices are 1-based");
    FormulaNode node;
    node.kind = FormulaKind::Unary;
    node.rel_index = i;
    node.var = x;
    return make(std::move(node));
}

Formula binary(std::size_t i, const std::string& x, const std::string& y) {
    check(i >= 1, "fl::binary: relation indices are 1-based");
    FormulaNode node;
    node.kind = FormulaKind::Binary;
    node.rel_index = i;
    node.var = x;
    node.var2 = y;
    return make(std::move(node));
}

Formula equals(const std::string& x, const std::string& y) {
    FormulaNode node;
    node.kind = FormulaKind::Equals;
    node.var = x;
    node.var2 = y;
    return make(std::move(node));
}

Formula apply(const std::string& rel, std::vector<std::string> args) {
    check(!args.empty(), "fl::apply: relations have positive arity");
    FormulaNode node;
    node.kind = FormulaKind::Apply;
    node.rel_var = rel;
    node.arity = args.size();
    node.args = std::move(args);
    return make(std::move(node));
}

Formula negate(Formula phi) {
    FormulaNode node;
    node.kind = FormulaKind::Not;
    node.children = {std::move(phi)};
    return make(std::move(node));
}

namespace {
Formula connective(FormulaKind kind, Formula a, Formula b) {
    FormulaNode node;
    node.kind = kind;
    node.children = {std::move(a), std::move(b)};
    return make(std::move(node));
}
} // namespace

Formula disj(Formula a, Formula b) { return connective(FormulaKind::Or, a, b); }
Formula conj(Formula a, Formula b) { return connective(FormulaKind::And, a, b); }
Formula implies(Formula a, Formula b) { return connective(FormulaKind::Implies, a, b); }
Formula iff(Formula a, Formula b) { return connective(FormulaKind::Iff, a, b); }

Formula disj_all(std::vector<Formula> parts) {
    if (parts.empty()) {
        return bottom();
    }
    Formula result = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) {
        result = disj(result, parts[i]);
    }
    return result;
}

Formula conj_all(std::vector<Formula> parts) {
    if (parts.empty()) {
        return top();
    }
    Formula result = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) {
        result = conj(result, parts[i]);
    }
    return result;
}

namespace {
Formula quantifier(FormulaKind kind, const std::string& x, Formula phi) {
    FormulaNode node;
    node.kind = kind;
    node.var = x;
    node.children = {std::move(phi)};
    return make(std::move(node));
}
} // namespace

Formula exists(const std::string& x, Formula phi) {
    return quantifier(FormulaKind::ExistsFO, x, std::move(phi));
}

Formula forall(const std::string& x, Formula phi) {
    return quantifier(FormulaKind::ForallFO, x, std::move(phi));
}

Formula exists_conn(const std::string& x, const std::string& y, Formula phi) {
    check(x != y, "fl::exists_conn: bound and anchor variables must differ");
    FormulaNode node;
    node.kind = FormulaKind::ExistsConn;
    node.var = x;
    node.var2 = y;
    node.children = {std::move(phi)};
    return make(std::move(node));
}

Formula forall_conn(const std::string& x, const std::string& y, Formula phi) {
    check(x != y, "fl::forall_conn: bound and anchor variables must differ");
    FormulaNode node;
    node.kind = FormulaKind::ForallConn;
    node.var = x;
    node.var2 = y;
    node.children = {std::move(phi)};
    return make(std::move(node));
}

Formula exists_so(const std::string& rel, std::size_t arity, Formula phi) {
    check(arity >= 1, "fl::exists_so: arity must be positive");
    FormulaNode node;
    node.kind = FormulaKind::ExistsSO;
    node.rel_var = rel;
    node.arity = arity;
    node.children = {std::move(phi)};
    return make(std::move(node));
}

Formula forall_so(const std::string& rel, std::size_t arity, Formula phi) {
    check(arity >= 1, "fl::forall_so: arity must be positive");
    FormulaNode node;
    node.kind = FormulaKind::ForallSO;
    node.rel_var = rel;
    node.arity = arity;
    node.children = {std::move(phi)};
    return make(std::move(node));
}

Formula exists_within(const std::string& x, int r, const std::string& y,
                      Formula phi) {
    check(r >= 0, "fl::exists_within: negative radius");
    // Paper, Section 5.1:
    //   exists x ~(<=0)   y. phi  ==  phi[x -> y]
    //   exists x ~(<=r+1) y. phi  ==
    //     exists x ~(<=r) y. (phi  |  exists x' ~ x. phi[x -> x'])
    if (r == 0) {
        return substitute_fo(phi, x, y);
    }
    const std::string xp = fresh_variable();
    const Formula step = fl::disj(phi, fl::exists_conn(xp, x, substitute_fo(phi, x, xp)));
    return exists_within(x, r - 1, y, step);
}

Formula forall_within(const std::string& x, int r, const std::string& y,
                      Formula phi) {
    check(r >= 0, "fl::forall_within: negative radius");
    if (r == 0) {
        return substitute_fo(phi, x, y);
    }
    const std::string xp = fresh_variable();
    const Formula step =
        fl::conj(phi, fl::forall_conn(xp, x, substitute_fo(phi, x, xp)));
    return forall_within(x, r - 1, y, step);
}

} // namespace fl

namespace {

void collect_free_fo(const Formula& phi, std::set<std::string>& bound,
                     std::set<std::string>& free) {
    const FormulaNode& node = *phi;
    switch (node.kind) {
    case FormulaKind::Top:
    case FormulaKind::Bottom:
        return;
    case FormulaKind::Unary:
        if (bound.count(node.var) == 0) free.insert(node.var);
        return;
    case FormulaKind::Binary:
    case FormulaKind::Equals:
        if (bound.count(node.var) == 0) free.insert(node.var);
        if (bound.count(node.var2) == 0) free.insert(node.var2);
        return;
    case FormulaKind::Apply:
        for (const auto& a : node.args) {
            if (bound.count(a) == 0) free.insert(a);
        }
        return;
    case FormulaKind::Not:
    case FormulaKind::Or:
    case FormulaKind::And:
    case FormulaKind::Implies:
    case FormulaKind::Iff:
    case FormulaKind::ExistsSO:
    case FormulaKind::ForallSO:
        for (const auto& c : node.children) {
            collect_free_fo(c, bound, free);
        }
        return;
    case FormulaKind::ExistsFO:
    case FormulaKind::ForallFO: {
        const bool was_bound = bound.count(node.var) > 0;
        bound.insert(node.var);
        collect_free_fo(node.children[0], bound, free);
        if (!was_bound) bound.erase(node.var);
        return;
    }
    case FormulaKind::ExistsConn:
    case FormulaKind::ForallConn: {
        // The anchor y is free in "exists x ~ y. phi" (Table 1, line 8).
        if (bound.count(node.var2) == 0) free.insert(node.var2);
        const bool was_bound = bound.count(node.var) > 0;
        bound.insert(node.var);
        collect_free_fo(node.children[0], bound, free);
        if (!was_bound) bound.erase(node.var);
        return;
    }
    }
}

void collect_free_so(const Formula& phi, std::set<std::string>& bound,
                     std::set<std::string>& free) {
    const FormulaNode& node = *phi;
    if (node.kind == FormulaKind::Apply) {
        if (bound.count(node.rel_var) == 0) free.insert(node.rel_var);
        return;
    }
    if (node.kind == FormulaKind::ExistsSO || node.kind == FormulaKind::ForallSO) {
        const bool was_bound = bound.count(node.rel_var) > 0;
        bound.insert(node.rel_var);
        collect_free_so(node.children[0], bound, free);
        if (!was_bound) bound.erase(node.rel_var);
        return;
    }
    for (const auto& c : node.children) {
        collect_free_so(c, bound, free);
    }
}

} // namespace

std::set<std::string> free_fo_variables(const Formula& phi) {
    std::set<std::string> bound;
    std::set<std::string> free;
    collect_free_fo(phi, bound, free);
    return free;
}

std::set<std::string> free_so_variables(const Formula& phi) {
    std::set<std::string> bound;
    std::set<std::string> free;
    collect_free_so(phi, bound, free);
    return free;
}

Formula substitute_fo(const Formula& phi, const std::string& from,
                      const std::string& to) {
    const FormulaNode& node = *phi;
    auto subst_var = [&](const std::string& v) { return v == from ? to : v; };
    switch (node.kind) {
    case FormulaKind::Top:
    case FormulaKind::Bottom:
        return phi;
    case FormulaKind::Unary:
        return fl::unary(node.rel_index, subst_var(node.var));
    case FormulaKind::Binary:
        return fl::binary(node.rel_index, subst_var(node.var), subst_var(node.var2));
    case FormulaKind::Equals:
        return fl::equals(subst_var(node.var), subst_var(node.var2));
    case FormulaKind::Apply: {
        std::vector<std::string> args;
        args.reserve(node.args.size());
        for (const auto& a : node.args) {
            args.push_back(subst_var(a));
        }
        return fl::apply(node.rel_var, std::move(args));
    }
    case FormulaKind::Not:
        return fl::negate(substitute_fo(node.children[0], from, to));
    case FormulaKind::Or:
        return fl::disj(substitute_fo(node.children[0], from, to),
                        substitute_fo(node.children[1], from, to));
    case FormulaKind::And:
        return fl::conj(substitute_fo(node.children[0], from, to),
                        substitute_fo(node.children[1], from, to));
    case FormulaKind::Implies:
        return fl::implies(substitute_fo(node.children[0], from, to),
                           substitute_fo(node.children[1], from, to));
    case FormulaKind::Iff:
        return fl::iff(substitute_fo(node.children[0], from, to),
                       substitute_fo(node.children[1], from, to));
    case FormulaKind::ExistsSO:
        return fl::exists_so(node.rel_var, node.arity,
                             substitute_fo(node.children[0], from, to));
    case FormulaKind::ForallSO:
        return fl::forall_so(node.rel_var, node.arity,
                             substitute_fo(node.children[0], from, to));
    case FormulaKind::ExistsFO:
    case FormulaKind::ForallFO:
    case FormulaKind::ExistsConn:
    case FormulaKind::ForallConn: {
        std::string bound_var = node.var;
        Formula body = node.children[0];
        if (bound_var == from) {
            // Bound occurrence shadows the substitution inside the body.
            body = node.children[0];
        } else {
            if (bound_var == to) {
                // Avoid capture: rename the bound variable first.
                const std::string renamed = fresh_variable();
                body = substitute_fo(body, bound_var, renamed);
                bound_var = renamed;
            }
            body = substitute_fo(body, from, to);
        }
        switch (node.kind) {
        case FormulaKind::ExistsFO:
            return fl::exists(bound_var, body);
        case FormulaKind::ForallFO:
            return fl::forall(bound_var, body);
        case FormulaKind::ExistsConn:
            return fl::exists_conn(bound_var, subst_var(node.var2), body);
        default:
            return fl::forall_conn(bound_var, subst_var(node.var2), body);
        }
    }
    }
    check(false, "substitute_fo: unreachable");
    return phi;
}

namespace {

void print(const Formula& phi, std::ostringstream& out) {
    const FormulaNode& node = *phi;
    switch (node.kind) {
    case FormulaKind::Top:
        out << "T";
        return;
    case FormulaKind::Bottom:
        out << "F";
        return;
    case FormulaKind::Unary:
        out << "O" << node.rel_index << "(" << node.var << ")";
        return;
    case FormulaKind::Binary:
        out << node.var << " ->" << node.rel_index << " " << node.var2;
        return;
    case FormulaKind::Equals:
        out << node.var << " = " << node.var2;
        return;
    case FormulaKind::Apply: {
        out << node.rel_var << "(";
        for (std::size_t i = 0; i < node.args.size(); ++i) {
            if (i > 0) out << ",";
            out << node.args[i];
        }
        out << ")";
        return;
    }
    case FormulaKind::Not:
        out << "!(";
        print(node.children[0], out);
        out << ")";
        return;
    case FormulaKind::Or:
    case FormulaKind::And:
    case FormulaKind::Implies:
    case FormulaKind::Iff: {
        const char* op = node.kind == FormulaKind::Or        ? " | "
                         : node.kind == FormulaKind::And     ? " & "
                         : node.kind == FormulaKind::Implies ? " -> "
                                                             : " <-> ";
        out << "(";
        print(node.children[0], out);
        out << op;
        print(node.children[1], out);
        out << ")";
        return;
    }
    case FormulaKind::ExistsFO:
        out << "exists " << node.var << ". ";
        print(node.children[0], out);
        return;
    case FormulaKind::ForallFO:
        out << "forall " << node.var << ". ";
        print(node.children[0], out);
        return;
    case FormulaKind::ExistsConn:
        out << "exists " << node.var << "~" << node.var2 << ". ";
        print(node.children[0], out);
        return;
    case FormulaKind::ForallConn:
        out << "forall " << node.var << "~" << node.var2 << ". ";
        print(node.children[0], out);
        return;
    case FormulaKind::ExistsSO:
        out << "EXISTS " << node.rel_var << "/" << node.arity << ". ";
        print(node.children[0], out);
        return;
    case FormulaKind::ForallSO:
        out << "FORALL " << node.rel_var << "/" << node.arity << ". ";
        print(node.children[0], out);
        return;
    }
}

} // namespace

std::string to_string(const Formula& phi) {
    std::ostringstream out;
    print(phi, out);
    return out.str();
}

std::size_t formula_size(const Formula& phi) {
    std::size_t total = 1;
    for (const auto& c : phi->children) {
        total += formula_size(c);
    }
    return total;
}

} // namespace lph
