#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace lph {

/// Kinds of formula nodes (Table 1 plus the usual derived connectives, which
/// are kept as primitive nodes for readability of printed formulas).
enum class FormulaKind {
    Top,          ///< truth constant
    Bottom,       ///< falsity constant
    Unary,        ///< O_i x
    Binary,       ///< x ->_i y
    Equals,       ///< x = y
    Apply,        ///< R(x_1, ..., x_k)
    Not,          ///< !phi
    Or,           ///< phi_1 | phi_2
    And,          ///< phi_1 & phi_2
    Implies,      ///< phi_1 -> phi_2
    Iff,          ///< phi_1 <-> phi_2
    ExistsFO,     ///< exists x. phi            (unbounded, FO only)
    ForallFO,     ///< forall x. phi            (unbounded, FO only)
    ExistsConn,   ///< exists x ~ y. phi        (bounded, line 8 of Table 1)
    ForallConn,   ///< forall x ~ y. phi        (bounded, dual)
    ExistsSO,     ///< exists R. phi            (second order)
    ForallSO,     ///< forall R. phi            (second order)
};

struct FormulaNode;

/// Immutable, shareable formula handle.
using Formula = std::shared_ptr<const FormulaNode>;

struct FormulaNode {
    FormulaKind kind = FormulaKind::Top;

    /// Unary/Binary atoms: 1-based relation index, matching the paper's
    /// O_1, ->_1, ->_2 notation.
    std::size_t rel_index = 0;

    /// Quantifiers: bound variable name.  Atoms: first argument.
    std::string var;

    /// Bounded quantifiers: the anchor variable y.  Binary/Equals atoms:
    /// second argument.
    std::string var2;

    /// Apply / SO quantifiers: relation-variable name and arity.
    std::string rel_var;
    std::size_t arity = 0;

    /// Apply: argument variables.
    std::vector<std::string> args;

    std::vector<Formula> children;
};

/// Builders for the grammar of Section 5.1.  Relation indices are 1-based as
/// in the paper.
namespace fl {

Formula top();
Formula bottom();
Formula unary(std::size_t i, const std::string& x);
Formula binary(std::size_t i, const std::string& x, const std::string& y);
Formula equals(const std::string& x, const std::string& y);
Formula apply(const std::string& rel, std::vector<std::string> args);
Formula negate(Formula phi);
Formula disj(Formula a, Formula b);
Formula conj(Formula a, Formula b);
Formula implies(Formula a, Formula b);
Formula iff(Formula a, Formula b);
/// n-ary variants fold left; empty input yields the neutral constant.
Formula disj_all(std::vector<Formula> parts);
Formula conj_all(std::vector<Formula> parts);
Formula exists(const std::string& x, Formula phi);
Formula forall(const std::string& x, Formula phi);
/// exists x ~ y. phi — bounded first-order quantification; x != y required.
Formula exists_conn(const std::string& x, const std::string& y, Formula phi);
Formula forall_conn(const std::string& x, const std::string& y, Formula phi);
Formula exists_so(const std::string& rel, std::size_t arity, Formula phi);
Formula forall_so(const std::string& rel, std::size_t arity, Formula phi);

/// The shorthand exists x ~(<=r) y. phi of Section 5.1 ("there is an x within
/// distance r of y"), expanded by the paper's inductive definition with fresh
/// variables.
Formula exists_within(const std::string& x, int r, const std::string& y, Formula phi);

/// Dual shorthand forall x ~(<=r) y. phi.
Formula forall_within(const std::string& x, int r, const std::string& y, Formula phi);

} // namespace fl

/// Free first-order variables of phi.
std::set<std::string> free_fo_variables(const Formula& phi);

/// Free second-order variables of phi (names only).
std::set<std::string> free_so_variables(const Formula& phi);

/// Capture-avoiding substitution of free occurrences of first-order variable
/// `from` by variable `to`.
Formula substitute_fo(const Formula& phi, const std::string& from,
                      const std::string& to);

/// Human-readable rendering (ASCII approximations of the paper's symbols).
std::string to_string(const Formula& phi);

/// Total number of AST nodes.
std::size_t formula_size(const Formula& phi);

} // namespace lph
