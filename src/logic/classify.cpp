#include "logic/classify.hpp"

#include <algorithm>

namespace lph {
namespace {

bool contains_so_quantifier(const Formula& phi) {
    if (phi->kind == FormulaKind::ExistsSO || phi->kind == FormulaKind::ForallSO) {
        return true;
    }
    return std::any_of(phi->children.begin(), phi->children.end(),
                       contains_so_quantifier);
}

bool contains_unbounded_fo(const Formula& phi) {
    if (phi->kind == FormulaKind::ExistsFO || phi->kind == FormulaKind::ForallFO) {
        return true;
    }
    return std::any_of(phi->children.begin(), phi->children.end(),
                       contains_unbounded_fo);
}

bool all_so_monadic(const Formula& phi) {
    if ((phi->kind == FormulaKind::ExistsSO || phi->kind == FormulaKind::ForallSO) &&
        phi->arity != 1) {
        return false;
    }
    return std::all_of(phi->children.begin(), phi->children.end(), all_so_monadic);
}

int bounded_depth(const Formula& phi) {
    int depth = 0;
    for (const auto& c : phi->children) {
        depth = std::max(depth, bounded_depth(c));
    }
    if (phi->kind == FormulaKind::ExistsConn || phi->kind == FormulaKind::ForallConn) {
        ++depth;
    }
    return depth;
}

bool is_bf(const Formula& phi) {
    return !contains_so_quantifier(phi) && !contains_unbounded_fo(phi);
}

bool is_lfo(const Formula& phi) {
    return phi->kind == FormulaKind::ForallFO && is_bf(phi->children[0]);
}

bool is_fo(const Formula& phi) { return !contains_so_quantifier(phi); }

/// Strips the leading second-order prefix; returns the matrix and fills in
/// the number of alternating blocks and the polarity of the first block.
Formula strip_so_prefix(const Formula& phi, int& blocks, bool& starts_existential) {
    blocks = 0;
    starts_existential = false;
    Formula current = phi;
    bool first = true;
    FormulaKind block_kind = FormulaKind::Top; // sentinel
    while (current->kind == FormulaKind::ExistsSO ||
           current->kind == FormulaKind::ForallSO) {
        if (first) {
            starts_existential = current->kind == FormulaKind::ExistsSO;
            first = false;
        }
        if (current->kind != block_kind) {
            block_kind = current->kind;
            ++blocks;
        }
        current = current->children[0];
    }
    return current;
}

} // namespace

FormulaClass classify(const Formula& phi) {
    FormulaClass result;
    result.first_order = is_fo(phi);
    result.bounded = is_bf(phi);
    result.local_fo = is_lfo(phi);
    result.monadic = all_so_monadic(phi);
    result.bf_depth = bounded_depth(phi);

    const Formula matrix = strip_so_prefix(phi, result.so_blocks,
                                           result.starts_existential);
    result.matrix_is_lfo = is_lfo(matrix);
    result.matrix_is_fo = is_fo(matrix);
    return result;
}

int sigma_lfo_level(const Formula& phi) {
    const FormulaClass c = classify(phi);
    if (!c.matrix_is_lfo) {
        return -1;
    }
    if (c.so_blocks == 0) {
        return 0;
    }
    return c.starts_existential ? c.so_blocks : -1;
}

int pi_lfo_level(const Formula& phi) {
    const FormulaClass c = classify(phi);
    if (!c.matrix_is_lfo) {
        return -1;
    }
    if (c.so_blocks == 0) {
        return 0;
    }
    return c.starts_existential ? -1 : c.so_blocks;
}

} // namespace lph
