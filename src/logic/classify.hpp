#pragma once

#include "logic/formula.hpp"

namespace lph {

/// Syntactic classification of a formula within the hierarchies of
/// Section 5.1.
struct FormulaClass {
    /// No second-order quantifiers anywhere (FO grammar; free relation
    /// variables are permitted, as in the paper's FO grammar).
    bool first_order = false;

    /// First-order and every first-order quantifier is bounded (BF grammar).
    bool bounded = false;

    /// Of the form forall x. psi with psi in BF (the class LFO).
    bool local_fo = false;

    /// Number of alternating second-order quantifier *blocks* in the prefix
    /// (0 when the formula has no second-order prefix).
    int so_blocks = 0;

    /// True when the first block is existential (Sigma side).
    bool starts_existential = false;

    /// True when the matrix below the second-order prefix is an LFO formula,
    /// i.e. the formula belongs to Sigma_l^LFO or Pi_l^LFO with l = so_blocks.
    bool matrix_is_lfo = false;

    /// True when the matrix below the second-order prefix is plain FO,
    /// i.e. the formula belongs to Sigma_l^FO or Pi_l^FO.
    bool matrix_is_fo = false;

    /// All second-order quantifiers have arity 1 (monadic fragment).
    bool monadic = false;

    /// Maximum nesting depth of bounded first-order quantifiers — the radius
    /// up to which a BF matrix can "see" (used by Theorem 12's arbiter).
    int bf_depth = 0;
};

FormulaClass classify(const Formula& phi);

/// Convenience: the level l such that phi is syntactically a
/// Sigma_l^LFO-formula, or -1 when it is not in the local second-order
/// hierarchy's Sigma side (level 0 means LFO itself).
int sigma_lfo_level(const Formula& phi);

/// Dual for Pi_l^LFO.
int pi_lfo_level(const Formula& phi);

} // namespace lph
