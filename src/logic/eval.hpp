#pragma once

#include "logic/formula.hpp"
#include "structure/structure.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace lph {

/// A k-tuple of structure elements.
using ElementTuple = std::vector<Element>;

/// The value of a second-order variable: a finite k-ary relation.
class RelationValue {
public:
    explicit RelationValue(std::size_t arity) : arity_(arity) {}

    std::size_t arity() const { return arity_; }
    bool contains(const ElementTuple& t) const { return tuples_.count(t) > 0; }
    void insert(ElementTuple t);
    void erase(const ElementTuple& t) { tuples_.erase(t); }
    std::size_t size() const { return tuples_.size(); }
    const std::set<ElementTuple>& tuples() const { return tuples_; }

    bool operator==(const RelationValue& other) const {
        return arity_ == other.arity_ && tuples_ == other.tuples_;
    }

private:
    std::size_t arity_;
    std::set<ElementTuple> tuples_;
};

/// A variable assignment sigma: first-order variables to elements,
/// second-order variables to relations (Section 5.1).
struct Assignment {
    std::map<std::string, Element> fo;
    std::map<std::string, RelationValue> so;
};

/// How second-order quantifiers are enumerated by the model checker.
///
/// Brute-force enumeration of all subsets of D^k is only feasible for tiny
/// domains; the `LocalTuples` universe restricts quantification to tuples
/// whose elements all lie within `locality_radius` of the tuple's first
/// element.  By the argument in the proof of Theorem 12 (backward direction),
/// this loses no generality when the matrix is a BF formula of matching
/// radius: far-apart tuples are never inspected.
struct SOPolicy {
    enum class Universe { AllTuples, LocalTuples };
    Universe universe = Universe::AllTuples;
    int locality_radius = 2;
    /// Enumeration guard: a quantifier whose tuple universe has more than
    /// this many tuples throws precondition_error instead of running for
    /// astronomically long.
    std::size_t max_universe_size = 24;
};

/// Evaluates phi on S under sigma (Table 1 semantics).  All free variables of
/// phi must be assigned; SO quantifiers are enumerated per `policy`.
bool evaluate(const Structure& s, const Formula& phi, const Assignment& sigma,
              const SOPolicy& policy = {});

/// Evaluates a sentence (no free variables).
bool satisfies(const Structure& s, const Formula& sentence,
               const SOPolicy& policy = {});

/// The tuple universe a second-order quantifier of the given arity ranges
/// over under `policy` (exposed for tests and for certificate encodings).
std::vector<ElementTuple> so_tuple_universe(const Structure& s, std::size_t arity,
                                            const SOPolicy& policy);

} // namespace lph
