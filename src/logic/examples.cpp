#include "logic/examples.hpp"

#include "core/check.hpp"

namespace lph::paper_formulas {

using namespace fl;

Formula is_node(const std::string& x) {
    // IsNode(x) = !exists y ~ x. (y ->_2 x)
    return negate(exists_conn("$isnode_y", x, binary(2, "$isnode_y", x)));
}

Formula is_bit0(const std::string& x) {
    return conj(negate(is_node(x)), negate(unary(1, x)));
}

Formula is_bit1(const std::string& x) {
    return conj(negate(is_node(x)), unary(1, x));
}

Formula exists_node(const std::string& x, Formula phi) {
    return exists(x, conj(is_node(x), std::move(phi)));
}

Formula forall_node(const std::string& x, Formula phi) {
    return forall(x, implies(is_node(x), std::move(phi)));
}

Formula exists_node_conn(const std::string& x, const std::string& y, Formula phi) {
    return exists_conn(x, y, conj(is_node(x), std::move(phi)));
}

Formula forall_node_conn(const std::string& x, const std::string& y, Formula phi) {
    return forall_conn(x, y, implies(is_node(x), std::move(phi)));
}

Formula exists_node_within(const std::string& x, int r, const std::string& y,
                           Formula phi) {
    return exists_within(x, r, y, conj(is_node(x), std::move(phi)));
}

Formula forall_node_within(const std::string& x, int r, const std::string& y,
                           Formula phi) {
    return forall_within(x, r, y, implies(is_node(x), std::move(phi)));
}

Formula is_selected(const std::string& x) {
    // IsSelected(x) = exists y ~ x. (IsBit1(y) &
    //                                !exists z ~ y. (z ->_1 y | y ->_1 z))
    const std::string y = "$sel_y";
    const std::string z = "$sel_z";
    return exists_conn(
        y, x,
        conj(is_bit1(y),
             negate(exists_conn(z, y, disj(binary(1, z, y), binary(1, y, z))))));
}

Formula all_selected() { return forall_node("x", is_selected("x")); }

Formula well_colored(const std::string& x) {
    // One color and one color only; no neighbor shares it (Example 3).
    std::vector<Formula> has_some;
    std::vector<Formula> not_two;
    std::vector<Formula> differs;
    const std::vector<std::string> colors = {"C0", "C1", "C2"};
    for (std::size_t i = 0; i < colors.size(); ++i) {
        has_some.push_back(apply(colors[i], {x}));
        for (std::size_t j = 0; j < colors.size(); ++j) {
            if (i != j) {
                not_two.push_back(
                    negate(conj(apply(colors[i], {x}), apply(colors[j], {x}))));
            }
        }
    }
    const std::string y = "$wc_y";
    for (const auto& c : colors) {
        differs.push_back(negate(conj(apply(c, {x}), apply(c, {y}))));
    }
    return conj_all({disj_all(has_some), conj_all(not_two),
                     forall_node_conn(y, x, conj_all(differs))});
}

Formula three_colorable() {
    return exists_so(
        "C0", 1,
        exists_so("C1", 1,
                  exists_so("C2", 1, forall_node("x", well_colored("x")))));
}

Formula k_colorable(int k) {
    check(k >= 1, "k_colorable: k must be positive");
    const std::string x = "x";
    const std::string y = "$kc_y";
    std::vector<std::string> colors;
    for (int i = 0; i < k; ++i) {
        colors.push_back("C" + std::to_string(i));
    }
    std::vector<Formula> has_some;
    std::vector<Formula> not_two;
    std::vector<Formula> differs;
    for (int i = 0; i < k; ++i) {
        has_some.push_back(apply(colors[i], {x}));
        for (int j = 0; j < k; ++j) {
            if (i != j) {
                not_two.push_back(
                    negate(conj(apply(colors[i], {x}), apply(colors[j], {x}))));
            }
        }
        differs.push_back(negate(conj(apply(colors[i], {x}), apply(colors[i], {y}))));
    }
    Formula matrix = forall_node(
        x, conj_all({disj_all(has_some), conj_all(not_two),
                     forall_node_conn(y, x, conj_all(differs))}));
    for (int i = k - 1; i >= 0; --i) {
        matrix = exists_so(colors[i], 1, matrix);
    }
    return matrix;
}

Formula two_colorable() { return k_colorable(2); }

Formula points_to(Formula theta_of_x, const std::string& x) {
    // UniqueParent(x) = exists-node y ~(<=1) x. (P(x,y) &
    //                     forall-node z ~(<=1) x. (P(x,z) -> z = y))
    const std::string y = "$pt_y";
    const std::string z = "$pt_z";
    const Formula unique_parent = exists_node_within(
        y, 1, x,
        conj(apply("P", {x, y}),
             forall_node_within(z, 1, x,
                                implies(apply("P", {x, z}), equals(z, y)))));
    // RootCase[theta](x) = P(x,x) -> (theta(x) & Y(x))
    const Formula root_case =
        implies(apply("P", {x, x}), conj(std::move(theta_of_x), apply("Y", {x})));
    // ChildCase(x) = !P(x,x) -> exists-node y ~ x. (P(x,y) &
    //                  (Y(x) <-> !(Y(y) <-> X(x))))
    const std::string yc = "$pt_yc";
    const Formula child_case = implies(
        negate(apply("P", {x, x})),
        exists_node_conn(
            yc, x,
            conj(apply("P", {x, yc}),
                 iff(apply("Y", {x}),
                     negate(iff(apply("Y", {yc}), apply("X", {x})))))));
    return conj_all({unique_parent, root_case, child_case});
}

Formula exists_unselected_node() {
    // ExistsUnselectedNode = EXISTS P. FORALL X. EXISTS Y.
    //                        forall-node x. PointsTo[!IsSelected](x)
    return exists_so(
        "P", 2,
        forall_so("X", 1,
                  exists_so("Y", 1,
                            forall_node("x", points_to(negate(is_selected("x")),
                                                       "x")))));
}

Formula non_three_colorable() {
    // FORALL C0,C1,C2. EXISTS P. FORALL X. EXISTS Y.
    //   forall-node x. PointsTo[!WellColored](x)    (Example 5)
    Formula inner = exists_so(
        "P", 2,
        forall_so(
            "X", 1,
            exists_so("Y", 1,
                      forall_node("x",
                                  points_to(negate(well_colored("x")), "x")))));
    return forall_so("C0", 1, forall_so("C1", 1, forall_so("C2", 1, inner)));
}

Formula degree_two(const std::string& x) {
    // Exactly two H-neighbors among x's graph neighbors (Example 6).
    const std::string y1 = "$d2_y1";
    const std::string y2 = "$d2_y2";
    const std::string z = "$d2_z";
    const Formula both_edges =
        conj_all({apply("H", {x, y1}), apply("H", {y1, x}), apply("H", {x, y2}),
                  apply("H", {y2, x})});
    const Formula no_third = forall_node_conn(
        z, x,
        implies(disj(apply("H", {x, z}), apply("H", {z, x})),
                disj(equals(z, y1), equals(z, y2))));
    return exists_node_conn(
        y1, x,
        exists_node_conn(y2, x, conj_all({negate(equals(y1, y2)), both_edges,
                                          no_third})));
}

Formula in_agreement_on(const std::string& rel, const std::string& x) {
    const std::string y = "$agr_" + rel + "_y";
    return forall_node_conn(y, x, iff(apply(rel, {x}), apply(rel, {y})));
}

namespace {

/// DiscontinuityAt(x) over H and S (Example 6).
Formula discontinuity_at(const std::string& x) {
    const std::string y = "$disc_y";
    return exists_node_conn(
        y, x,
        conj(apply("H", {x, y}),
             iff(apply("S", {x}), negate(apply("S", {y})))));
}

} // namespace

Formula hamiltonian() {
    const std::string x = "x";
    // ConnectivityTest(x) = InAgreementOn[C](x) & TrivialCase(x) &
    //                       PartitionedCase(x)
    const Formula trivial_case =
        implies(negate(apply("C", {x})), in_agreement_on("S", x));
    const Formula partitioned_case =
        implies(apply("C", {x}), points_to(discontinuity_at(x), x));
    const Formula connectivity_test =
        conj_all({in_agreement_on("C", x), trivial_case, partitioned_case});
    const Formula matrix =
        forall_node(x, conj(degree_two(x), connectivity_test));
    // EXISTS H. FORALL S. EXISTS C, P. FORALL X. EXISTS Y. matrix
    return exists_so(
        "H", 2,
        forall_so(
            "S", 1,
            exists_so(
                "C", 1,
                exists_so("P", 2,
                          forall_so("X", 1, exists_so("Y", 1, matrix))))));
}

Formula non_hamiltonian() {
    const std::string x = "x";
    // InvalidCase(x) = !C(x) -> PointsTo[!DegreeTwo](x)
    const Formula invalid_case =
        implies(negate(apply("C", {x})), points_to(negate(degree_two(x)), x));
    // DisjointCase(x) = C(x) -> (!DiscontinuityAt(x) & PointsTo[DivisionAt](x))
    const Formula division_at = negate(in_agreement_on("S", x));
    const Formula disjoint_case =
        implies(apply("C", {x}),
                conj(negate(discontinuity_at(x)), points_to(division_at, x)));
    const Formula matrix = forall_node(
        x, conj_all({in_agreement_on("C", x), invalid_case, disjoint_case}));
    // FORALL H. EXISTS C, S, P. FORALL X. EXISTS Y. matrix
    return forall_so(
        "H", 2,
        exists_so(
            "C", 1,
            exists_so(
                "S", 1,
                exists_so("P", 2,
                          forall_so("X", 1, exists_so("Y", 1, matrix))))));
}

} // namespace lph::paper_formulas
