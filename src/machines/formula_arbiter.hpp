#pragma once

#include "dtm/gather.hpp"
#include "logic/classify.hpp"
#include "logic/eval.hpp"
#include "logic/formula.hpp"
#include "structure/graph_structure.hpp"

#include <map>
#include <string>
#include <vector>

namespace lph {

/// A second-order variable of the sentence prefix.
struct SOVariable {
    std::string name;
    std::size_t arity = 1;
    bool existential = true;
};

/// One alternation block: consecutive same-polarity quantifiers.
struct SOBlock {
    bool existential = true;
    std::vector<SOVariable> variables;
};

/// Decomposes a Sigma_l/Pi_l^LFO sentence into its quantifier blocks and the
/// LFO matrix "forall x. psi(x)".  Throws unless the sentence has that shape.
struct PrefixSentence {
    std::vector<SOBlock> blocks;
    std::string matrix_var;  ///< the universally quantified first-order x
    Formula matrix_body;     ///< psi(x), a BF formula
    int radius = 0;          ///< bf nesting depth of psi — the machine's r
};

PrefixSentence decompose_prefix_sentence(const Formula& sentence);

/// A relation assignment restricted to what one node contributes: for each
/// relation variable, the tuples whose first element is owned by that node.
/// Elements are referenced as (owner identifier, bit position), position 0
/// meaning the node element itself.
struct ElementRef {
    BitString owner_id;
    std::size_t bit_position = 0; ///< 0 = node element, i >= 1 = i-th bit

    bool operator<(const ElementRef& other) const {
        return std::tie(owner_id, bit_position) <
               std::tie(other.owner_id, other.bit_position);
    }
    bool operator==(const ElementRef& other) const {
        return owner_id == other.owner_id && bit_position == other.bit_position;
    }
};

using RefTuple = std::vector<ElementRef>;

/// Per-node slice of the relations of one quantifier block.
using RelationSlice = std::map<std::string, std::vector<RefTuple>>;

/// Encodes a slice into a certificate bit string and back.
BitString encode_relation_certificate(const RelationSlice& slice,
                                      const std::vector<SOVariable>& block_vars);
RelationSlice decode_relation_certificate(const BitString& cert,
                                          const std::vector<SOVariable>& block_vars);

/// The generic restrictive arbiter of Theorem 12 (backward direction): given
/// a Sigma_l/Pi_l^LFO sentence, certificate layer i encodes each node's slice
/// of the block-i relations; each node reconstructs its r-neighborhood,
/// decodes all slices in view, and evaluates psi at the elements representing
/// itself and its labeling bits.
///
/// Malformed certificates are treated per the Lemma 8 relativization: a node
/// that detects its first malformed layer votes 0 when that layer is
/// existential and 1 when it is universal.
class FormulaArbiter : public NeighborhoodGatherMachine {
public:
    explicit FormulaArbiter(const Formula& sentence);

    const PrefixSentence& prefix() const { return prefix_; }
    std::size_t levels() const { return prefix_.blocks.size(); }

    Polynomial step_bound() const override;

    /// Certificate tuples may reference elements up to 2r away from their
    /// owner (Theorem 12's restriction), so identifier resolution needs
    /// uniqueness beyond the gather default.
    int id_radius() const override {
        return std::max(2 * radius(), NeighborhoodGatherMachine::id_radius());
    }

    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;

private:
    PrefixSentence prefix_;
};

/// Splits a global relation assignment (over the structural representation
/// of g) into per-node certificates for one block — the encoding Eve/Adam
/// use when playing the machine game (Theorem 12).
CertificateAssignment slice_relations_to_certificates(
    const GraphStructure& gs, const IdentifierAssignment& id,
    const std::vector<SOVariable>& block_vars,
    const std::map<std::string, RelationValue>& relations);

} // namespace lph
