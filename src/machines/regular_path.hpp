#pragma once

#include "automata/dfa.hpp"
#include "dtm/gather.hpp"

#include <optional>

namespace lph {

/// Section 9.3 views path graphs with 1-bit labels as words.  These helpers
/// convert between the two.
LabeledGraph word_to_path(const BitString& word);

/// The word spelled by a path graph, reading from its lower-identifier
/// endpoint; nullopt when g is not a 1-bit-labeled path.
std::optional<BitString> path_to_word(const LabeledGraph& g);

/// NLP-verifier for a regular property of paths: Eve's certificate at each
/// node encodes (a) which neighbor is its predecessor in the run direction
/// (one bit; endpoints may point at nothing) and (b) the DFA state after
/// reading the node's bit.  Nodes check chain consistency and one transition
/// each; the start endpoint checks delta(q0, bit), the final endpoint checks
/// acceptance.  Certificates are ceil(log2 |Q|) + 1 bits — constant size, so
/// every regular path property is in NLP on paths, the positive counterpart
/// of the Büchi–Elgot–Trakhtenbrot non-membership arguments.
class RegularPathVerifier : public NeighborhoodGatherMachine {
public:
    explicit RegularPathVerifier(Dfa dfa);

    const Dfa& dfa() const { return dfa_; }
    Polynomial step_bound() const override { return Polynomial{512, 64}; }
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;

    /// Encodes (has_predecessor, predecessor slot in id order, state).
    BitString encode_certificate(bool has_prev, bool prev_is_higher_id,
                                 std::size_t state) const;

    /// Eve's strategy: run the DFA along the path from the lower-id endpoint
    /// and emit the per-node certificates; nullopt when g is not a path or
    /// the word is rejected (she has no winning play either way — the
    /// verifier's completeness is exercised through this).
    std::optional<CertificateAssignment>
    eve_certificates(const LabeledGraph& g, const IdentifierAssignment& id) const;

private:
    struct DecodedCert {
        bool has_prev = false;
        bool prev_is_higher_id = false;
        std::size_t state = 0;
    };
    std::optional<DecodedCert> decode(const std::string& cert) const;

    Dfa dfa_;
    int state_bits_;
};

} // namespace lph
