#include "machines/turing_examples.hpp"

namespace lph {
namespace {

constexpr Move L = Move::Left;
constexpr Move R = Move::Right;
constexpr Move S = Move::Stay;

using tape::kBlank;
using tape::kLeftEnd;
using tape::kSep;

/// Adds the common tail: from state `enter` (internal head anywhere on the
/// tape), erase the internal tape's content, return to the left end, write
/// `verdict` at position 1, and stop.  Wildcard rules are matched in
/// registration order, so specific rules come first.
void add_erase_and_verdict(TuringMachine& m, const std::string& enter,
                           char verdict) {
    const std::string to_end = enter + "_end";
    const std::string back = enter + "_back";
    const std::string write = enter + "_write";
    // Rewind to the left end first (content may lie on both sides).
    m.add_rule(enter, '*', kLeftEnd, '*', to_end, '=', '=', '=', S, R, S);
    m.add_rule(enter, '*', '*', '*', enter, '=', '=', '=', S, L, S);
    // Erase rightwards until blank.
    m.add_rule(to_end, '*', kBlank, '*', back, '=', '=', '=', S, L, S);
    m.add_rule(to_end, '*', '*', '*', to_end, '=', kBlank, '=', S, R, S);
    // Return to the left end.
    m.add_rule(back, '*', kLeftEnd, '*', write, '=', '=', '=', S, R, S);
    m.add_rule(back, '*', '*', '*', back, '=', '=', '=', S, L, S);
    // Write the verdict and stop.
    m.add_rule(write, '*', '*', '*', TuringMachine::kStop, '=', verdict, '=', S, S,
               S);
}

} // namespace

TuringMachine make_all_selected_turing() {
    TuringMachine m;
    // Skip the left-end marker.
    m.add_rule(TuringMachine::kStart, '*', kLeftEnd, '*', "check1", '=', '=', '=', S,
               R, S);
    // First content symbol must be '1'.
    m.add_rule("check1", '*', '1', '*', "check2", '=', '=', '=', S, R, S);
    m.add_rule("check1", '*', '*', '*', "reject", '=', '=', '=', S, S, S);
    // Second must be the separator (label is exactly "1").
    m.add_rule("check2", '*', kSep, '*', "accept", '=', '=', '=', S, S, S);
    m.add_rule("check2", '*', '*', '*', "reject", '=', '=', '=', S, S, S);
    add_erase_and_verdict(m, "accept", '1');
    add_erase_and_verdict(m, "reject", '0');
    return m;
}

TuringMachine make_even_parity_turing() {
    TuringMachine m;
    m.add_rule(TuringMachine::kStart, '*', kLeftEnd, '*', "even", '=', '=', '=', S, R,
               S);
    // Scan the label (everything before the first separator), tracking parity.
    m.add_rule("even", '*', '0', '*', "even", '=', '=', '=', S, R, S);
    m.add_rule("even", '*', '1', '*', "odd", '=', '=', '=', S, R, S);
    m.add_rule("even", '*', '*', '*', "accept", '=', '=', '=', S, S, S);
    m.add_rule("odd", '*', '0', '*', "odd", '=', '=', '=', S, R, S);
    m.add_rule("odd", '*', '1', '*', "even", '=', '=', '=', S, R, S);
    m.add_rule("odd", '*', '*', '*', "reject", '=', '=', '=', S, S, S);
    add_erase_and_verdict(m, "accept", '1');
    add_erase_and_verdict(m, "reject", '0');
    return m;
}

TuringMachine make_labels_agree_turing() {
    // Two rounds.  Round 1: send one copy of the label to every neighbor
    // (the round-1 receiving tape "#^d" reveals the degree), then rewrite the
    // internal tape from "label#id#certs" to "#label" as a round marker.
    // Round 2 (detected by the leading '#'): compare every received message
    // against the stored label.  Precondition: labels are nonempty (the
    // marker would otherwise be ambiguous with an empty identifier).
    TuringMachine m;

    // --- Dispatch on the round marker. ---
    m.add_rule(TuringMachine::kStart, '*', kLeftEnd, '*', "detect", '=', '=', '=', S,
               R, S);
    m.add_rule("detect", '*', kSep, '*', "cmp_enter", '=', '=', '=', R, R, S);
    m.add_rule("detect", '*', '*', '*', "r1_scan", '=', '=', '=', R, L, S);

    // --- Round 1: for every '#' on the receiving tape, copy the label to the
    // sending tape followed by a separator.  Invariant at r1_scan: internal
    // head on the left-end marker. ---
    m.add_rule("r1_scan", kSep, '*', '*', "copy", '=', '=', '=', R, R, S);
    m.add_rule("r1_scan", kBlank, '*', '*', "find_end", '=', '=', '=', S, R, S);
    // copy: stream label symbols onto the sending tape.
    m.add_rule("copy", '*', '0', '*', "copy", '=', '=', '0', S, R, R);
    m.add_rule("copy", '*', '1', '*', "copy", '=', '=', '1', S, R, R);
    m.add_rule("copy", '*', kSep, '*', "rewind", '=', '=', kSep, S, L, R);
    // rewind the internal head to the left end, then continue scanning.
    m.add_rule("rewind", '*', kLeftEnd, '*', "r1_scan", '=', '=', '=', S, S, S);
    m.add_rule("rewind", '*', '*', '*', "rewind", '=', '=', '=', S, L, S);

    // --- Transform "label#rest" into "#label": erase everything after the
    // label, then shift the label one cell right and plant the marker. ---
    // find_end: walk to the label's separator (internal head starts at pos 1).
    m.add_rule("find_end", '*', kSep, '*', "erase_rest", '=', '=', '=', S, R, S);
    m.add_rule("find_end", '*', '*', '*', "find_end", '=', '=', '=', S, R, S);
    m.add_rule("erase_rest", '*', kBlank, '*', "back_to_label", '=', '=', '=', S, L,
               S);
    m.add_rule("erase_rest", '*', '*', '*', "erase_rest", '=', kBlank, '=', S, R, S);
    // back_to_label: skip blanks leftwards; the first non-blank is the
    // label's separator, which the shift will overwrite.
    m.add_rule("back_to_label", '*', kBlank, '*', "back_to_label", '=', '=', '=', S,
               L, S);
    m.add_rule("back_to_label", '*', kSep, '*', "shift_read", '=', kBlank, '=', S, L,
               S);
    // shift_read at position i: remember the symbol, write it at i+1.
    m.add_rule("shift_read", '*', '0', '*', "shift_put0", '=', '=', '=', S, R, S);
    m.add_rule("shift_read", '*', '1', '*', "shift_put1", '=', '=', '=', S, R, S);
    m.add_rule("shift_read", '*', kLeftEnd, '*', "plant", '=', '=', '=', S, R, S);
    m.add_rule("shift_put0", '*', '*', '*', "shift_step", '=', '0', '=', S, L, S);
    m.add_rule("shift_put1", '*', '*', '*', "shift_step", '=', '1', '=', S, L, S);
    m.add_rule("shift_step", '*', '*', '*', "shift_read", '=', '=', '=', S, L, S);
    // plant the round marker at position 1 and pause until round 2.
    m.add_rule("plant", '*', '*', '*', TuringMachine::kPause, '=', kSep, '=', S, S,
               S);

    // --- Round 2: internal is "#label"; compare each message. ---
    // cmp_enter arrives with the receiving head at position 1 and internal
    // head at position 2 (first label symbol).  cmp_bound = at the start of
    // a message.
    m.add_rule("cmp_enter", '*', '*', '*', "cmp_bound", '=', '=', '=', S, S, S);
    m.add_rule("cmp_bound", kBlank, '*', '*', "accept", '=', '=', '=', S, S, S);
    m.add_rule("cmp_bound", '*', '*', '*', "cmp", '=', '=', '=', S, S, S);
    // Matching symbols advance both heads.
    m.add_rule("cmp", '0', '0', '*', "cmp", '=', '=', '=', R, R, S);
    m.add_rule("cmp", '1', '1', '*', "cmp", '=', '=', '=', R, R, S);
    // Message and label end together: rewind the label, next message.
    m.add_rule("cmp", kSep, kBlank, '*', "next_msg", '=', '=', '=', R, S, S);
    // Any other combination is a mismatch.
    m.add_rule("cmp", '*', '*', '*', "reject", '=', '=', '=', S, S, S);
    // Rewind internal head to position 2 (just after the marker).
    m.add_rule("next_msg", '*', kSep, '*', "cmp_bound", '=', '=', '=', S, R, S);
    m.add_rule("next_msg", '*', '*', '*', "next_msg", '=', '=', '=', S, L, S);

    add_erase_and_verdict(m, "accept", '1');
    add_erase_and_verdict(m, "reject", '0');
    return m;
}

} // namespace lph
