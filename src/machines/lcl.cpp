#include "machines/lcl.hpp"

#include "core/check.hpp"

namespace lph {

LclDecider::LclDecider(LclProblem problem)
    : NeighborhoodGatherMachine(problem.radius), problem_(std::move(problem)) {
    check(problem_.radius >= 0, "LclDecider: negative radius");
    check(static_cast<bool>(problem_.valid), "LclDecider: no validity predicate");
}

Polynomial LclDecider::step_bound() const {
    // Constant degree and label bounds make the view constant-sized; the
    // check is constant time plus reading the input.
    return Polynomial{4096, 64};
}

std::string LclDecider::decide(const NeighborhoodView& view,
                               StepMeter& meter) const {
    meter.charge(view.graph.num_nodes() + view.graph.num_edges());
    // Domain check: LCL problems live on GRAPH(Delta) with constant labels.
    if (view.graph.degree(view.self) > problem_.max_degree ||
        view.graph.label(view.self).size() > problem_.max_label_bits) {
        return "0";
    }
    return problem_.valid(view) ? "1" : "0";
}

LclProblem lcl_proper_three_coloring() {
    LclProblem problem;
    problem.name = "proper-3-coloring";
    problem.radius = 1;
    problem.max_degree = 6;
    problem.max_label_bits = 2;
    problem.valid = [](const NeighborhoodView& view) {
        const BitString& mine = view.graph.label(view.self);
        if (mine.size() != 2 || decode_unsigned(mine) > 2) {
            return false;
        }
        for (NodeId v : view.graph.neighbors(view.self)) {
            if (view.graph.label(v) == mine) {
                return false;
            }
        }
        return true;
    };
    return problem;
}

LclProblem lcl_maximal_independent_set() {
    LclProblem problem;
    problem.name = "maximal-independent-set";
    problem.radius = 1;
    problem.max_degree = 6;
    problem.max_label_bits = 1;
    problem.valid = [](const NeighborhoodView& view) {
        const bool selected = view.graph.label(view.self) == "1";
        if (selected) {
            // Independence.
            for (NodeId v : view.graph.neighbors(view.self)) {
                if (view.graph.label(v) == "1") {
                    return false;
                }
            }
            return true;
        }
        // Maximality: some neighbor is selected.
        for (NodeId v : view.graph.neighbors(view.self)) {
            if (view.graph.label(v) == "1") {
                return true;
            }
        }
        return false;
    };
    return problem;
}

LclProblem lcl_weak_two_coloring() {
    LclProblem problem;
    problem.name = "weak-2-coloring";
    problem.radius = 1;
    problem.max_degree = 6;
    problem.max_label_bits = 1;
    problem.valid = [](const NeighborhoodView& view) {
        const BitString& mine = view.graph.label(view.self);
        if (mine != "0" && mine != "1") {
            return false;
        }
        if (view.graph.degree(view.self) == 0) {
            return true; // isolated nodes are vacuously fine
        }
        for (NodeId v : view.graph.neighbors(view.self)) {
            if (view.graph.label(v) != mine) {
                return true;
            }
        }
        return false;
    };
    return problem;
}

bool is_proper_three_coloring_labeling(const LabeledGraph& g) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u).size() != 2 || decode_unsigned(g.label(u)) > 2) {
            return false;
        }
        for (NodeId v : g.neighbors(u)) {
            if (g.label(v) == g.label(u)) {
                return false;
            }
        }
    }
    return true;
}

bool is_maximal_independent_set_labeling(const LabeledGraph& g) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const bool selected = g.label(u) == "1";
        if (!selected && g.label(u) != "0") {
            return false;
        }
        bool has_selected_neighbor = false;
        for (NodeId v : g.neighbors(u)) {
            if (g.label(v) == "1") {
                has_selected_neighbor = true;
                if (selected) {
                    return false;
                }
            }
        }
        if (!selected && !has_selected_neighbor) {
            return false;
        }
    }
    return true;
}

bool is_weak_two_coloring_labeling(const LabeledGraph& g) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u) != "0" && g.label(u) != "1") {
            return false;
        }
        if (g.degree(u) == 0) {
            continue;
        }
        bool has_different = false;
        for (NodeId v : g.neighbors(u)) {
            if (g.label(v) != g.label(u)) {
                has_different = true;
                break;
            }
        }
        if (!has_different) {
            return false;
        }
    }
    return true;
}

} // namespace lph
