#pragma once

#include "dtm/gather.hpp"
#include "sat/bool_formula.hpp"

namespace lph {

/// NLP-verifier for k-COLORABLE: the first certificate layer encodes each
/// node's color; a node accepts when its color is valid and differs from all
/// neighbors' colors (Example 3 / Theorem 20).  Radius 1.
class ColoringVerifier : public NeighborhoodGatherMachine {
public:
    explicit ColoringVerifier(int k);
    int k() const { return k_; }
    Polynomial step_bound() const override { return Polynomial{512, 48}; }
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;

    /// Encodes color c in [0, k) as a fixed-width certificate.
    BitString encode_color(int c) const;

    /// Decodes a certificate; -1 when malformed.
    int decode_color(const std::string& cert) const;

private:
    int k_;
};

/// Encodes a valuation into a certificate (ASCII "P=1;Q=0;", 8 bits per
/// character) and back.
BitString encode_valuation_certificate(const Valuation& valuation);
Valuation decode_valuation_certificate(const BitString& cert);

/// NLP-verifier for SAT-GRAPH (proof of Theorem 19): labels encode Boolean
/// formulas, the first certificate layer encodes per-node valuations; a node
/// accepts when its valuation satisfies its formula and is consistent with
/// its neighbors' valuations on shared variables.  Radius 1.
class SatGraphVerifier : public NeighborhoodGatherMachine {
public:
    SatGraphVerifier() : NeighborhoodGatherMachine(1) {}
    Polynomial step_bound() const override { return Polynomial{256, 64, 1}; }
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;
};

} // namespace lph
