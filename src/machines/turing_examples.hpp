#pragma once

#include "dtm/turing.hpp"

namespace lph {

/// A fully tape-level distributed Turing machine deciding ALL-SELECTED:
/// each node checks that its internal tape starts with "1#" (label == "1"),
/// erases the tape, and writes its verdict.  One round, no messages,
/// linear step time.  Used to cross-validate the tape-level model against
/// the local-algorithm layer (experiment E11).
TuringMachine make_all_selected_turing();

/// A tape-level machine deciding "every node's label has even parity"
/// (an LP property exercising longer scans): each node counts the 1-bits of
/// its label modulo 2.
TuringMachine make_even_parity_turing();

/// A tape-level two-round machine deciding "my label equals each neighbor's
/// label prefix-for-prefix" is overkill; instead this machine broadcasts its
/// label in round 1 and accepts in round 2 iff all received messages equal
/// its own label — deciding the LP property ALL-LABELS-EQUAL (on connected
/// graphs).  Exercises the message path of the tape-level runner.
TuringMachine make_labels_agree_turing();

} // namespace lph
