#pragma once

#include "dtm/gather.hpp"

#include <functional>

namespace lph {

/// A locally checkable labeling problem (Naor–Stockmeyer), interpreted as a
/// decision problem as in the paper's Section 1.3: a graph belongs to the
/// property iff every node's r-neighborhood (labels included) is acceptable.
///
/// LCL imposes constant bounds on the maximum degree and the label length;
/// within those bounds, the local check runs in constant time, so every LCL
/// decision problem is decided by a local-polynomial machine — the
/// inclusion LCL subseteq LP, realized by LclDecider.
struct LclProblem {
    std::string name;
    int radius = 1;
    std::size_t max_degree = 3;
    std::size_t max_label_bits = 2;
    /// Acceptability of one node's r-neighborhood view.
    std::function<bool(const NeighborhoodView&)> valid;
};

/// The LP decider induced by an LCL problem: gathers radius r and applies
/// the local predicate; graphs violating the degree/label bounds are
/// rejected (they lie outside GRAPH(Delta), the problem's domain).
class LclDecider : public NeighborhoodGatherMachine {
public:
    explicit LclDecider(LclProblem problem);

    const LclProblem& problem() const { return problem_; }
    Polynomial step_bound() const override;
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;

private:
    LclProblem problem_;
};

/// PROPER-3-COLORING as an LCL: labels are 2-bit colors 00/01/10, adjacent
/// nodes differ.  (The decision version of the coloring construction task.)
LclProblem lcl_proper_three_coloring();

/// MAXIMAL-INDEPENDENT-SET as an LCL: labels are 1 bit; no two selected
/// nodes are adjacent, and every unselected node has a selected neighbor.
LclProblem lcl_maximal_independent_set();

/// WEAK-2-COLORING as an LCL: every node has at least one differently
/// labeled neighbor (1-bit labels).
LclProblem lcl_weak_two_coloring();

/// Reference oracles for the example LCLs (whole-graph checks used in tests).
bool is_proper_three_coloring_labeling(const LabeledGraph& g);
bool is_maximal_independent_set_labeling(const LabeledGraph& g);
bool is_weak_two_coloring_labeling(const LabeledGraph& g);

} // namespace lph
