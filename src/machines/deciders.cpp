#include "machines/deciders.hpp"

namespace lph {

std::string AllSelectedDecider::decide(const NeighborhoodView& view,
                                       StepMeter& meter) const {
    meter.charge(view.graph.label(view.self).size() + 1);
    return view.graph.label(view.self) == "1" ? "1" : "0";
}

std::string EulerianDecider::decide(const NeighborhoodView& view,
                                    StepMeter& meter) const {
    meter.charge(view.graph.degree(view.self) + 1);
    return view.graph.degree(view.self) % 2 == 0 ? "1" : "0";
}

std::string AllLabeledDecider::decide(const NeighborhoodView& view,
                                      StepMeter& meter) const {
    meter.charge(view.graph.label(view.self).size() + expected_.size() + 1);
    return view.graph.label(view.self) == expected_ ? "1" : "0";
}

} // namespace lph
