#include "machines/formula_arbiter.hpp"

#include "core/check.hpp"

#include <sstream>

namespace lph {

PrefixSentence decompose_prefix_sentence(const Formula& sentence) {
    PrefixSentence result;
    Formula current = sentence;
    while (current->kind == FormulaKind::ExistsSO ||
           current->kind == FormulaKind::ForallSO) {
        const bool existential = current->kind == FormulaKind::ExistsSO;
        if (result.blocks.empty() || result.blocks.back().existential != existential) {
            result.blocks.push_back(SOBlock{existential, {}});
        }
        result.blocks.back().variables.push_back(
            SOVariable{current->rel_var, current->arity, existential});
        current = current->children[0];
    }
    check(current->kind == FormulaKind::ForallFO,
          "decompose_prefix_sentence: matrix must be 'forall x. psi'");
    result.matrix_var = current->var;
    result.matrix_body = current->children[0];
    const FormulaClass c = classify(result.matrix_body);
    check(c.bounded, "decompose_prefix_sentence: matrix body must be a BF formula");
    result.radius = c.bf_depth;
    return result;
}

namespace {

/// ASCII layer format: relations (in block order) joined by '|'; tuples by
/// ';'; elements by ','; element = id '.' position.  The ASCII text is then
/// packed 8 bits per character, since certificates are bit strings.
std::string render_slice(const RelationSlice& slice,
                         const std::vector<SOVariable>& block_vars) {
    std::ostringstream out;
    for (std::size_t i = 0; i < block_vars.size(); ++i) {
        if (i > 0) {
            out << '|';
        }
        const auto it = slice.find(block_vars[i].name);
        if (it == slice.end()) {
            continue;
        }
        for (std::size_t t = 0; t < it->second.size(); ++t) {
            if (t > 0) {
                out << ';';
            }
            const RefTuple& tuple = it->second[t];
            for (std::size_t e = 0; e < tuple.size(); ++e) {
                if (e > 0) {
                    out << ',';
                }
                out << tuple[e].owner_id << '.' << tuple[e].bit_position;
            }
        }
    }
    return out.str();
}

std::vector<std::string> split_on(const std::string& s, char sep) {
    std::vector<std::string> parts;
    std::string current;
    for (char c : s) {
        if (c == sep) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    parts.push_back(current);
    return parts;
}

BitString pack_ascii(const std::string& text) {
    BitString bits;
    bits.reserve(text.size() * 8);
    for (char c : text) {
        bits += encode_unsigned_width(static_cast<unsigned char>(c), 8);
    }
    return bits;
}

std::string unpack_ascii(const BitString& bits) {
    check(bits.size() % 8 == 0, "relation certificate: length not a byte multiple");
    std::string text;
    text.reserve(bits.size() / 8);
    for (std::size_t i = 0; i < bits.size(); i += 8) {
        text.push_back(static_cast<char>(decode_unsigned(bits.substr(i, 8))));
    }
    return text;
}

} // namespace

BitString encode_relation_certificate(const RelationSlice& slice,
                                      const std::vector<SOVariable>& block_vars) {
    return pack_ascii(render_slice(slice, block_vars));
}

RelationSlice decode_relation_certificate(const BitString& cert,
                                          const std::vector<SOVariable>& block_vars) {
    const std::string text = unpack_ascii(cert);
    const auto sections = split_on(text, '|');
    check(sections.size() == block_vars.size(),
          "relation certificate: wrong number of relation sections");
    RelationSlice slice;
    for (std::size_t i = 0; i < block_vars.size(); ++i) {
        std::vector<RefTuple> tuples;
        if (!sections[i].empty()) {
            for (const auto& tuple_text : split_on(sections[i], ';')) {
                const auto element_texts = split_on(tuple_text, ',');
                check(element_texts.size() == block_vars[i].arity,
                      "relation certificate: tuple arity mismatch");
                RefTuple tuple;
                for (const auto& element_text : element_texts) {
                    const auto dot = element_text.rfind('.');
                    check(dot != std::string::npos,
                          "relation certificate: malformed element reference");
                    ElementRef ref;
                    ref.owner_id = element_text.substr(0, dot);
                    check(is_bit_string(ref.owner_id),
                          "relation certificate: identifier is not a bit string");
                    const std::string pos_text = element_text.substr(dot + 1);
                    check(!pos_text.empty() &&
                              pos_text.find_first_not_of("0123456789") ==
                                  std::string::npos,
                          "relation certificate: malformed bit position");
                    ref.bit_position = static_cast<std::size_t>(std::stoul(pos_text));
                    tuple.push_back(std::move(ref));
                }
                tuples.push_back(std::move(tuple));
            }
        }
        slice.emplace(block_vars[i].name, std::move(tuples));
    }
    return slice;
}

FormulaArbiter::FormulaArbiter(const Formula& sentence)
    : NeighborhoodGatherMachine(
          std::max(1, decompose_prefix_sentence(sentence).radius)),
      prefix_(decompose_prefix_sentence(sentence)) {}

Polynomial FormulaArbiter::step_bound() const {
    // Evaluating a fixed BF formula by exhaustive search over bounded
    // neighborhoods is polynomial in the local input; the degree grows with
    // the formula's quantifier depth.
    return Polynomial::max(Polynomial{4096, 4096, 16},
                           Polynomial::monomial(
                               16, static_cast<unsigned>(prefix_.radius) + 2));
}

std::string FormulaArbiter::decide(const NeighborhoodView& view,
                                   StepMeter& meter) const {
    // Decode every layer of every in-view node.  Detecting a malformed layer
    // ends the decision per the Lemma 8 relativization rule.
    const auto own_layers = split_hash(view.certs[view.self]);
    const std::size_t num_layers = prefix_.blocks.size();

    std::vector<std::map<std::string, std::vector<RefTuple>>> layer_tuples(num_layers);
    for (std::size_t layer = 0; layer < num_layers; ++layer) {
        const SOBlock& block = prefix_.blocks[layer];
        for (NodeId v = 0; v < view.graph.num_nodes(); ++v) {
            const auto layers_v = split_hash(view.certs[v]);
            const std::string cert =
                layer < layers_v.size() ? layers_v[layer] : "";
            RelationSlice slice;
            try {
                slice = decode_relation_certificate(cert, block.variables);
            } catch (const precondition_error&) {
                return block.existential ? "0" : "1";
            }
            for (auto& [name, tuples] : slice) {
                auto& sink = layer_tuples[layer][name];
                sink.insert(sink.end(), tuples.begin(), tuples.end());
            }
            meter.charge(cert.size() + 1);
        }
    }

    // Build the structural representation of the gathered neighborhood and
    // resolve element references; unresolvable tuples are dropped (they can
    // never be inspected by a BF formula anchored at this node).
    const GraphStructure gs(view.graph);
    std::map<BitString, NodeId> by_id;
    for (NodeId v = 0; v < view.graph.num_nodes(); ++v) {
        by_id.emplace(view.ids[v], v);
    }
    auto resolve = [&](const ElementRef& ref) -> std::optional<Element> {
        const auto it = by_id.find(ref.owner_id);
        if (it == by_id.end()) {
            return std::nullopt;
        }
        if (ref.bit_position == 0) {
            return gs.node_element(it->second);
        }
        if (ref.bit_position > view.graph.label(it->second).size()) {
            return std::nullopt;
        }
        return gs.bit_element(it->second, ref.bit_position);
    };

    Assignment sigma;
    for (std::size_t layer = 0; layer < num_layers; ++layer) {
        for (const SOVariable& var : prefix_.blocks[layer].variables) {
            RelationValue value(var.arity);
            const auto it = layer_tuples[layer].find(var.name);
            if (it != layer_tuples[layer].end()) {
                for (const RefTuple& tuple : it->second) {
                    ElementTuple resolved;
                    bool ok = true;
                    for (const ElementRef& ref : tuple) {
                        const auto element = resolve(ref);
                        if (!element.has_value()) {
                            ok = false;
                            break;
                        }
                        resolved.push_back(*element);
                    }
                    if (ok) {
                        value.insert(std::move(resolved));
                    }
                    meter.charge(tuple.size());
                }
            }
            sigma.so.emplace(var.name, std::move(value));
        }
    }

    // Evaluate psi at the elements representing this node and its bits.
    std::vector<Element> anchors{gs.node_element(view.self)};
    for (std::size_t i = 1; i <= view.graph.label(view.self).size(); ++i) {
        anchors.push_back(gs.bit_element(view.self, i));
    }
    const std::uint64_t domain = gs.structure().domain_size();
    meter.charge(formula_size(prefix_.matrix_body) * domain * anchors.size());
    for (Element anchor : anchors) {
        sigma.fo[prefix_.matrix_var] = anchor;
        if (!evaluate(gs.structure(), prefix_.matrix_body, sigma)) {
            return "0";
        }
    }
    return "1";
}

CertificateAssignment slice_relations_to_certificates(
    const GraphStructure& gs, const IdentifierAssignment& id,
    const std::vector<SOVariable>& block_vars,
    const std::map<std::string, RelationValue>& relations) {
    const LabeledGraph& g = gs.graph();
    auto to_ref = [&](Element e) {
        ElementRef ref;
        ref.owner_id = id(gs.owner(e));
        ref.bit_position = gs.is_node_element(e) ? 0 : gs.bit_position(e);
        return ref;
    };
    std::vector<BitString> certs(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        RelationSlice slice;
        for (const SOVariable& var : block_vars) {
            const auto it = relations.find(var.name);
            check(it != relations.end(),
                  "slice_relations_to_certificates: missing relation " + var.name);
            std::vector<RefTuple> tuples;
            for (const ElementTuple& tuple : it->second.tuples()) {
                if (gs.owner(tuple[0]) != u) {
                    continue;
                }
                RefTuple refs;
                for (Element e : tuple) {
                    refs.push_back(to_ref(e));
                }
                tuples.push_back(std::move(refs));
            }
            slice.emplace(var.name, std::move(tuples));
        }
        certs[u] = encode_relation_certificate(slice, block_vars);
    }
    return CertificateAssignment(std::move(certs));
}

} // namespace lph
