#pragma once

#include "dtm/gather.hpp"

namespace lph {

/// LP-decider for ALL-SELECTED: accepts iff every node's label is "1"
/// (Remark 14: trivially LP-complete).  Radius 0 — a node inspects only its
/// own label.
class AllSelectedDecider : public NeighborhoodGatherMachine {
public:
    AllSelectedDecider() : NeighborhoodGatherMachine(0) {}
    Polynomial step_bound() const override { return Polynomial{16, 4}; }
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;
};

/// LP-decider for EULERIAN via Euler's theorem (Proposition 15): since input
/// graphs are connected by definition, Eulerianness is "every degree even".
/// Radius 1 — a node needs only its degree.
class EulerianDecider : public NeighborhoodGatherMachine {
public:
    EulerianDecider() : NeighborhoodGatherMachine(1) {}
    Polynomial step_bound() const override { return Polynomial{512, 48}; }
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;
};

/// LP-decider for "every node's label equals the given constant" — the
/// generalization of ALL-SELECTED used as a reduction source in tests.
class AllLabeledDecider : public NeighborhoodGatherMachine {
public:
    explicit AllLabeledDecider(BitString expected)
        : NeighborhoodGatherMachine(0), expected_(std::move(expected)) {}
    Polynomial step_bound() const override { return Polynomial{16, 4}; }
    std::string decide(const NeighborhoodView& view, StepMeter& meter) const override;

private:
    BitString expected_;
};

} // namespace lph
