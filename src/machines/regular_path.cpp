#include "machines/regular_path.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {

LabeledGraph word_to_path(const BitString& word) {
    check(!word.empty() && is_bit_string(word), "word_to_path: nonempty bit string");
    LabeledGraph g;
    for (char c : word) {
        g.add_node(BitString(1, c));
    }
    for (std::size_t i = 0; i + 1 < word.size(); ++i) {
        g.add_edge(i, i + 1);
    }
    return g;
}

std::optional<BitString> path_to_word(const LabeledGraph& g) {
    if (g.num_nodes() == 0 || !g.is_connected()) {
        return std::nullopt;
    }
    std::vector<NodeId> endpoints;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u).size() != 1) {
            return std::nullopt;
        }
        if (g.degree(u) > 2) {
            return std::nullopt;
        }
        if (g.degree(u) <= 1) {
            endpoints.push_back(u);
        }
    }
    if (g.num_nodes() == 1) {
        return g.label(0);
    }
    if (endpoints.size() != 2) {
        return std::nullopt; // a cycle
    }
    BitString word;
    NodeId prev = endpoints[0];
    NodeId current = endpoints[0];
    word += g.label(current);
    while (current != endpoints[1]) {
        const auto& nb = g.neighbors(current);
        const NodeId next = (nb[0] == prev && nb.size() > 1) ? nb[1] : nb[0];
        prev = current;
        current = next;
        word += g.label(current);
    }
    return word;
}

RegularPathVerifier::RegularPathVerifier(Dfa dfa)
    : NeighborhoodGatherMachine(2), dfa_(std::move(dfa)),
      state_bits_(bits_for(dfa_.num_states())) {
    dfa_.validate();
    check(dfa_.alphabet_size() >= 2, "RegularPathVerifier: need symbols 0 and 1");
}

BitString RegularPathVerifier::encode_certificate(bool has_prev,
                                                  bool prev_is_higher_id,
                                                  std::size_t state) const {
    BitString cert;
    cert.push_back(has_prev ? '1' : '0');
    cert.push_back(prev_is_higher_id ? '1' : '0');
    cert += encode_unsigned_width(state, state_bits_);
    return cert;
}

std::optional<RegularPathVerifier::DecodedCert>
RegularPathVerifier::decode(const std::string& cert) const {
    if (cert.size() != 2 + static_cast<std::size_t>(state_bits_) ||
        !is_bit_string(cert)) {
        return std::nullopt;
    }
    DecodedCert d;
    d.has_prev = cert[0] == '1';
    d.prev_is_higher_id = cert[1] == '1';
    d.state = decode_unsigned(cert.substr(2));
    if (d.state >= dfa_.num_states()) {
        return std::nullopt;
    }
    return d;
}

namespace {

std::string first_certificate(const std::string& list) {
    const auto parts = split_hash(list);
    return parts.empty() ? "" : parts[0];
}

} // namespace

std::string RegularPathVerifier::decide(const NeighborhoodView& view,
                                        StepMeter& meter) const {
    meter.charge(view.graph.num_nodes() + view.certs[view.self].size() + 8);
    const NodeId self = view.self;
    if (view.graph.degree(self) > 2 || view.graph.label(self).size() != 1) {
        return "0"; // outside the path domain
    }
    const auto mine = decode(first_certificate(view.certs[self]));
    if (!mine.has_value()) {
        return "0";
    }
    const std::size_t my_bit = view.graph.label(self) == "1" ? 1 : 0;

    // Resolve a node's prev-neighbor inside the view (sorted by identifier).
    auto prev_of = [&](NodeId u, const DecodedCert& d) -> std::optional<NodeId> {
        if (!d.has_prev) {
            return std::nullopt;
        }
        std::vector<NodeId> nb = view.graph.neighbors(u);
        if (nb.empty()) {
            return std::nullopt;
        }
        std::sort(nb.begin(), nb.end(),
                  [&](NodeId a, NodeId b) { return view.ids[a] < view.ids[b]; });
        return d.prev_is_higher_id ? nb.back() : nb.front();
    };

    const auto my_prev = prev_of(self, *mine);
    if (mine->has_prev && !my_prev.has_value()) {
        return "0"; // claimed a predecessor with no neighbors
    }

    if (!mine->has_prev) {
        // Start of the run: only endpoints (or isolated nodes) qualify, and
        // the state is the one-step run from the initial state.
        if (view.graph.degree(self) == 2) {
            return "0";
        }
        if (mine->state != dfa_.transition(dfa_.start(), my_bit)) {
            return "0";
        }
    } else {
        const NodeId p = *my_prev;
        const auto prev_cert = decode(first_certificate(view.certs[p]));
        if (!prev_cert.has_value()) {
            return "0";
        }
        // One DFA transition along the chain.
        if (mine->state != dfa_.transition(prev_cert->state, my_bit)) {
            return "0";
        }
        // The chain may not point back at me.
        const auto prevs_prev = prev_of(p, *prev_cert);
        if (prevs_prev.has_value() && *prevs_prev == self) {
            return "0";
        }
    }

    // Count neighbors that name me as their predecessor.
    std::size_t successors = 0;
    for (NodeId v : view.graph.neighbors(self)) {
        const auto theirs = decode(first_certificate(view.certs[v]));
        if (!theirs.has_value()) {
            return "0";
        }
        const auto their_prev = prev_of(v, *theirs);
        if (their_prev.has_value() && *their_prev == self) {
            ++successors;
        }
    }
    if (successors > 1) {
        return "0"; // the run forked
    }
    if (successors == 0) {
        // End of the run: acceptance.
        if (!dfa_.is_accepting(mine->state)) {
            return "0";
        }
    }
    return "1";
}

std::optional<CertificateAssignment>
RegularPathVerifier::eve_certificates(const LabeledGraph& g,
                                      const IdentifierAssignment& id) const {
    const std::size_t n = g.num_nodes();
    if (n == 1) {
        if (g.label(0).size() != 1) {
            return std::nullopt;
        }
        const std::size_t state =
            dfa_.transition(dfa_.start(), g.label(0) == "1" ? 1 : 0);
        if (!dfa_.is_accepting(state)) {
            return std::nullopt;
        }
        return CertificateAssignment(
            std::vector<BitString>{encode_certificate(false, false, state)});
    }
    std::vector<NodeId> endpoints;
    for (NodeId u = 0; u < n; ++u) {
        if (g.label(u).size() != 1 || g.degree(u) > 2) {
            return std::nullopt;
        }
        if (g.degree(u) == 1) {
            endpoints.push_back(u);
        }
    }
    if (endpoints.size() != 2) {
        return std::nullopt;
    }
    // Try both orientations; keep one whose run accepts.
    for (const NodeId start : {endpoints[0], endpoints[1]}) {
        std::vector<BitString> certs(n);
        NodeId prev = start;
        NodeId current = start;
        std::size_t state = dfa_.start();
        bool first = true;
        while (true) {
            state = dfa_.transition(state, g.label(current) == "1" ? 1 : 0);
            if (first) {
                certs[current] = encode_certificate(false, false, state);
                first = false;
            } else {
                // Is the predecessor the higher-id neighbor?
                const auto& nb = g.neighbors(current);
                BitString lowest = id(nb[0]);
                for (NodeId v : nb) {
                    lowest = std::min(lowest, id(v));
                }
                certs[current] =
                    encode_certificate(true, id(prev) != lowest, state);
            }
            const auto& nb = g.neighbors(current);
            const NodeId next = (nb[0] == prev && nb.size() > 1) ? nb[1] : nb[0];
            if (next == prev || (current != start && g.degree(current) == 1)) {
                break; // reached the other endpoint
            }
            prev = current;
            current = next;
        }
        if (dfa_.is_accepting(state)) {
            return CertificateAssignment(std::move(certs));
        }
    }
    return std::nullopt;
}

} // namespace lph
