#include "machines/verifiers.hpp"

#include "core/check.hpp"

namespace lph {

namespace {

/// First certificate of the '#'-joined list handed to a node.
std::string first_certificate(const std::string& list) {
    const auto parts = split_hash(list);
    return parts.empty() ? "" : parts[0];
}

} // namespace

ColoringVerifier::ColoringVerifier(int k) : NeighborhoodGatherMachine(1), k_(k) {
    check(k >= 1, "ColoringVerifier: k must be positive");
}

BitString ColoringVerifier::encode_color(int c) const {
    check(c >= 0 && c < k_, "ColoringVerifier::encode_color: color out of range");
    return encode_unsigned_width(static_cast<std::uint64_t>(c),
                                 bits_for(static_cast<std::uint64_t>(k_)));
}

int ColoringVerifier::decode_color(const std::string& cert) const {
    if (cert.size() != static_cast<std::size_t>(bits_for(static_cast<std::uint64_t>(k_))) ||
        !is_bit_string(cert)) {
        return -1;
    }
    const auto value = decode_unsigned(cert);
    return value < static_cast<std::uint64_t>(k_) ? static_cast<int>(value) : -1;
}

std::string ColoringVerifier::decide(const NeighborhoodView& view,
                                     StepMeter& meter) const {
    const int mine = decode_color(first_certificate(view.certs[view.self]));
    meter.charge(view.certs[view.self].size() + 1);
    if (mine < 0) {
        return "0";
    }
    for (NodeId v : view.graph.neighbors(view.self)) {
        meter.charge(view.certs[v].size() + 1);
        if (decode_color(first_certificate(view.certs[v])) == mine) {
            return "0";
        }
    }
    return "1";
}

BitString encode_valuation_certificate(const Valuation& valuation) {
    std::string text;
    for (const auto& [var, value] : valuation) {
        text += var;
        text += value ? "=1;" : "=0;";
    }
    BitString bits;
    bits.reserve(text.size() * 8);
    for (char c : text) {
        bits += encode_unsigned_width(static_cast<unsigned char>(c), 8);
    }
    return bits;
}

Valuation decode_valuation_certificate(const BitString& cert) {
    check(cert.size() % 8 == 0,
          "decode_valuation_certificate: length not a byte multiple");
    std::string text;
    for (std::size_t i = 0; i < cert.size(); i += 8) {
        text.push_back(static_cast<char>(decode_unsigned(cert.substr(i, 8))));
    }
    Valuation valuation;
    std::string current;
    for (char c : text) {
        if (c == ';') {
            const auto eq = current.find('=');
            check(eq != std::string::npos && eq + 2 == current.size(),
                  "decode_valuation_certificate: malformed entry");
            valuation[current.substr(0, eq)] = current[eq + 1] == '1';
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    check(current.empty(), "decode_valuation_certificate: trailing characters");
    return valuation;
}

std::string SatGraphVerifier::decide(const NeighborhoodView& view,
                                     StepMeter& meter) const {
    Valuation mine;
    BoolFormula formula;
    try {
        formula = decode_bool_label(view.graph.label(view.self));
        mine = decode_valuation_certificate(first_certificate(view.certs[view.self]));
    } catch (const precondition_error&) {
        return "0";
    }
    meter.charge(view.graph.label(view.self).size() +
                 view.certs[view.self].size());

    // The valuation must cover the formula's variables and satisfy it.
    for (const auto& var : bool_variables(formula)) {
        if (mine.find(var) == mine.end()) {
            return "0";
        }
    }
    if (!eval_bool(formula, mine)) {
        return "0";
    }
    // Consistency with neighbors on shared variables.
    for (NodeId v : view.graph.neighbors(view.self)) {
        meter.charge(view.certs[v].size() + 1);
        Valuation theirs;
        try {
            theirs = decode_valuation_certificate(first_certificate(view.certs[v]));
        } catch (const precondition_error&) {
            return "0";
        }
        for (const auto& [var, value] : mine) {
            const auto it = theirs.find(var);
            if (it != theirs.end() && it->second != value) {
                return "0";
            }
        }
    }
    return "1";
}

} // namespace lph
