#include "graph/generators.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {

LabeledGraph path_graph(std::size_t n, const BitString& label) {
    check(n >= 1, "path_graph: need at least one node");
    LabeledGraph g;
    for (std::size_t i = 0; i < n; ++i) {
        g.add_node(label);
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        g.add_edge(i, i + 1);
    }
    return g;
}

LabeledGraph cycle_graph(std::size_t n, const BitString& label) {
    check(n >= 3, "cycle_graph: need at least three nodes");
    LabeledGraph g = path_graph(n, label);
    g.add_edge(n - 1, 0);
    return g;
}

LabeledGraph complete_graph(std::size_t n, const BitString& label) {
    check(n >= 1, "complete_graph: need at least one node");
    LabeledGraph g;
    for (std::size_t i = 0; i < n; ++i) {
        g.add_node(label);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            g.add_edge(i, j);
        }
    }
    return g;
}

LabeledGraph star_graph(std::size_t n, const BitString& label) {
    check(n >= 2, "star_graph: need at least two nodes");
    LabeledGraph g;
    for (std::size_t i = 0; i < n; ++i) {
        g.add_node(label);
    }
    for (std::size_t i = 1; i < n; ++i) {
        g.add_edge(0, i);
    }
    return g;
}

LabeledGraph grid_graph(std::size_t rows, std::size_t cols, const BitString& label) {
    check(rows >= 1 && cols >= 1, "grid_graph: need positive dimensions");
    LabeledGraph g;
    for (std::size_t i = 0; i < rows * cols; ++i) {
        g.add_node(label);
    }
    const auto at = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                g.add_edge(at(r, c), at(r, c + 1));
            }
            if (r + 1 < rows) {
                g.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    return g;
}

LabeledGraph complete_bipartite_graph(std::size_t a, std::size_t b,
                                      const BitString& label) {
    check(a >= 1 && b >= 1, "complete_bipartite_graph: sides must be nonempty");
    LabeledGraph g;
    for (std::size_t i = 0; i < a + b; ++i) {
        g.add_node(label);
    }
    for (std::size_t i = 0; i < a; ++i) {
        for (std::size_t j = 0; j < b; ++j) {
            g.add_edge(i, a + j);
        }
    }
    return g;
}

LabeledGraph wheel_graph(std::size_t n, const BitString& label) {
    check(n >= 4, "wheel_graph: need at least four nodes");
    LabeledGraph g = cycle_graph(n - 1, label);
    const NodeId hub = g.add_node(label);
    for (NodeId u = 0; u < hub; ++u) {
        g.add_edge(hub, u);
    }
    return g;
}

LabeledGraph petersen_graph(const BitString& label) {
    LabeledGraph g;
    for (int i = 0; i < 10; ++i) {
        g.add_node(label);
    }
    // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
    for (NodeId i = 0; i < 5; ++i) {
        g.add_edge(i, (i + 1) % 5);
        g.add_edge(5 + i, 5 + (i + 2) % 5);
        g.add_edge(i, 5 + i);
    }
    return g;
}

LabeledGraph random_tree(std::size_t n, Rng& rng, const BitString& label) {
    check(n >= 1, "random_tree: need at least one node");
    LabeledGraph g;
    g.add_node(label);
    for (std::size_t i = 1; i < n; ++i) {
        const NodeId parent = rng.index(i);
        const NodeId child = g.add_node(label);
        g.add_edge(parent, child);
    }
    return g;
}

LabeledGraph random_connected_graph(std::size_t n, std::size_t extra_edges, Rng& rng,
                                    const BitString& label) {
    LabeledGraph g = random_tree(n, rng, label);
    std::vector<std::pair<NodeId, NodeId>> candidates;
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            if (!g.has_edge(u, v)) {
                candidates.emplace_back(u, v);
            }
        }
    }
    std::shuffle(candidates.begin(), candidates.end(), rng.engine());
    const std::size_t added = std::min(extra_edges, candidates.size());
    for (std::size_t i = 0; i < added; ++i) {
        g.add_edge(candidates[i].first, candidates[i].second);
    }
    return g;
}

void randomize_labels(LabeledGraph& g, std::size_t label_length, Rng& rng) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        BitString label(label_length, '0');
        for (char& c : label) {
            c = rng.chance(0.5) ? '1' : '0';
        }
        g.set_label(u, label);
    }
}

void set_all_labels(LabeledGraph& g, const BitString& label) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, label);
    }
}

} // namespace lph
