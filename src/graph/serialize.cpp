#include "graph/serialize.hpp"

#include "core/check.hpp"

#include <sstream>

namespace lph {

void write_graph(std::ostream& out, const LabeledGraph& g) {
    out << "graph " << g.num_nodes() << "\n";
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (!g.label(u).empty()) {
            out << "label " << u << " " << g.label(u) << "\n";
        }
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (u < v) {
                out << "edge " << u << " " << v << "\n";
            }
        }
    }
}

std::string graph_to_text(const LabeledGraph& g) {
    std::ostringstream out;
    write_graph(out, g);
    return out.str();
}

LabeledGraph read_graph(std::istream& in) {
    LabeledGraph g;
    bool have_header = false;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields(line);
        std::string directive;
        if (!(fields >> directive)) {
            continue; // blank or comment-only line
        }
        const std::string where = " (line " + std::to_string(line_number) + ")";
        if (directive == "graph") {
            check(!have_header, "read_graph: duplicate header" + where);
            std::size_t n = 0;
            check(static_cast<bool>(fields >> n), "read_graph: bad header" + where);
            for (std::size_t i = 0; i < n; ++i) {
                g.add_node();
            }
            have_header = true;
        } else if (directive == "label") {
            check(have_header, "read_graph: label before header" + where);
            std::size_t u = 0;
            std::string bits;
            check(static_cast<bool>(fields >> u >> bits),
                  "read_graph: bad label line" + where);
            check(u < g.num_nodes(), "read_graph: node out of range" + where);
            check(is_bit_string(bits), "read_graph: label not a bit string" + where);
            g.set_label(u, bits);
        } else if (directive == "edge") {
            check(have_header, "read_graph: edge before header" + where);
            std::size_t u = 0;
            std::size_t v = 0;
            check(static_cast<bool>(fields >> u >> v),
                  "read_graph: bad edge line" + where);
            check(u < g.num_nodes() && v < g.num_nodes(),
                  "read_graph: node out of range" + where);
            g.add_edge(u, v);
        } else {
            check(false, "read_graph: unknown directive '" + directive + "'" + where);
        }
    }
    check(have_header, "read_graph: missing 'graph <n>' header");
    return g;
}

LabeledGraph graph_from_text(const std::string& text) {
    std::istringstream in(text);
    return read_graph(in);
}

} // namespace lph
