#include "graph/serialize.hpp"

#include "core/check.hpp"

#include <sstream>

namespace lph {

void write_graph(std::ostream& out, const LabeledGraph& g) {
    out << "graph " << g.num_nodes() << "\n";
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (!g.label(u).empty()) {
            out << "label " << u << " " << g.label(u) << "\n";
        }
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (u < v) {
                out << "edge " << u << " " << v << "\n";
            }
        }
    }
}

std::string graph_to_text(const LabeledGraph& g) {
    std::ostringstream out;
    write_graph(out, g);
    return out.str();
}

namespace {

/// Strict non-negative integer parse: every malformed token ("-3", "2x",
/// "0xff", "") is rejected with the token quoted in the message, so a parse
/// failure names exactly what was read and where.
std::size_t parse_index(const std::string& token, const char* role,
                        const std::string& where) {
    check(!token.empty(), std::string("read_graph: missing ") + role + where);
    for (char c : token) {
        check(c >= '0' && c <= '9',
              std::string("read_graph: ") + role + " '" + token +
                  "' is not a non-negative integer" + where);
    }
    check(token.size() <= 18,
          std::string("read_graph: ") + role + " '" + token + "' out of range" +
              where);
    std::size_t value = 0;
    for (char c : token) {
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
}

} // namespace

LabeledGraph read_graph(std::istream& in, const GraphReadLimits& limits) {
    LabeledGraph g;
    bool have_header = false;
    std::vector<bool> labeled;
    std::string line;
    std::size_t line_number = 0;
    std::size_t bytes_read = 0;
    std::size_t edges_read = 0;
    while (std::getline(in, line)) {
        ++line_number;
        bytes_read += line.size() + 1;
        check(limits.max_bytes == 0 || bytes_read <= limits.max_bytes,
              "read_graph: payload exceeds " + std::to_string(limits.max_bytes) +
                  " bytes (line " + std::to_string(line_number) + ")");
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields(line);
        std::string directive;
        if (!(fields >> directive)) {
            continue; // blank or comment-only line
        }
        const std::string where = " (line " + std::to_string(line_number) + ")";
        const auto next_token = [&fields]() {
            std::string token;
            fields >> token;
            return token; // empty when the line is exhausted
        };
        const auto reject_trailing = [&next_token, &where](const char* what) {
            const std::string extra = next_token();
            check(extra.empty(), std::string("read_graph: trailing junk '") +
                                     extra + "' after " + what + where);
        };
        if (directive == "graph") {
            check(!have_header, "read_graph: duplicate 'graph' header" + where);
            const std::size_t n =
                parse_index(next_token(), "node count", where);
            reject_trailing("header");
            check(limits.max_nodes == 0 || n <= limits.max_nodes,
                  "read_graph: node count " + std::to_string(n) +
                      " exceeds the limit of " +
                      std::to_string(limits.max_nodes) + where);
            for (std::size_t i = 0; i < n; ++i) {
                g.add_node();
            }
            labeled.assign(n, false);
            have_header = true;
        } else if (directive == "label") {
            check(have_header, "read_graph: label before header" + where);
            const std::size_t u = parse_index(next_token(), "node id", where);
            const std::string bits = next_token();
            check(!bits.empty(), "read_graph: missing label bits" + where);
            reject_trailing("label");
            check(u < g.num_nodes(),
                  "read_graph: node " + std::to_string(u) + " out of range" +
                      where);
            check(is_bit_string(bits), "read_graph: label '" + bits +
                                           "' is not a bit string" + where);
            check(limits.max_label_bits == 0 ||
                      bits.size() <= limits.max_label_bits,
                  "read_graph: label of " + std::to_string(bits.size()) +
                      " bits exceeds the limit of " +
                      std::to_string(limits.max_label_bits) + where);
            check(!labeled[u], "read_graph: duplicate label for node " +
                                  std::to_string(u) + where);
            labeled[u] = true;
            g.set_label(u, bits);
        } else if (directive == "edge") {
            check(have_header, "read_graph: edge before header" + where);
            const std::size_t u = parse_index(next_token(), "node id", where);
            const std::size_t v = parse_index(next_token(), "node id", where);
            reject_trailing("edge");
            ++edges_read;
            check(limits.max_edges == 0 || edges_read <= limits.max_edges,
                  "read_graph: edge count exceeds the limit of " +
                      std::to_string(limits.max_edges) + where);
            check(u < g.num_nodes() && v < g.num_nodes(),
                  "read_graph: edge {" + std::to_string(u) + "," +
                      std::to_string(v) + "} out of range" + where);
            check(u != v,
                  "read_graph: self-loop at node " + std::to_string(u) + where);
            check(!g.has_edge(u, v), "read_graph: duplicate edge {" +
                                         std::to_string(u) + "," +
                                         std::to_string(v) + "}" + where);
            g.add_edge(u, v);
        } else {
            check(false, "read_graph: unknown directive '" + directive + "'" + where);
        }
    }
    check(have_header, "read_graph: missing 'graph <n>' header");
    return g;
}

LabeledGraph read_graph(std::istream& in) { return read_graph(in, {}); }

LabeledGraph graph_from_text(const std::string& text, const GraphReadLimits& limits) {
    check(limits.max_bytes == 0 || text.size() <= limits.max_bytes,
          "read_graph: payload of " + std::to_string(text.size()) +
              " bytes exceeds the limit of " + std::to_string(limits.max_bytes) +
              " (line 1)");
    std::istringstream in(text);
    return read_graph(in, limits);
}

LabeledGraph graph_from_text(const std::string& text) {
    return graph_from_text(text, {});
}

} // namespace lph
