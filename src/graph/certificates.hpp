#pragma once

#include "core/bitstring.hpp"
#include "graph/graph.hpp"
#include "graph/identifiers.hpp"
#include "graph/polynomial.hpp"

#include <vector>

namespace lph {

/// A certificate assignment kappa : V -> {0,1}* (Section 3).
class CertificateAssignment {
public:
    CertificateAssignment() = default;
    explicit CertificateAssignment(std::vector<BitString> certs)
        : certs_(std::move(certs)) {}

    /// The all-empty assignment for an n-node graph (the "trivial"
    /// certificate-list assignment of Section 4).
    static CertificateAssignment trivial(std::size_t n) {
        return CertificateAssignment(std::vector<BitString>(n));
    }

    const BitString& operator()(NodeId u) const { return certs_.at(u); }
    void set(NodeId u, BitString cert) { certs_.at(u) = std::move(cert); }
    std::size_t size() const { return certs_.size(); }

    bool operator==(const CertificateAssignment& other) const {
        return certs_ == other.certs_;
    }

private:
    std::vector<BitString> certs_;
};

/// The paper's measure of the information in u's r-neighborhood:
/// sum over v in N_r(u) of 1 + len(label(v)) + len(id(v)).
std::uint64_t neighborhood_information(const LabeledGraph& g,
                                       const IdentifierAssignment& id, NodeId u, int r);

/// True when len(kappa(u)) <= p(neighborhood_information(g,id,u,r)) for every
/// node u, i.e. kappa is (r,p)-bounded (Section 3).
bool is_rp_bounded(const CertificateAssignment& kappa, const LabeledGraph& g,
                   const IdentifierAssignment& id, int r, const Polynomial& p);

/// Several certificate assignments joined per node with '#' separators:
/// kappa_1(u) # kappa_2(u) # ... # kappa_l(u) (Section 3).
class CertificateListAssignment {
public:
    CertificateListAssignment() = default;

    /// The empty list over an n-node graph (every node gets the empty string).
    static CertificateListAssignment empty(std::size_t n);

    /// Concatenation kappa_1 . kappa_2 . ... . kappa_l.
    static CertificateListAssignment
    concatenate(const std::vector<CertificateAssignment>& kappas, std::size_t n);

    /// Wraps pre-joined per-node list strings verbatim.  Unlike concatenate,
    /// the strings are NOT validated — this is how adversarial inputs
    /// (e.g. fault-injected certificates) are constructed.
    static CertificateListAssignment from_raw(std::vector<std::string> lists,
                                              std::size_t layers);

    /// The string lambda#kappa_1#...#kappa_l handed to node u.
    std::string operator()(NodeId u) const { return lists_.at(u); }

    /// Same string without the copy (hot paths: runners, view-cache keys).
    const std::string& at(NodeId u) const { return lists_.at(u); }

    std::size_t size() const { return lists_.size(); }
    std::size_t layers() const { return layers_; }

    /// Recovers the i-th certificate assignment (0-based layer index).
    CertificateAssignment layer(std::size_t i) const;

private:
    std::vector<std::string> lists_;
    std::size_t layers_ = 0;
};

} // namespace lph
