#pragma once

#include "core/bitstring.hpp"
#include "graph/graph.hpp"

namespace lph {

/// An assignment of bit-string identifiers to the nodes of a graph
/// (Section 3).  Identifiers are compared lexicographically, which on this
/// representation is std::string's operator<.
class IdentifierAssignment {
public:
    IdentifierAssignment() = default;
    explicit IdentifierAssignment(std::vector<BitString> ids) : ids_(std::move(ids)) {}

    const BitString& operator()(NodeId u) const { return ids_.at(u); }
    const BitString& id(NodeId u) const { return ids_.at(u); }
    void set(NodeId u, BitString id) { ids_.at(u) = std::move(id); }
    std::size_t size() const { return ids_.size(); }

    /// True when any two distinct nodes lying in the r_id-neighborhood of a
    /// common node (equivalently, within distance 2*r_id of each other) have
    /// distinct identifiers.
    bool is_locally_unique(const LabeledGraph& g, int r_id) const;

    /// True when the assignment is r_id-locally unique *and* small, i.e.
    /// len(id(u)) <= ceil(log2 card(N_{2 r_id}(u))) for every node (Section 3).
    bool is_small(const LabeledGraph& g, int r_id) const;

    /// True when all identifiers are pairwise distinct.
    bool is_globally_unique() const;

private:
    std::vector<BitString> ids_;
};

/// Builds a small r_id-locally unique identifier assignment greedily
/// (Remark 1): each node receives the least value unused within distance
/// 2*r_id, encoded with just enough bits for its 2*r_id-ball cardinality.
IdentifierAssignment make_small_local_ids(const LabeledGraph& g, int r_id);

/// Globally unique identifiers: node u gets the binary encoding of u, padded
/// to a common width.
IdentifierAssignment make_global_ids(const LabeledGraph& g);

/// Cyclic identifiers for cycle graphs (proof of Proposition 23): node i gets
/// (i mod period) encoded in fixed width.  Requires the graph to be a cycle
/// whose length is a multiple of `period`, so the assignment is
/// r_id-locally unique whenever period >= 2*r_id + 1.
IdentifierAssignment make_cyclic_ids(const LabeledGraph& g, std::size_t period);

} // namespace lph
