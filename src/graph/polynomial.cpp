#include "graph/polynomial.hpp"

#include <limits>
#include <sstream>

namespace lph {
namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) {
        return 0;
    }
    if (a > kSaturated / b) {
        return kSaturated;
    }
    return a * b;
}

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
    return (a > kSaturated - b) ? kSaturated : a + b;
}

} // namespace

Polynomial Polynomial::monomial(std::uint64_t c, unsigned k) {
    std::vector<std::uint64_t> coefficients(k + 1, 0);
    coefficients[k] = c;
    return Polynomial(std::move(coefficients));
}

std::uint64_t Polynomial::evaluate(std::uint64_t n) const {
    // Horner's method with saturation.
    std::uint64_t value = 0;
    for (auto it = coefficients_.rbegin(); it != coefficients_.rend(); ++it) {
        value = saturating_add(saturating_mul(value, n), *it);
    }
    return value;
}

unsigned Polynomial::degree() const {
    for (std::size_t i = coefficients_.size(); i > 0; --i) {
        if (coefficients_[i - 1] != 0) {
            return static_cast<unsigned>(i - 1);
        }
    }
    return 0;
}

bool Polynomial::dominated_by(const Polynomial& other) const {
    for (std::size_t i = 0; i < coefficients_.size(); ++i) {
        const std::uint64_t mine = coefficients_[i];
        const std::uint64_t theirs =
            i < other.coefficients_.size() ? other.coefficients_[i] : 0;
        if (mine > theirs) {
            return false;
        }
    }
    return true;
}

Polynomial Polynomial::max(const Polynomial& a, const Polynomial& b) {
    std::vector<std::uint64_t> coefficients(
        std::max(a.coefficients_.size(), b.coefficients_.size()), 0);
    for (std::size_t i = 0; i < coefficients.size(); ++i) {
        const std::uint64_t ca = i < a.coefficients_.size() ? a.coefficients_[i] : 0;
        const std::uint64_t cb = i < b.coefficients_.size() ? b.coefficients_[i] : 0;
        coefficients[i] = std::max(ca, cb);
    }
    return Polynomial(std::move(coefficients));
}

std::string Polynomial::to_string() const {
    std::ostringstream out;
    bool first = true;
    for (std::size_t i = coefficients_.size(); i > 0; --i) {
        const std::uint64_t c = coefficients_[i - 1];
        if (c == 0 && !(first && i == 1)) {
            continue;
        }
        if (!first) {
            out << " + ";
        }
        first = false;
        const unsigned k = static_cast<unsigned>(i - 1);
        if (k == 0) {
            out << c;
        } else if (c == 1) {
            out << "n";
            if (k > 1) out << "^" << k;
        } else {
            out << c << "n";
            if (k > 1) out << "^" << k;
        }
    }
    if (first) {
        out << 0;
    }
    return out.str();
}

} // namespace lph
