#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace lph {

/// A polynomial with nonnegative integer coefficients, used for the step-time
/// and certificate-size bounds of the paper (p : N -> N).
///
/// Evaluation saturates at the maximum uint64 value instead of overflowing,
/// which is safe because the bounds are only ever compared with <=.
class Polynomial {
public:
    Polynomial() = default;

    /// coefficients[i] is the coefficient of n^i.
    explicit Polynomial(std::vector<std::uint64_t> coefficients)
        : coefficients_(std::move(coefficients)) {}

    Polynomial(std::initializer_list<std::uint64_t> coefficients)
        : coefficients_(coefficients) {}

    /// The constant polynomial c.
    static Polynomial constant(std::uint64_t c) { return Polynomial({c}); }

    /// The monomial c * n^k.
    static Polynomial monomial(std::uint64_t c, unsigned k);

    std::uint64_t operator()(std::uint64_t n) const { return evaluate(n); }
    std::uint64_t evaluate(std::uint64_t n) const;

    /// Degree; 0 for the zero polynomial.
    unsigned degree() const;

    /// True when this(n) <= other(n) is guaranteed coefficientwise.
    bool dominated_by(const Polynomial& other) const;

    /// Coefficientwise maximum — a polynomial bounding both arguments.
    static Polynomial max(const Polynomial& a, const Polynomial& b);

    std::string to_string() const;

private:
    std::vector<std::uint64_t> coefficients_;
};

} // namespace lph
