#pragma once

#include "graph/graph.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>

namespace lph {

/// Size guards for parsing untrusted graph payloads (the service wire format
/// reuses this parser on attacker-controlled request lines).  0 disables a
/// limit.  Violations are rejected with precondition_error messages that name
/// the limit and the offending line, like every other parse error here.
struct GraphReadLimits {
    std::size_t max_nodes = 0;      ///< cap on the 'graph <n>' header count
    std::size_t max_edges = 0;      ///< cap on the number of edge directives
    std::size_t max_label_bits = 0; ///< cap on one label's length
    std::size_t max_bytes = 0;      ///< cap on the total payload size
};

/// Plain-text graph format (one directive per line, '#' comments):
///
///     graph <n>
///     label <node> <bits>
///     edge <u> <v>
///
/// Nodes are 0-based; omitted labels default to the empty string.  Round
/// trips exactly through to_text/from_text.
std::string graph_to_text(const LabeledGraph& g);

/// Parses the format above; throws precondition_error on malformed input
/// (any non-directive line — including trailing garbage after a complete
/// graph — is malformed, with the line number in the message).
LabeledGraph graph_from_text(const std::string& text);

/// Same, enforcing the given size limits (max_bytes checked up front).
LabeledGraph graph_from_text(const std::string& text, const GraphReadLimits& limits);

/// Stream variants.
void write_graph(std::ostream& out, const LabeledGraph& g);
LabeledGraph read_graph(std::istream& in);
LabeledGraph read_graph(std::istream& in, const GraphReadLimits& limits);

} // namespace lph
