#pragma once

#include "graph/graph.hpp"

#include <iosfwd>
#include <string>

namespace lph {

/// Plain-text graph format (one directive per line, '#' comments):
///
///     graph <n>
///     label <node> <bits>
///     edge <u> <v>
///
/// Nodes are 0-based; omitted labels default to the empty string.  Round
/// trips exactly through to_text/from_text.
std::string graph_to_text(const LabeledGraph& g);

/// Parses the format above; throws precondition_error on malformed input.
LabeledGraph graph_from_text(const std::string& text);

/// Stream variants.
void write_graph(std::ostream& out, const LabeledGraph& g);
LabeledGraph read_graph(std::istream& in);

} // namespace lph
