#include "graph/isomorphism.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {
namespace {

/// Backtracking matcher: assigns images for nodes of `a` in order.
class Matcher {
public:
    Matcher(const LabeledGraph& a, const LabeledGraph& b) : a_(a), b_(b) {}

    std::optional<std::vector<NodeId>> run() {
        const std::size_t n = a_.num_nodes();
        mapping_.assign(n, 0);
        used_.assign(n, false);
        if (extend(0)) {
            return mapping_;
        }
        return std::nullopt;
    }

private:
    bool extend(NodeId u) {
        const std::size_t n = a_.num_nodes();
        if (u == n) {
            return true;
        }
        for (NodeId image = 0; image < n; ++image) {
            if (used_[image] || !compatible(u, image)) {
                continue;
            }
            mapping_[u] = image;
            used_[image] = true;
            if (extend(u + 1)) {
                return true;
            }
            used_[image] = false;
        }
        return false;
    }

    bool compatible(NodeId u, NodeId image) const {
        if (a_.degree(u) != b_.degree(image) || a_.label(u) != b_.label(image)) {
            return false;
        }
        // Edges between u and already-mapped nodes must be mirrored exactly.
        for (NodeId v = 0; v < u; ++v) {
            if (a_.has_edge(u, v) != b_.has_edge(image, mapping_[v])) {
                return false;
            }
        }
        return true;
    }

    const LabeledGraph& a_;
    const LabeledGraph& b_;
    std::vector<NodeId> mapping_;
    std::vector<bool> used_;
};

} // namespace

std::optional<std::vector<NodeId>> find_isomorphism(const LabeledGraph& a,
                                                    const LabeledGraph& b) {
    if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
        return std::nullopt;
    }
    // Cheap invariant: multiset of (degree, label) pairs must agree.
    using Key = std::pair<std::size_t, BitString>;
    std::vector<Key> ka;
    std::vector<Key> kb;
    for (NodeId u = 0; u < a.num_nodes(); ++u) {
        ka.emplace_back(a.degree(u), a.label(u));
        kb.emplace_back(b.degree(u), b.label(u));
    }
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    if (ka != kb) {
        return std::nullopt;
    }
    return Matcher(a, b).run();
}

LabeledGraph permute_graph(const LabeledGraph& g, const std::vector<NodeId>& perm) {
    check(perm.size() == g.num_nodes(), "permute_graph: permutation size mismatch");
    LabeledGraph h;
    std::vector<NodeId> inverse(perm.size());
    for (NodeId u = 0; u < perm.size(); ++u) {
        check(perm[u] < perm.size(), "permute_graph: index out of range");
        inverse[perm[u]] = u;
    }
    for (NodeId w = 0; w < perm.size(); ++w) {
        h.add_node(g.label(inverse[w]));
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (u < v) {
                h.add_edge(perm[u], perm[v]);
            }
        }
    }
    return h;
}

} // namespace lph
