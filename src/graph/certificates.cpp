#include "graph/certificates.hpp"

#include "core/check.hpp"

namespace lph {

std::uint64_t neighborhood_information(const LabeledGraph& g,
                                       const IdentifierAssignment& id, NodeId u,
                                       int r) {
    std::uint64_t total = 0;
    for (NodeId v : g.ball(u, r)) {
        total += 1 + g.label(v).size() + id(v).size();
    }
    return total;
}

bool is_rp_bounded(const CertificateAssignment& kappa, const LabeledGraph& g,
                   const IdentifierAssignment& id, int r, const Polynomial& p) {
    check(kappa.size() == g.num_nodes(), "is_rp_bounded: size mismatch");
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (kappa(u).size() > p(neighborhood_information(g, id, u, r))) {
            return false;
        }
    }
    return true;
}

CertificateListAssignment CertificateListAssignment::empty(std::size_t n) {
    CertificateListAssignment list;
    list.lists_.assign(n, "");
    list.layers_ = 0;
    return list;
}

CertificateListAssignment
CertificateListAssignment::concatenate(const std::vector<CertificateAssignment>& kappas,
                                       std::size_t n) {
    CertificateListAssignment list;
    list.lists_.assign(n, "");
    list.layers_ = kappas.size();
    for (std::size_t u = 0; u < n; ++u) {
        std::vector<std::string> parts;
        parts.reserve(kappas.size());
        for (const auto& kappa : kappas) {
            check(kappa.size() == n, "CertificateListAssignment: size mismatch");
            parts.push_back(kappa(u));
        }
        list.lists_[u] = join_hash(parts);
    }
    return list;
}

CertificateListAssignment
CertificateListAssignment::from_raw(std::vector<std::string> lists,
                                    std::size_t layers) {
    CertificateListAssignment list;
    list.lists_ = std::move(lists);
    list.layers_ = layers;
    return list;
}

CertificateAssignment CertificateListAssignment::layer(std::size_t i) const {
    check(i < layers_, "CertificateListAssignment::layer: index out of range");
    std::vector<BitString> certs(lists_.size());
    for (std::size_t u = 0; u < lists_.size(); ++u) {
        const auto parts = split_hash(lists_[u]);
        check(parts.size() == layers_, "CertificateListAssignment: malformed list");
        certs[u] = parts[i];
    }
    return CertificateAssignment(std::move(certs));
}

} // namespace lph
