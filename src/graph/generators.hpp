#pragma once

#include "core/rng.hpp"
#include "graph/graph.hpp"

#include <vector>

namespace lph {

/// Path with n nodes (n >= 1), all labeled `label`.
LabeledGraph path_graph(std::size_t n, const BitString& label = "1");

/// Cycle with n nodes (n >= 3), all labeled `label`.
LabeledGraph cycle_graph(std::size_t n, const BitString& label = "1");

/// Complete graph on n nodes (n >= 1).
LabeledGraph complete_graph(std::size_t n, const BitString& label = "1");

/// Star with one hub and n-1 leaves (n >= 2).
LabeledGraph star_graph(std::size_t n, const BitString& label = "1");

/// rows x cols grid (rows, cols >= 1, rows*cols >= 1).
LabeledGraph grid_graph(std::size_t rows, std::size_t cols,
                        const BitString& label = "1");

/// Complete bipartite graph K_{a,b} (a, b >= 1).
LabeledGraph complete_bipartite_graph(std::size_t a, std::size_t b,
                                      const BitString& label = "1");

/// Wheel: a cycle of n-1 nodes plus a hub adjacent to all of them (n >= 4).
LabeledGraph wheel_graph(std::size_t n, const BitString& label = "1");

/// The Petersen graph (10 nodes, 3-regular): the classic hypohamiltonian
/// instance — 3-chromatic, non-Hamiltonian, non-Eulerian.
LabeledGraph petersen_graph(const BitString& label = "1");

/// Uniform random labeled tree on n nodes (random attachment).
LabeledGraph random_tree(std::size_t n, Rng& rng, const BitString& label = "1");

/// Random connected graph: a random tree plus `extra_edges` additional
/// distinct non-tree edges (clamped to the number available).
LabeledGraph random_connected_graph(std::size_t n, std::size_t extra_edges, Rng& rng,
                                    const BitString& label = "1");

/// Assigns each node an independent random label of the given length.
void randomize_labels(LabeledGraph& g, std::size_t label_length, Rng& rng);

/// Sets every node's label to `label`.
void set_all_labels(LabeledGraph& g, const BitString& label);

} // namespace lph
