#include "graph/graph.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace lph {

void LabeledGraph::check_node(NodeId u) const {
    check(u < adjacency_.size(), "LabeledGraph: node id out of range");
}

NodeId LabeledGraph::add_node(BitString label) {
    check(is_bit_string(label), "LabeledGraph::add_node: label must be a bit string");
    adjacency_.emplace_back();
    labels_.push_back(std::move(label));
    return adjacency_.size() - 1;
}

void LabeledGraph::add_edge(NodeId u, NodeId v) {
    check_node(u);
    check_node(v);
    check(u != v, "LabeledGraph::add_edge: self-loops are not allowed");
    check(!has_edge(u, v), "LabeledGraph::add_edge: duplicate edge");
    auto insert_sorted = [](std::vector<NodeId>& list, NodeId w) {
        list.insert(std::lower_bound(list.begin(), list.end(), w), w);
    };
    insert_sorted(adjacency_[u], v);
    insert_sorted(adjacency_[v], u);
    ++num_edges_;
}

void LabeledGraph::remove_edge(NodeId u, NodeId v) {
    check_node(u);
    check_node(v);
    check(has_edge(u, v), "LabeledGraph::remove_edge: no such edge");
    auto erase_sorted = [](std::vector<NodeId>& list, NodeId w) {
        list.erase(std::lower_bound(list.begin(), list.end(), w));
    };
    erase_sorted(adjacency_[u], v);
    erase_sorted(adjacency_[v], u);
    --num_edges_;
}

void LabeledGraph::remove_node(NodeId u) {
    check_node(u);
    check(adjacency_[u].empty(),
          "LabeledGraph::remove_node: node must be isolated");
    adjacency_.erase(adjacency_.begin() + static_cast<std::ptrdiff_t>(u));
    labels_.erase(labels_.begin() + static_cast<std::ptrdiff_t>(u));
    for (auto& list : adjacency_) {
        for (NodeId& w : list) {
            if (w > u) {
                --w;
            }
        }
    }
}

const std::vector<NodeId>& LabeledGraph::neighbors(NodeId u) const {
    check_node(u);
    return adjacency_[u];
}

bool LabeledGraph::has_edge(NodeId u, NodeId v) const {
    check_node(u);
    check_node(v);
    const auto& list = adjacency_[u];
    return std::binary_search(list.begin(), list.end(), v);
}

const BitString& LabeledGraph::label(NodeId u) const {
    check_node(u);
    return labels_[u];
}

void LabeledGraph::set_label(NodeId u, BitString label) {
    check_node(u);
    check(is_bit_string(label), "LabeledGraph::set_label: label must be a bit string");
    labels_[u] = std::move(label);
}

std::size_t LabeledGraph::structural_degree(NodeId u) const {
    check_node(u);
    return degree(u) + labels_[u].size();
}

std::size_t LabeledGraph::max_structural_degree() const {
    std::size_t max_deg = 0;
    for (NodeId u = 0; u < num_nodes(); ++u) {
        max_deg = std::max(max_deg, structural_degree(u));
    }
    return max_deg;
}

bool LabeledGraph::is_connected() const {
    if (num_nodes() == 0) {
        return false;
    }
    const auto dist = distances_from(0);
    return std::none_of(dist.begin(), dist.end(), [](int d) { return d < 0; });
}

void LabeledGraph::validate() const {
    check(num_nodes() > 0, "LabeledGraph::validate: graph is empty");
    check(is_connected(), "LabeledGraph::validate: graph is not connected");
}

std::vector<int> LabeledGraph::distances_from(NodeId u) const {
    check_node(u);
    std::vector<int> dist(num_nodes(), -1);
    std::deque<NodeId> queue{u};
    dist[u] = 0;
    while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop_front();
        for (NodeId w : adjacency_[v]) {
            if (dist[w] < 0) {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

int LabeledGraph::diameter() const {
    check(is_connected(), "LabeledGraph::diameter: graph must be connected");
    int diam = 0;
    for (NodeId u = 0; u < num_nodes(); ++u) {
        const auto dist = distances_from(u);
        diam = std::max(diam, *std::max_element(dist.begin(), dist.end()));
    }
    return diam;
}

std::vector<NodeId> LabeledGraph::ball(NodeId u, int r) const {
    check(r >= 0, "LabeledGraph::ball: negative radius");
    const auto dist = distances_from(u);
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < num_nodes(); ++v) {
        if (dist[v] >= 0 && dist[v] <= r) {
            nodes.push_back(v);
        }
    }
    return nodes;
}

InducedSubgraph LabeledGraph::induced(const std::vector<NodeId>& nodes) const {
    InducedSubgraph result;
    for (NodeId u : nodes) {
        check_node(u);
        check(result.from_original.find(u) == result.from_original.end(),
              "LabeledGraph::induced: duplicate node");
        const NodeId sub = result.graph.add_node(labels_[u]);
        result.to_original.push_back(u);
        result.from_original.emplace(u, sub);
    }
    for (NodeId u : nodes) {
        for (NodeId v : adjacency_[u]) {
            if (v > u) {
                const auto it = result.from_original.find(v);
                if (it != result.from_original.end()) {
                    result.graph.add_edge(result.from_original.at(u), it->second);
                }
            }
        }
    }
    return result;
}

InducedSubgraph LabeledGraph::neighborhood(NodeId u, int r) const {
    return induced(ball(u, r));
}

std::string LabeledGraph::to_dot(const std::string& name) const {
    std::ostringstream out;
    out << "graph " << name << " {\n";
    for (NodeId u = 0; u < num_nodes(); ++u) {
        out << "  n" << u << " [label=\"" << u << ":" << labels_[u] << "\"];\n";
    }
    for (NodeId u = 0; u < num_nodes(); ++u) {
        for (NodeId v : adjacency_[u]) {
            if (v > u) {
                out << "  n" << u << " -- n" << v << ";\n";
            }
        }
    }
    out << "}\n";
    return out.str();
}

bool LabeledGraph::operator==(const LabeledGraph& other) const {
    return adjacency_ == other.adjacency_ && labels_ == other.labels_;
}

LabeledGraph single_node_graph(BitString label) {
    LabeledGraph g;
    g.add_node(std::move(label));
    return g;
}

} // namespace lph
