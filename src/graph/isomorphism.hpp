#pragma once

#include "graph/graph.hpp"

#include <optional>
#include <vector>

namespace lph {

/// Searches for a label-preserving graph isomorphism from a to b by
/// backtracking with degree/label pruning.  Intended for the small instances
/// used in tests and experiments (graph properties must be closed under
/// isomorphism, Section 3, so tests verify invariance with this).
///
/// Returns the node mapping a -> b, or nullopt when the graphs are not
/// isomorphic.
std::optional<std::vector<NodeId>> find_isomorphism(const LabeledGraph& a,
                                                    const LabeledGraph& b);

inline bool are_isomorphic(const LabeledGraph& a, const LabeledGraph& b) {
    return find_isomorphism(a, b).has_value();
}

/// Applies a node permutation to a graph: node u of g becomes node perm[u]
/// of the result.  Used to test isomorphism invariance of deciders.
LabeledGraph permute_graph(const LabeledGraph& g, const std::vector<NodeId>& perm);

} // namespace lph
