#include "graph/identifiers.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace lph {

bool IdentifierAssignment::is_locally_unique(const LabeledGraph& g, int r_id) const {
    check(ids_.size() == g.num_nodes(),
          "IdentifierAssignment: size does not match graph");
    check(r_id >= 0, "IdentifierAssignment: negative radius");
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const auto nearby = g.ball(u, 2 * r_id);
        for (NodeId v : nearby) {
            if (v != u && ids_[u] == ids_[v]) {
                return false;
            }
        }
    }
    return true;
}

bool IdentifierAssignment::is_small(const LabeledGraph& g, int r_id) const {
    if (!is_locally_unique(g, r_id)) {
        return false;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const std::size_t ball_size = g.ball(u, 2 * r_id).size();
        const std::size_t limit =
            ball_size <= 1 ? 0 : static_cast<std::size_t>(bits_for(ball_size));
        if (ids_[u].size() > limit) {
            return false;
        }
    }
    return true;
}

bool IdentifierAssignment::is_globally_unique() const {
    std::unordered_set<BitString> seen(ids_.begin(), ids_.end());
    return seen.size() == ids_.size();
}

IdentifierAssignment make_small_local_ids(const LabeledGraph& g, int r_id) {
    check(r_id >= 0, "make_small_local_ids: negative radius");
    const std::size_t n = g.num_nodes();
    std::vector<std::uint64_t> values(n, 0);
    std::vector<bool> assigned(n, false);
    std::vector<BitString> ids(n);
    for (NodeId u = 0; u < n; ++u) {
        const auto nearby = g.ball(u, 2 * r_id);
        std::vector<std::uint64_t> used;
        for (NodeId v : nearby) {
            if (assigned[v]) {
                used.push_back(values[v]);
            }
        }
        std::sort(used.begin(), used.end());
        std::uint64_t value = 0;
        for (std::uint64_t taken : used) {
            if (taken == value) {
                ++value;
            } else if (taken > value) {
                break;
            }
        }
        values[u] = value;
        assigned[u] = true;
        // Width: enough bits for the ball cardinality; 0 bits for a lone node.
        const std::size_t ball_size = nearby.size();
        if (ball_size <= 1) {
            ids[u] = "";
        } else {
            ids[u] = encode_unsigned_width(value, bits_for(ball_size));
        }
    }
    return IdentifierAssignment(std::move(ids));
}

IdentifierAssignment make_global_ids(const LabeledGraph& g) {
    const std::size_t n = g.num_nodes();
    const int width = bits_for(n);
    std::vector<BitString> ids(n);
    for (NodeId u = 0; u < n; ++u) {
        ids[u] = encode_unsigned_width(u, width);
    }
    return IdentifierAssignment(std::move(ids));
}

IdentifierAssignment make_cyclic_ids(const LabeledGraph& g, std::size_t period) {
    check(period > 0, "make_cyclic_ids: period must be positive");
    const std::size_t n = g.num_nodes();
    check(n % period == 0, "make_cyclic_ids: cycle length must be a multiple of period");
    for (NodeId u = 0; u < n; ++u) {
        check(g.degree(u) == 2 || n <= 2, "make_cyclic_ids: graph is not a cycle");
    }
    const int width = bits_for(period);
    std::vector<BitString> ids(n);
    // Walk around the cycle so that ids follow the cyclic order, not the
    // (arbitrary) node numbering.
    NodeId prev = 0;
    NodeId current = 0;
    for (std::size_t step = 0; step < n; ++step) {
        ids[current] = encode_unsigned_width(step % period, width);
        const auto& nb = g.neighbors(current);
        const NodeId next = (nb[0] == prev && nb.size() > 1) ? nb[1] : nb[0];
        prev = current;
        current = next;
    }
    return IdentifierAssignment(std::move(ids));
}

} // namespace lph
