#pragma once

#include "core/bitstring.hpp"

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace lph {

/// Index of a node within a LabeledGraph (dense, 0-based).
using NodeId = std::size_t;

struct InducedSubgraph;

/// A finite, simple, undirected, labeled graph (Section 3 of the paper).
///
/// Nodes carry bit-string labels.  The paper additionally requires graphs to
/// be connected; construction is incremental, so connectivity is checked via
/// is_connected() / validate() rather than enforced per edge.
class LabeledGraph {
public:
    LabeledGraph() = default;

    /// Adds an isolated node with the given label and returns its id.
    NodeId add_node(BitString label = "");

    /// Adds the undirected edge {u,v}; self-loops and duplicates are rejected.
    void add_edge(NodeId u, NodeId v);

    /// Removes the undirected edge {u,v}; the edge must exist.
    void remove_edge(NodeId u, NodeId v);

    /// Removes node u, which must be isolated (degree 0); every node with a
    /// higher id is renumbered down by one.
    void remove_node(NodeId u);

    std::size_t num_nodes() const { return adjacency_.size(); }
    std::size_t num_edges() const { return num_edges_; }

    /// Neighbors of u in ascending NodeId order.
    const std::vector<NodeId>& neighbors(NodeId u) const;

    std::size_t degree(NodeId u) const { return neighbors(u).size(); }

    bool has_edge(NodeId u, NodeId v) const;

    const BitString& label(NodeId u) const;
    void set_label(NodeId u, BitString label);

    /// Degree of u plus the length of u's label (Section 9, "structural degree").
    std::size_t structural_degree(NodeId u) const;

    /// Maximum structural degree over all nodes; 0 for the empty graph.
    std::size_t max_structural_degree() const;

    /// True when the graph is nonempty and connected.
    bool is_connected() const;

    /// Throws precondition_error unless the graph is a valid paper graph
    /// (nonempty, connected, all labels bit strings).
    void validate() const;

    /// BFS distances from u; -1 for unreachable nodes.
    std::vector<int> distances_from(NodeId u) const;

    /// Maximum finite distance between any two nodes; requires connectivity.
    int diameter() const;

    /// Nodes at distance at most r from u, in ascending NodeId order.
    std::vector<NodeId> ball(NodeId u, int r) const;

    /// Subgraph induced by `nodes` (labels included); `nodes` must be
    /// distinct and ascending.
    InducedSubgraph induced(const std::vector<NodeId>& nodes) const;

    /// The r-neighborhood N_r(u) as an induced subgraph (Section 3).
    InducedSubgraph neighborhood(NodeId u, int r) const;

    /// Graphviz rendering, mainly for the examples.
    std::string to_dot(const std::string& name = "G") const;

    bool operator==(const LabeledGraph& other) const;

private:
    void check_node(NodeId u) const;

    std::vector<std::vector<NodeId>> adjacency_;
    std::vector<BitString> labels_;
    std::size_t num_edges_ = 0;
};

/// An induced subgraph together with the mapping back to the host graph.
struct InducedSubgraph {
    LabeledGraph graph;
    std::vector<NodeId> to_original;                  ///< sub id -> original id
    std::unordered_map<NodeId, NodeId> from_original; ///< original id -> sub id
};

/// The single-node graph with the given label (the class NODE of the paper,
/// identifying strings with single-node graphs).
LabeledGraph single_node_graph(BitString label);

} // namespace lph
