#pragma once

#include "machines/formula_arbiter.hpp"
#include "reductions/cluster.hpp"
#include "sat/boolean_graph.hpp"

namespace lph {

/// The distributed Cook–Levin reduction (Theorem 19): given a Sigma_1^LFO
/// sentence "exists R1..Rn. forall x. psi", transforms any graph G into a
/// Boolean graph that is satisfiable iff G satisfies the sentence.
/// Topology-preserving.
///
/// Each node's formula is the Boolean translation tau of psi at the elements
/// representing the node and its labeling bits: atoms over the structure
/// become truth constants, relation atoms become Boolean variables named
/// after the relation and the (identifier, bit-position) references of the
/// tuple, and bounded quantifiers expand over the local neighborhood.
///
/// Soundness strengthening (documented in DESIGN.md): each node additionally
/// *mentions* (with tautologies P | !P) every relation tuple owned within
/// distance r, so that the set of nodes sharing a variable is a connected
/// ball and the edge-wise consistency of SAT-GRAPH forces a single global
/// interpretation.  The machine radius is therefore 3r.
class CookLevinReduction : public ReductionMachine {
public:
    explicit CookLevinReduction(const Formula& sigma1_sentence);

    bool topology_preserving() const override { return true; }
    const PrefixSentence& prefix() const { return prefix_; }

    ClusterSpec build_cluster(const NeighborhoodView& view,
                              StepMeter& meter) const override;

private:
    PrefixSentence prefix_;
};

/// The reduction SAT-GRAPH -> 3-SAT-GRAPH (first step of Theorem 20): each
/// node replaces its formula by the Tseytin 3-CNF whose auxiliary variables
/// are qualified by the node's identifier.  Topology-preserving, radius 1.
class SatGraphTo3Sat : public ReductionMachine {
public:
    SatGraphTo3Sat() : ReductionMachine(1) {}
    bool topology_preserving() const override { return true; }
    ClusterSpec build_cluster(const NeighborhoodView& view,
                              StepMeter& meter) const override;
};

} // namespace lph
