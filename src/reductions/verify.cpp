#include "reductions/verify.hpp"

namespace lph {

ReductionCheck check_reduction(const ReductionMachine& m, const LabeledGraph& g,
                               const IdentifierAssignment& id,
                               const PropertyOracle& source,
                               const PropertyOracle& target,
                               const ExecutionOptions& options) {
    ReductionCheck result;
    result.input_nodes = g.num_nodes();

    const ExecutionResult run = run_local(m, g, id, options);
    result.reduction_steps = run.total_steps;

    // Re-run through the assembler (which re-executes the machine; cheap at
    // these sizes and keeps the two paths in agreement).
    const ReducedGraph reduced = apply_reduction(m, g, id, options);
    result.output_nodes = reduced.graph.num_nodes();
    result.output_edges = reduced.graph.num_edges();
    result.cluster_map_ok = verify_cluster_map(reduced, g);
    result.output_connected = reduced.graph.is_connected();

    result.source_member = source(g);
    result.target_member = target(reduced.graph);
    result.equivalence_holds = result.source_member == result.target_member;
    return result;
}

} // namespace lph
