#include "reductions/three_coloring.hpp"

#include "core/check.hpp"

#include <array>

#include <algorithm>

namespace lph {
namespace {

/// Variables of a formula in a canonical (sorted) order, so both endpoints
/// of an edge derive the same per-node variable indices.
std::vector<std::string> ordered_variables(const BoolFormula& f) {
    const auto vars = bool_variables(f);
    return {vars.begin(), vars.end()};
}

std::size_t index_of(const std::vector<std::string>& vars, const std::string& var) {
    const auto it = std::find(vars.begin(), vars.end(), var);
    check(it != vars.end(), "three_coloring: unknown variable");
    return static_cast<std::size_t>(it - vars.begin());
}

/// Cluster-local name of the node carrying a literal's color.
std::string literal_node(const std::vector<std::string>& vars, const Literal& lit) {
    return "v" + std::to_string(index_of(vars, lit.var)) + (lit.positive ? "p" : "n");
}

} // namespace

ClusterSpec ThreeSatTo3Colorable::build_cluster(const NeighborhoodView& view,
                                                StepMeter& meter) const {
    const BoolFormula formula = decode_bool_label(view.graph.label(view.self));
    const auto cnf_opt = formula_to_cnf(formula);
    check(cnf_opt.has_value(),
          "ThreeSatTo3Colorable: node label is not a CNF formula");
    const Cnf& cnf = *cnf_opt;
    check(is_3cnf(cnf), "ThreeSatTo3Colorable: clauses must have <= 3 literals");
    const auto vars = ordered_variables(formula);

    ClusterSpec spec;
    auto add_node = [&spec](const std::string& name) {
        spec.nodes.push_back({name, ""});
    };
    auto add_edge = [&spec](const std::string& a, const std::string& b) {
        spec.internal_edges.emplace_back(a, b);
    };

    // Palette.
    add_node("nfalse");
    add_node("nground");
    add_edge("nfalse", "nground");

    // Variable gadgets: complementary literal pair tied to ground.
    for (std::size_t i = 0; i < vars.size(); ++i) {
        const std::string p = "v" + std::to_string(i) + "p";
        const std::string n = "v" + std::to_string(i) + "n";
        add_node(p);
        add_node(n);
        add_edge(p, n);
        add_edge(p, "nground");
        add_edge(n, "nground");
    }

    // Clause gadgets: or(l1,l2) -> o1; or(o1,l3) -> o2; o2 forced "true".
    auto or_gadget = [&](const std::string& x, const std::string& y,
                         const std::string& tag) {
        const std::string a = tag + "a";
        const std::string b = tag + "b";
        const std::string o = tag + "o";
        add_node(a);
        add_node(b);
        add_node(o);
        add_edge(a, b);
        add_edge(a, o);
        add_edge(b, o);
        add_edge(x, a);
        add_edge(y, b);
        return o;
    };
    for (std::size_t j = 0; j < cnf.size(); ++j) {
        const std::string tag = "k" + std::to_string(j);
        const Clause& clause = cnf[j];
        if (clause.empty()) {
            // Unsatisfiable clause: two adjacent nodes both forced "true".
            add_node(tag + "z1");
            add_node(tag + "z2");
            add_edge(tag + "z1", "nfalse");
            add_edge(tag + "z1", "nground");
            add_edge(tag + "z2", "nfalse");
            add_edge(tag + "z2", "nground");
            add_edge(tag + "z1", tag + "z2");
            continue;
        }
        // Pad to three literals by repetition (or(x,x) behaves like x).
        Clause padded = clause;
        while (padded.size() < 3) {
            padded.push_back(padded.back());
        }
        const std::string l1 = literal_node(vars, padded[0]);
        const std::string l2 = literal_node(vars, padded[1]);
        const std::string l3 = literal_node(vars, padded[2]);
        const std::string o1 = or_gadget(l1, l2, tag + "s1");
        const std::string o2 = or_gadget(o1, l3, tag + "s2");
        add_edge(o2, "nfalse");
        add_edge(o2, "nground");
    }

    // Connector gadgets toward every neighbor: equalize nfalse, nground, and
    // all shared variables (Figure 10).  Both endpoints declare the gadget;
    // the assembler deduplicates.
    const BitString& my_id = view.ids[view.self];
    for (NodeId v : view.graph.neighbors(view.self)) {
        const BitString& vid = view.ids[v];
        const BoolFormula their_formula = decode_bool_label(view.graph.label(v));
        const auto their_vars = ordered_variables(their_formula);

        // (my end node, my tag, their end node, their tag) per connection.
        struct Link {
            std::string mine;
            std::string my_tag;
            std::string theirs;
            std::string their_tag;
        };
        std::vector<Link> links{{"nfalse", "f", "nfalse", "f"},
                                {"nground", "g", "nground", "g"}};
        for (const auto& var : vars) {
            if (std::find(their_vars.begin(), their_vars.end(), var) ==
                their_vars.end()) {
                continue;
            }
            const std::string my_tag =
                "p" + std::to_string(index_of(vars, var));
            const std::string their_tag =
                "p" + std::to_string(index_of(their_vars, var));
            links.push_back({"v" + std::to_string(index_of(vars, var)) + "p", my_tag,
                             "v" + std::to_string(index_of(their_vars, var)) + "p",
                             their_tag});
        }
        for (const Link& link : links) {
            // My half node of the connector toward v.
            const std::string mine_half = "h" + link.my_tag + "q" + vid;
            const std::string their_half = "h" + link.their_tag + "q" + my_id;
            add_node(mine_half);
            add_edge(link.mine, mine_half);
            spec.cross_edges.push_back({mine_half, vid, their_half});
            spec.cross_edges.push_back({link.mine, vid, their_half});
            spec.cross_edges.push_back({mine_half, vid, link.theirs});
        }
    }

    meter.charge(spec.nodes.size() + spec.internal_edges.size() +
                 spec.cross_edges.size());
    return spec;
}

namespace {

/// Colors of (a, b, o) in an OR-gadget whose inputs carry truth-colors
/// cx, cy in {0 = false, 1 = true}; the output is 1 iff cx or cy.
std::array<int, 3> or_gadget_colors(int cx, int cy) {
    if (cx == 0 && cy == 0) {
        return {1, 2, 0};
    }
    if (cx == 1) {
        return {0, 2, 1}; // a avoids T, b takes ground
    }
    return {2, 0, 1}; // cx == 0, cy == 1
}

int literal_color(const Literal& lit, const Valuation& val) {
    const bool value = val.at(lit.var);
    return (lit.positive ? value : !value) ? 1 : 0;
}

} // namespace

std::optional<Coloring>
construct_gadget_coloring(const ReducedGraph& reduced, const BooleanGraph& source,
                          const GraphValuation& valuations) {
    const std::size_t n_out = reduced.graph.num_nodes();
    Coloring colors(n_out, -1);
    auto set_color = [&](NodeId u, const std::string& name, int c) {
        colors[reduced.named(u, name)] = c;
    };

    for (NodeId u = 0; u < source.num_nodes(); ++u) {
        const Valuation& val = valuations.at(u);
        const auto cnf_opt = formula_to_cnf(source.formula(u));
        check(cnf_opt.has_value(), "construct_gadget_coloring: non-CNF label");
        const auto var_set = bool_variables(source.formula(u));
        const std::vector<std::string> vars(var_set.begin(), var_set.end());

        set_color(u, "nfalse", 0);
        set_color(u, "nground", 2);
        for (std::size_t i = 0; i < vars.size(); ++i) {
            const int c = val.at(vars[i]) ? 1 : 0;
            set_color(u, "v" + std::to_string(i) + "p", c);
            set_color(u, "v" + std::to_string(i) + "n", 1 - c);
        }
        for (std::size_t j = 0; j < cnf_opt->size(); ++j) {
            const Clause& clause = (*cnf_opt)[j];
            if (clause.empty()) {
                return std::nullopt; // unsatisfiable widget: no coloring exists
            }
            Clause padded = clause;
            while (padded.size() < 3) {
                padded.push_back(padded.back());
            }
            const int c1 = literal_color(padded[0], val);
            const int c2 = literal_color(padded[1], val);
            const int c3 = literal_color(padded[2], val);
            const auto s1 = or_gadget_colors(c1, c2);
            const auto s2 = or_gadget_colors(s1[2], c3);
            const std::string tag = "k" + std::to_string(j);
            set_color(u, tag + "s1a", s1[0]);
            set_color(u, tag + "s1b", s1[1]);
            set_color(u, tag + "s1o", s1[2]);
            set_color(u, tag + "s2a", s2[0]);
            set_color(u, tag + "s2b", s2[1]);
            set_color(u, tag + "s2o", s2[2]);
        }
    }

    // Connector halves: each pairs with the unique 'h'-named neighbor in a
    // different cluster; both ends of the connection share an anchor color c,
    // so the two halves split the remaining two colors (lower node index
    // takes the lower color).
    for (NodeId w = 0; w < n_out; ++w) {
        const std::string& name = reduced.node_names[w];
        if (name.empty() || name[0] != 'h' || colors[w] >= 0) {
            continue;
        }
        // The anchor: the adjacent non-'h' node in the same cluster.
        int anchor_color = -1;
        NodeId partner = n_out;
        for (NodeId x : reduced.graph.neighbors(w)) {
            const bool same_cluster = reduced.cluster_of[x] == reduced.cluster_of[w];
            const bool is_half = !reduced.node_names[x].empty() &&
                                 reduced.node_names[x][0] == 'h';
            if (same_cluster && !is_half) {
                anchor_color = colors[x];
            } else if (!same_cluster && is_half) {
                partner = x;
            }
        }
        check(anchor_color >= 0 && partner < n_out,
              "construct_gadget_coloring: malformed connector");
        int low = -1;
        int high = -1;
        for (int c = 0; c < 3; ++c) {
            if (c != anchor_color) {
                (low < 0 ? low : high) = c;
            }
        }
        colors[w] = w < partner ? low : high;
        colors[partner] = w < partner ? high : low;
    }

    check(verify_coloring(reduced.graph, colors, 3),
          "construct_gadget_coloring: construction does not verify");
    return colors;
}

} // namespace lph
