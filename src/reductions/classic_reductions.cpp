#include "reductions/classic_reductions.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {
namespace {

/// The deciding node's neighbors sorted by ascending identifier.
std::vector<NodeId> sorted_neighbors(const NeighborhoodView& view) {
    std::vector<NodeId> nb = view.graph.neighbors(view.self);
    std::sort(nb.begin(), nb.end(),
              [&](NodeId a, NodeId b) { return view.ids[a] < view.ids[b]; });
    return nb;
}

bool selected(const NeighborhoodView& view) {
    return view.graph.label(view.self) == "1";
}

} // namespace

ClusterSpec AllSelectedToEulerian::build_cluster(const NeighborhoodView& view,
                                                 StepMeter& meter) const {
    meter.charge(view.graph.degree(view.self) + 2);
    ClusterSpec spec;
    if (view.graph.degree(view.self) == 0) {
        // Single-node input graph, treated as a special case (Prop. 15).
        spec.nodes.push_back({"a", ""});
        if (!selected(view)) {
            spec.nodes.push_back({"b", ""});
            spec.internal_edges.emplace_back("a", "b");
        }
        return spec;
    }
    spec.nodes.push_back({"a", ""});
    spec.nodes.push_back({"b", ""});
    if (!selected(view)) {
        spec.internal_edges.emplace_back("a", "b");
    }
    for (NodeId v : view.graph.neighbors(view.self)) {
        const BitString& vid = view.ids[v];
        spec.cross_edges.push_back({"a", vid, "a"});
        spec.cross_edges.push_back({"a", vid, "b"});
        spec.cross_edges.push_back({"b", vid, "a"});
        spec.cross_edges.push_back({"b", vid, "b"});
    }
    return spec;
}

ClusterSpec AllSelectedToHamiltonian::build_cluster(const NeighborhoodView& view,
                                                    StepMeter& meter) const {
    const auto neighbors = sorted_neighbors(view);
    const std::size_t d = neighbors.size();
    meter.charge(4 * d + 8);
    ClusterSpec spec;

    // The port cycle: t_v, f_v for each neighbor v in id order, padded with
    // dummies to length >= 3.
    std::vector<std::string> cycle;
    for (NodeId v : neighbors) {
        cycle.push_back("t" + view.ids[v]);
        cycle.push_back("f" + view.ids[v]);
    }
    std::size_t dummy = 0;
    while (cycle.size() < 3) {
        cycle.push_back("d" + std::to_string(dummy++));
    }
    for (const auto& name : cycle) {
        spec.nodes.push_back({name, ""});
    }
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        spec.internal_edges.emplace_back(cycle[i], cycle[(i + 1) % cycle.size()]);
    }
    // The pendant that destroys Hamiltonicity at unselected nodes.
    if (!selected(view)) {
        spec.nodes.push_back({"bad", ""});
        spec.internal_edges.emplace_back("bad", cycle[0]);
    }
    // Port links: my "to v" port meets v's "from me" port and vice versa.
    const BitString& my_id = view.ids[view.self];
    for (NodeId v : neighbors) {
        const BitString& vid = view.ids[v];
        spec.cross_edges.push_back({"t" + vid, vid, "f" + my_id});
        spec.cross_edges.push_back({"f" + vid, vid, "t" + my_id});
    }
    return spec;
}

std::set<std::pair<NodeId, NodeId>>
hamiltonian_witness_from_tree(const LabeledGraph& g, const IdentifierAssignment& id,
                              const SpanningTree& tree, const ReducedGraph& reduced) {
    check(verify_spanning_tree(g, tree),
          "hamiltonian_witness_from_tree: invalid spanning tree");
    std::set<std::pair<NodeId, NodeId>> cycle;
    auto add = [&cycle](NodeId a, NodeId b) {
        cycle.emplace(std::min(a, b), std::max(a, b));
    };
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        check(g.label(u) == "1",
              "hamiltonian_witness_from_tree: all nodes must be selected");
        // Ports in ascending neighbor-identifier order, as built by the
        // reduction; then the dummy padding.
        std::vector<NodeId> neighbors = g.neighbors(u);
        std::sort(neighbors.begin(), neighbors.end(),
                  [&](NodeId a, NodeId b) { return id(a) < id(b); });
        std::vector<NodeId> ring; // the cluster cycle in order
        std::vector<bool> is_tree_port;
        for (NodeId v : neighbors) {
            ring.push_back(reduced.named(u, "t" + id(v)));
            ring.push_back(reduced.named(u, "f" + id(v)));
            is_tree_port.push_back(tree.is_tree_edge(u, v));
        }
        std::size_t dummy = 0;
        while (ring.size() < 3) {
            ring.push_back(reduced.named(u, "d" + std::to_string(dummy++)));
        }
        // All consecutive cluster-cycle edges, except the (t_i, f_i) pair of
        // tree-edge ports (the cycle leaves through the cross edges there).
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const std::size_t j = (i + 1) % ring.size();
            const bool is_port_pair = i % 2 == 0 && i / 2 < neighbors.size();
            if (is_port_pair && is_tree_port[i / 2]) {
                continue;
            }
            add(ring[i], ring[j]);
        }
        // Cross edges of incident tree edges (each added from both sides;
        // the set deduplicates).
        for (NodeId v : neighbors) {
            if (tree.is_tree_edge(u, v)) {
                add(reduced.named(u, "t" + id(v)), reduced.named(v, "f" + id(u)));
                add(reduced.named(u, "f" + id(v)), reduced.named(v, "t" + id(u)));
            }
        }
    }
    // Sanity: every chosen edge exists in the reduced graph.
    for (const auto& [a, b] : cycle) {
        check(reduced.graph.has_edge(a, b),
              "hamiltonian_witness_from_tree: edge missing from G'");
    }
    return cycle;
}

ClusterSpec NotAllSelectedToHamiltonian::build_cluster(const NeighborhoodView& view,
                                                       StepMeter& meter) const {
    const auto neighbors = sorted_neighbors(view);
    const std::size_t d = neighbors.size();
    meter.charge(8 * d + 16);
    ClusterSpec spec;

    // Build one deck (prefix "t" = top, "b" = bottom): ports in id order,
    // then the three extra nodes completing the (2d+3)-cycle.
    auto build_deck = [&](const std::string& deck) {
        std::vector<std::string> cycle;
        for (NodeId v : neighbors) {
            cycle.push_back(deck + "t" + view.ids[v]);
            cycle.push_back(deck + "f" + view.ids[v]);
        }
        cycle.push_back(deck + "x1");
        cycle.push_back(deck + "x2");
        cycle.push_back(deck + "x3");
        for (const auto& name : cycle) {
            spec.nodes.push_back({name, ""});
        }
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            spec.internal_edges.emplace_back(cycle[i], cycle[(i + 1) % cycle.size()]);
        }
    };
    build_deck("t");
    build_deck("b");

    // Vertical edges: x2 always, x1 only at unselected nodes (Figure 9).
    spec.internal_edges.emplace_back("tx2", "bx2");
    if (!selected(view)) {
        spec.internal_edges.emplace_back("tx1", "bx1");
    }

    // Port links per deck.
    const BitString& my_id = view.ids[view.self];
    for (NodeId v : neighbors) {
        const BitString& vid = view.ids[v];
        for (const std::string deck : {"t", "b"}) {
            spec.cross_edges.push_back({deck + "t" + vid, vid, deck + "f" + my_id});
            spec.cross_edges.push_back({deck + "f" + vid, vid, deck + "t" + my_id});
        }
    }
    return spec;
}

} // namespace lph
