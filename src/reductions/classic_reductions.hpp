#pragma once

#include "graphalg/spanning.hpp"
#include "reductions/cluster.hpp"

#include <set>

namespace lph {

/// The reduction ALL-SELECTED -> EULERIAN of Proposition 15 (Figure 7):
/// each node becomes two copies; the four copy-edges per input edge keep all
/// degrees even; a node whose label is not "1" gains the vertical edge
/// between its copies, making both degrees odd.  Radius 1.
class AllSelectedToEulerian : public ReductionMachine {
public:
    AllSelectedToEulerian() : ReductionMachine(1) {}
    ClusterSpec build_cluster(const NeighborhoodView& view,
                              StepMeter& meter) const override;
};

/// The reduction ALL-SELECTED -> HAMILTONIAN of Proposition 16 (Figure 2/8):
/// each node becomes a cycle of ports (two per incident edge, plus dummies to
/// reach length 3), ports of adjacent nodes are linked pairwise, and a node
/// whose label is not "1" gains a degree-1 pendant that destroys
/// Hamiltonicity.  Radius 1.
class AllSelectedToHamiltonian : public ReductionMachine {
public:
    AllSelectedToHamiltonian() : ReductionMachine(1) {}
    ClusterSpec build_cluster(const NeighborhoodView& view,
                              StepMeter& meter) const override;
};

/// The paper's Euler-tour witness (proof of Proposition 16): given any
/// spanning tree of an all-selected input graph, the Hamiltonian cycle of
/// the reduced graph uses, per tree edge, the two port-link cross edges, and
/// per non-tree edge the internal port pair; all remaining consecutive
/// cluster-cycle edges complete it.  Returned as an edge set over the
/// reduced graph; it is 2-regular, spanning, and connected — checked by the
/// caller with the hierarchy module's helpers or verified here.
///
/// Requires: every label of g is "1" (otherwise the pendant node makes a
/// Hamiltonian cycle impossible) and `reduced` produced by
/// AllSelectedToHamiltonian on g with `id`.
std::set<std::pair<NodeId, NodeId>>
hamiltonian_witness_from_tree(const LabeledGraph& g, const IdentifierAssignment& id,
                              const SpanningTree& tree, const ReducedGraph& reduced);

/// The reduction NOT-ALL-SELECTED -> HAMILTONIAN of Proposition 17
/// (Figure 9): two stacked copies of the Proposition 16 port cycles ("top"
/// and "bottom", lengths 2d+3); the middle extra nodes are always joined
/// vertically, and an unselected node contributes the second vertical edge
/// that lets a Hamiltonian cycle switch decks.  Radius 1.
class NotAllSelectedToHamiltonian : public ReductionMachine {
public:
    NotAllSelectedToHamiltonian() : ReductionMachine(1) {}
    ClusterSpec build_cluster(const NeighborhoodView& view,
                              StepMeter& meter) const override;
};

} // namespace lph
