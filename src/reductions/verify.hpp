#pragma once

#include "reductions/cluster.hpp"

#include <functional>

namespace lph {

/// Ground-truth membership test for a graph property, used to validate
/// reductions on bounded instances.
using PropertyOracle = std::function<bool(const LabeledGraph&)>;

/// Outcome of exercising one reduction on one instance.
struct ReductionCheck {
    bool cluster_map_ok = false;      ///< Section 8 cluster-map condition
    bool output_connected = false;    ///< G' is a valid paper graph
    bool source_member = false;       ///< G in L
    bool target_member = false;       ///< G' in L'
    bool equivalence_holds = false;   ///< the iff of the reduction
    std::size_t input_nodes = 0;
    std::size_t output_nodes = 0;
    std::size_t output_edges = 0;
    std::uint64_t reduction_steps = 0; ///< total metered work of the machine
};

/// Applies the reduction to g and checks "G in L iff G' in L'" against the
/// oracles, plus structural validity of the output.
ReductionCheck check_reduction(const ReductionMachine& m, const LabeledGraph& g,
                               const IdentifierAssignment& id,
                               const PropertyOracle& source,
                               const PropertyOracle& target,
                               const ExecutionOptions& options = {});

} // namespace lph
