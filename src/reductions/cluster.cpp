#include "reductions/cluster.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <sstream>

namespace lph {
namespace {

// Encoding:  nodes ';' ...  '!' internal ';' ...  '!' cross ';' ...
//   node:     name ',' label
//   internal: name ',' name
//   cross:    local ',' neighbor_id ',' remote
// Names may use [A-Za-z0-9_], labels/ids are over {0,1}.

std::vector<std::string> split_on(const std::string& s, char sep) {
    std::vector<std::string> parts;
    std::string current;
    for (char c : s) {
        if (c == sep) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    parts.push_back(current);
    return parts;
}

bool valid_name(const std::string& name) {
    if (name.empty()) {
        return false;
    }
    return std::all_of(name.begin(), name.end(), [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '_';
    });
}

} // namespace

std::string encode_cluster(const ClusterSpec& spec) {
    std::ostringstream out;
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        check(valid_name(spec.nodes[i].name), "encode_cluster: bad node name");
        check(is_bit_string(spec.nodes[i].label), "encode_cluster: bad label");
        if (i > 0) {
            out << ';';
        }
        out << spec.nodes[i].name << ',' << spec.nodes[i].label;
    }
    out << '!';
    for (std::size_t i = 0; i < spec.internal_edges.size(); ++i) {
        if (i > 0) {
            out << ';';
        }
        out << spec.internal_edges[i].first << ',' << spec.internal_edges[i].second;
    }
    out << '!';
    for (std::size_t i = 0; i < spec.cross_edges.size(); ++i) {
        if (i > 0) {
            out << ';';
        }
        out << spec.cross_edges[i].local_name << ',' << spec.cross_edges[i].neighbor_id
            << ',' << spec.cross_edges[i].remote_name;
    }
    return out.str();
}

ClusterSpec decode_cluster(const std::string& text) {
    const auto sections = split_on(text, '!');
    check(sections.size() == 3, "decode_cluster: expected three sections");
    ClusterSpec spec;
    if (!sections[0].empty()) {
        for (const auto& entry : split_on(sections[0], ';')) {
            const auto fields = split_on(entry, ',');
            check(fields.size() == 2, "decode_cluster: malformed node entry");
            spec.nodes.push_back({fields[0], fields[1]});
        }
    }
    if (!sections[1].empty()) {
        for (const auto& entry : split_on(sections[1], ';')) {
            const auto fields = split_on(entry, ',');
            check(fields.size() == 2, "decode_cluster: malformed internal edge");
            spec.internal_edges.emplace_back(fields[0], fields[1]);
        }
    }
    if (!sections[2].empty()) {
        for (const auto& entry : split_on(sections[2], ';')) {
            const auto fields = split_on(entry, ',');
            check(fields.size() == 3, "decode_cluster: malformed cross edge");
            spec.cross_edges.push_back({fields[0], fields[1], fields[2]});
        }
    }
    return spec;
}

NodeId ReducedGraph::named(NodeId u, const std::string& name) const {
    for (NodeId w : clusters.at(u)) {
        if (node_names.at(w) == name) {
            return w;
        }
    }
    check(false, "ReducedGraph::named: no node '" + name + "' in cluster " +
                     std::to_string(u));
    return 0;
}

std::string ReductionMachine::decide(const NeighborhoodView& view,
                                     StepMeter& meter) const {
    const ClusterSpec spec = build_cluster(view, meter);
    const std::string encoded = encode_cluster(spec);
    meter.charge(encoded.size());
    return encoded;
}

ReducedGraph apply_reduction(const ReductionMachine& m, const LabeledGraph& g,
                             const IdentifierAssignment& id,
                             const ExecutionOptions& options) {
    const ExecutionResult run = run_local(m, g, id, options);

    ReducedGraph reduced;
    reduced.clusters.assign(g.num_nodes(), {});

    std::vector<ClusterSpec> specs;
    specs.reserve(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        specs.push_back(decode_cluster(run.raw_outputs[u]));
    }

    // Allocate output nodes.
    std::map<std::pair<NodeId, std::string>, NodeId> index;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (const auto& cnode : specs[u].nodes) {
            const auto key = std::make_pair(u, cnode.name);
            check(index.find(key) == index.end(),
                  "apply_reduction: duplicate cluster node name");
            const NodeId w = reduced.graph.add_node(cnode.label);
            index.emplace(key, w);
            reduced.cluster_of.push_back(u);
            reduced.clusters[u].push_back(w);
            reduced.node_names.push_back(cnode.name);
        }
    }

    auto add_edge_once = [&](NodeId a, NodeId b) {
        if (!reduced.graph.has_edge(a, b)) {
            reduced.graph.add_edge(a, b);
        }
    };

    // Internal edges.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (const auto& [a, b] : specs[u].internal_edges) {
            const auto ia = index.find({u, a});
            const auto ib = index.find({u, b});
            check(ia != index.end() && ib != index.end(),
                  "apply_reduction: internal edge references unknown node");
            add_edge_once(ia->second, ib->second);
        }
    }

    // Cross edges: resolve the neighbor by identifier among u's neighbors.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (const auto& cross : specs[u].cross_edges) {
            NodeId v = g.num_nodes();
            for (NodeId w : g.neighbors(u)) {
                if (id(w) == cross.neighbor_id) {
                    v = w;
                    break;
                }
            }
            check(v != g.num_nodes(),
                  "apply_reduction: cross edge references unknown neighbor id");
            const auto ia = index.find({u, cross.local_name});
            const auto ib = index.find({v, cross.remote_name});
            check(ia != index.end() && ib != index.end(),
                  "apply_reduction: cross edge references unknown node");
            add_edge_once(ia->second, ib->second);
        }
    }

    return reduced;
}

bool verify_cluster_map(const ReducedGraph& reduced, const LabeledGraph& g) {
    if (reduced.cluster_of.size() != reduced.graph.num_nodes()) {
        return false;
    }
    for (NodeId w = 0; w < reduced.graph.num_nodes(); ++w) {
        for (NodeId x : reduced.graph.neighbors(w)) {
            const NodeId u = reduced.cluster_of[w];
            const NodeId v = reduced.cluster_of[x];
            if (u != v && !g.has_edge(u, v)) {
                return false;
            }
        }
    }
    return true;
}

} // namespace lph
