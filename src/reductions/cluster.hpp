#pragma once

#include "dtm/gather.hpp"

#include <map>
#include <string>
#include <vector>

namespace lph {

/// What one node of the input graph outputs under a local-polynomial
/// reduction (Section 8): its *cluster* — a piece of the output graph G' —
/// plus the edges from its cluster to its neighbors' clusters.
///
/// Cluster nodes have names local to their owner; cross edges reference the
/// remote endpoint by (neighbor identifier, remote-local name).
struct ClusterSpec {
    struct CNode {
        std::string name;
        BitString label;
    };
    struct CrossEdge {
        std::string local_name;
        BitString neighbor_id;
        std::string remote_name;
    };

    std::vector<CNode> nodes;
    std::vector<std::pair<std::string, std::string>> internal_edges;
    std::vector<CrossEdge> cross_edges;
};

/// Serialization of a cluster into the node's output string (names and
/// identifiers are over {0,1} plus [A-Za-z_] for names; separators below).
std::string encode_cluster(const ClusterSpec& spec);
ClusterSpec decode_cluster(const std::string& text);

/// Base class for local-polynomial reductions implemented as distributed
/// machines: gather the r-neighborhood, then emit the cluster encoding as the
/// node's output.
class ReductionMachine : public NeighborhoodGatherMachine {
public:
    explicit ReductionMachine(int radius) : NeighborhoodGatherMachine(radius) {}

    std::string decide(const NeighborhoodView& view, StepMeter& meter) const final;

    /// Builds this node's cluster from its gathered neighborhood.
    virtual ClusterSpec build_cluster(const NeighborhoodView& view,
                                      StepMeter& meter) const = 0;

    /// Topology-preserving reductions only relabel (Remark 13).
    virtual bool topology_preserving() const { return false; }
};

/// The assembled output graph G' of a reduction, with the cluster map g
/// (Section 8) recording which input node each output node represents.
struct ReducedGraph {
    LabeledGraph graph;
    std::vector<NodeId> cluster_of;            ///< G' node -> G node
    std::vector<std::vector<NodeId>> clusters; ///< G node -> its G' nodes
    std::vector<std::string> node_names;       ///< G' node -> cluster-local name

    /// Output node of cluster `u` with local name `name`; throws if absent.
    NodeId named(NodeId u, const std::string& name) const;
};

/// Runs the reduction machine distributedly and assembles G' from the
/// per-node cluster encodings.  Cross edges may be declared by either
/// endpoint; duplicates are merged; dangling references throw.
ReducedGraph apply_reduction(const ReductionMachine& m, const LabeledGraph& g,
                             const IdentifierAssignment& id,
                             const ExecutionOptions& options = {});

/// Checks the cluster-map condition: every edge of G' joins two nodes of the
/// same cluster or of clusters whose owners are adjacent in G.
bool verify_cluster_map(const ReducedGraph& reduced, const LabeledGraph& g);

} // namespace lph
