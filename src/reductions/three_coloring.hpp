#pragma once

#include "graphalg/coloring.hpp"
#include "reductions/cluster.hpp"
#include "sat/boolean_graph.hpp"

namespace lph {

/// The reduction 3-SAT-GRAPH -> 3-COLORABLE (second step of Theorem 20,
/// Figure 3/10).  Every node's 3-CNF label becomes a formula gadget:
///   * palette nodes `nfalse` and `nground` (joined by an edge, so the third
///     color plays "true"),
///   * a pair of complementary literal nodes per variable, both tied to
///     `nground`,
///   * an OR-gadget cascade per clause whose output is forced to the "true"
///     color by edges to both palette nodes,
/// and clusters of adjacent input nodes are linked by connector gadgets that
/// force equal colors on `nfalse`, `nground`, and every shared variable.
/// Radius 1 (a node needs its neighbors' formulas to name shared variables).
class ThreeSatTo3Colorable : public ReductionMachine {
public:
    ThreeSatTo3Colorable() : ReductionMachine(1) {}
    ClusterSpec build_cluster(const NeighborhoodView& view,
                              StepMeter& meter) const override;
};

/// The completeness half of the Theorem 20 correctness proof, executable:
/// given a satisfying, edge-consistent family of valuations of the source
/// 3-SAT-GRAPH, constructs a proper 3-coloring of the gadget graph
/// (convention: 0 = "false", 1 = "true", 2 = "ground").  Returns nullopt if
/// the gadget contains an empty-clause widget (which only unsatisfiable
/// inputs produce).
///
/// This sidesteps search entirely: generic 3-coloring search thrashes on
/// gadget graphs (every clause widget has several valid colorings, and a
/// late conflict forces exploring their product), whereas the proof's
/// construction is linear.
std::optional<Coloring>
construct_gadget_coloring(const ReducedGraph& reduced, const BooleanGraph& source,
                          const GraphValuation& valuations);

} // namespace lph
