#include "reductions/cook_levin.hpp"

#include "core/check.hpp"
#include "structure/graph_structure.hpp"

#include <algorithm>
#include <map>

namespace lph {
namespace {

/// Name of the element `e` of the view's structural representation, as used
/// in Boolean variable names: "<owner id>.<bit position>".
std::string element_ref(const GraphStructure& gs, const NeighborhoodView& view,
                        Element e) {
    const NodeId owner = gs.owner(e);
    const std::size_t pos = gs.is_node_element(e) ? 0 : gs.bit_position(e);
    return view.ids[owner] + "." + std::to_string(pos);
}

/// Boolean variable standing for "tuple in R": "R:ref1:ref2:...".
std::string tuple_variable(const GraphStructure& gs, const NeighborhoodView& view,
                           const std::string& rel, const ElementTuple& tuple) {
    std::string name = rel;
    for (Element e : tuple) {
        name += ":" + element_ref(gs, view, e);
    }
    return name;
}

bool is_const(const BoolFormula& f, bool value) {
    return f->kind == (value ? BoolKind::True : BoolKind::False);
}

// Constant-folding combinators: the translation replaces structure atoms by
// truth constants, so without folding the output formulas are dominated by
// dead constant subtrees (and downstream SAT solving drowns in them).
BoolFormula fold_not(BoolFormula a) {
    if (is_const(a, true)) return bf::falsity();
    if (is_const(a, false)) return bf::truth();
    return bf::bnot(std::move(a));
}
BoolFormula fold_and(BoolFormula a, BoolFormula b) {
    if (is_const(a, false) || is_const(b, false)) return bf::falsity();
    if (is_const(a, true)) return b;
    if (is_const(b, true)) return a;
    return bf::band(std::move(a), std::move(b));
}
BoolFormula fold_or(BoolFormula a, BoolFormula b) {
    if (is_const(a, true) || is_const(b, true)) return bf::truth();
    if (is_const(a, false)) return b;
    if (is_const(b, false)) return a;
    return bf::bor(std::move(a), std::move(b));
}
BoolFormula fold_implies(BoolFormula a, BoolFormula b) {
    return fold_or(fold_not(std::move(a)), std::move(b));
}
BoolFormula fold_iff(BoolFormula a, BoolFormula b) {
    if (is_const(a, true)) return b;
    if (is_const(b, true)) return a;
    if (is_const(a, false)) return fold_not(std::move(b));
    if (is_const(b, false)) return fold_not(std::move(a));
    return bf::biff(std::move(a), std::move(b));
}
BoolFormula fold_and_all(std::vector<BoolFormula> parts) {
    BoolFormula result = bf::truth();
    for (auto& p : parts) {
        result = fold_and(std::move(result), std::move(p));
    }
    return result;
}
BoolFormula fold_or_all(std::vector<BoolFormula> parts) {
    BoolFormula result = bf::falsity();
    for (auto& p : parts) {
        result = fold_or(std::move(result), std::move(p));
    }
    return result;
}

/// The translation tau of the proof of Theorem 19: psi with first-order
/// variables bound to concrete elements becomes a propositional formula over
/// tuple variables.
BoolFormula translate(const Formula& psi, const GraphStructure& gs,
                      const NeighborhoodView& view,
                      std::map<std::string, Element>& sigma) {
    const FormulaNode& node = *psi;
    const Structure& s = gs.structure();
    auto lookup = [&](const std::string& v) {
        const auto it = sigma.find(v);
        check(it != sigma.end(), "cook-levin translate: unbound variable " + v);
        return it->second;
    };
    switch (node.kind) {
    case FormulaKind::Top:
        return bf::truth();
    case FormulaKind::Bottom:
        return bf::falsity();
    case FormulaKind::Unary:
        return s.unary_holds(node.rel_index - 1, lookup(node.var)) ? bf::truth()
                                                                   : bf::falsity();
    case FormulaKind::Binary:
        return s.binary_holds(node.rel_index - 1, lookup(node.var),
                              lookup(node.var2))
                   ? bf::truth()
                   : bf::falsity();
    case FormulaKind::Equals:
        return lookup(node.var) == lookup(node.var2) ? bf::truth() : bf::falsity();
    case FormulaKind::Apply: {
        ElementTuple tuple;
        for (const auto& arg : node.args) {
            tuple.push_back(lookup(arg));
        }
        return bf::var(tuple_variable(gs, view, node.rel_var, tuple));
    }
    case FormulaKind::Not:
        return fold_not(translate(node.children[0], gs, view, sigma));
    case FormulaKind::Or: {
        BoolFormula a = translate(node.children[0], gs, view, sigma);
        if (is_const(a, true)) {
            return a; // short-circuit: skip the right subtree entirely
        }
        return fold_or(std::move(a), translate(node.children[1], gs, view, sigma));
    }
    case FormulaKind::And: {
        BoolFormula a = translate(node.children[0], gs, view, sigma);
        if (is_const(a, false)) {
            return a;
        }
        return fold_and(std::move(a), translate(node.children[1], gs, view, sigma));
    }
    case FormulaKind::Implies: {
        BoolFormula a = translate(node.children[0], gs, view, sigma);
        if (is_const(a, false)) {
            return bf::truth();
        }
        return fold_implies(std::move(a),
                            translate(node.children[1], gs, view, sigma));
    }
    case FormulaKind::Iff:
        return fold_iff(translate(node.children[0], gs, view, sigma),
                        translate(node.children[1], gs, view, sigma));
    case FormulaKind::ExistsConn:
    case FormulaKind::ForallConn: {
        const bool existential = node.kind == FormulaKind::ExistsConn;
        std::vector<BoolFormula> parts;
        for (Element a : s.connected_to(lookup(node.var2))) {
            const auto saved = sigma.find(node.var);
            const bool had = saved != sigma.end();
            const Element old = had ? saved->second : 0;
            sigma[node.var] = a;
            parts.push_back(translate(node.children[0], gs, view, sigma));
            if (had) {
                sigma[node.var] = old;
            } else {
                sigma.erase(node.var);
            }
        }
        return existential ? fold_or_all(std::move(parts))
                           : fold_and_all(std::move(parts));
    }
    case FormulaKind::ExistsFO:
    case FormulaKind::ForallFO:
    case FormulaKind::ExistsSO:
    case FormulaKind::ForallSO:
        check(false, "cook-levin translate: matrix must be a BF formula");
    }
    check(false, "cook-levin translate: unreachable");
    return bf::truth();
}

} // namespace

CookLevinReduction::CookLevinReduction(const Formula& sigma1_sentence)
    : ReductionMachine(std::max(1, 3 * decompose_prefix_sentence(sigma1_sentence)
                                        .radius)),
      prefix_(decompose_prefix_sentence(sigma1_sentence)) {
    check(prefix_.blocks.size() == 1 && prefix_.blocks[0].existential,
          "CookLevinReduction: sentence must be Sigma_1^LFO (one existential "
          "block)");
}

ClusterSpec CookLevinReduction::build_cluster(const NeighborhoodView& view,
                                              StepMeter& meter) const {
    const int r = std::max(1, prefix_.radius);
    const GraphStructure gs(view.graph);

    // tau at the elements representing this node and its labeling bits.
    std::vector<BoolFormula> conjuncts;
    std::vector<Element> anchors{gs.node_element(view.self)};
    for (std::size_t i = 1; i <= view.graph.label(view.self).size(); ++i) {
        anchors.push_back(gs.bit_element(view.self, i));
    }
    for (Element anchor : anchors) {
        std::map<std::string, Element> sigma{{prefix_.matrix_var, anchor}};
        conjuncts.push_back(translate(prefix_.matrix_body, gs, view, sigma));
    }

    // Soundness threading: mention every tuple owned within distance r (with
    // remaining elements within 2r of the owner) via tautologies, so shared
    // variables propagate along connected balls.
    const auto dist = view.graph.distances_from(view.self);
    for (const SOVariable& var : prefix_.blocks[0].variables) {
        for (NodeId v = 0; v < view.graph.num_nodes(); ++v) {
            if (dist[v] < 0 || dist[v] > r) {
                continue;
            }
            std::vector<Element> owned{gs.node_element(v)};
            for (std::size_t i = 1; i <= view.graph.label(v).size(); ++i) {
                owned.push_back(gs.bit_element(v, i));
            }
            std::vector<Element> nearby;
            const auto dist_v = view.graph.distances_from(v);
            for (NodeId w = 0; w < view.graph.num_nodes(); ++w) {
                if (dist_v[w] >= 0 && dist_v[w] <= 2 * r) {
                    nearby.push_back(gs.node_element(w));
                    for (std::size_t i = 1; i <= view.graph.label(w).size(); ++i) {
                        nearby.push_back(gs.bit_element(w, i));
                    }
                }
            }
            for (Element first : owned) {
                if (var.arity == 1) {
                    const BoolFormula p =
                        bf::var(tuple_variable(gs, view, var.name, {first}));
                    conjuncts.push_back(bf::bor(p, bf::bnot(p)));
                    continue;
                }
                std::vector<std::size_t> idx(var.arity - 1, 0);
                while (true) {
                    ElementTuple tuple{first};
                    for (std::size_t i = 0; i + 1 < var.arity; ++i) {
                        tuple.push_back(nearby[idx[i]]);
                    }
                    const BoolFormula p =
                        bf::var(tuple_variable(gs, view, var.name, tuple));
                    conjuncts.push_back(bf::bor(p, bf::bnot(p)));
                    std::size_t pos = 0;
                    while (pos < idx.size()) {
                        if (++idx[pos] < nearby.size()) {
                            break;
                        }
                        idx[pos] = 0;
                        ++pos;
                    }
                    if (pos == idx.size()) {
                        break;
                    }
                }
            }
        }
    }

    const BoolFormula formula = fold_and_all(std::move(conjuncts));
    meter.charge(bool_size(formula));

    ClusterSpec spec;
    spec.nodes.push_back({"a", encode_bool_label(formula)});
    for (NodeId v : view.graph.neighbors(view.self)) {
        spec.cross_edges.push_back({"a", view.ids[v], "a"});
    }
    return spec;
}

ClusterSpec SatGraphTo3Sat::build_cluster(const NeighborhoodView& view,
                                          StepMeter& meter) const {
    const BoolFormula formula = decode_bool_label(view.graph.label(view.self));
    // Auxiliary variables are qualified by the node's own identifier, so
    // adjacent nodes (whose identifiers differ) never share them.
    const Cnf cnf = tseytin_3cnf(formula, "aux" + view.ids[view.self] + ".");
    const BoolFormula rewritten = cnf_to_formula(cnf);
    meter.charge(bool_size(rewritten));

    ClusterSpec spec;
    spec.nodes.push_back({"a", encode_bool_label(rewritten)});
    for (NodeId v : view.graph.neighbors(view.self)) {
        spec.cross_edges.push_back({"a", view.ids[v], "a"});
    }
    return spec;
}

} // namespace lph
