#!/usr/bin/env python3
"""Compare fresh BENCH_*.json reports against the committed baselines.

Regressions detected, in decreasing order of severity:
  * an instance whose baseline outcome was "ok" now reports anything else
    (or disappeared entirely) — always fatal;
  * an instance's wall_ms grew by more than --threshold x baseline;
  * an instance's "speedup" metric fell below --speedup-floor (the engine
    acceptance bar) or below 1/--threshold of its baseline value.

Timing comparisons are advisory by default (machines differ); pass
--strict-timing to make them fatal too.  --update refreshes the baselines
from the fresh reports.

Typical use (from the repo root, after scripts/check.sh smoke-ran the
benches into build/bench/):

    python3 scripts/bench_diff.py --fresh build/bench
    python3 scripts/bench_diff.py --fresh build/bench --update
"""

import argparse
import json
import pathlib
import shutil
import sys


def load_reports(directory):
    reports = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        with open(path) as handle:
            reports[path.name] = json.load(handle)
    return reports


def instances_by_key(report):
    return {
        (row["bench"], row["instance"]): row for row in report.get("instances", [])
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory of committed baseline reports")
    parser.add_argument("--fresh", default="build/bench",
                        help="directory of freshly produced reports")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="allowed wall-time growth factor per instance")
    parser.add_argument("--speedup-floor", type=float, default=3.0,
                        help="minimum acceptable 'speedup' metric")
    parser.add_argument("--strict-timing", action="store_true",
                        help="treat timing/speedup regressions as fatal")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh reports over the baselines and exit")
    args = parser.parse_args()

    fresh = load_reports(args.fresh)
    if not fresh:
        print(f"bench_diff: no BENCH_*.json under {args.fresh}", file=sys.stderr)
        return 2

    if args.update:
        baseline_dir = pathlib.Path(args.baseline)
        baseline_dir.mkdir(parents=True, exist_ok=True)
        for name in fresh:
            shutil.copy(pathlib.Path(args.fresh) / name, baseline_dir / name)
            print(f"bench_diff: updated {baseline_dir / name}")
        return 0

    baseline = load_reports(args.baseline)
    if not baseline:
        print(f"bench_diff: no baselines under {args.baseline}; "
              "run with --update to create them", file=sys.stderr)
        return 2

    fatal = []
    advisory = []
    for name, base_report in sorted(baseline.items()):
        fresh_report = fresh.get(name)
        if fresh_report is None:
            fatal.append(f"{name}: report missing from {args.fresh}")
            continue
        base_rows = instances_by_key(base_report)
        fresh_rows = instances_by_key(fresh_report)
        for key, base_row in sorted(base_rows.items()):
            label = f"{name} {key[0]}/{key[1]}"
            fresh_row = fresh_rows.get(key)
            if fresh_row is None:
                fatal.append(f"{label}: instance disappeared")
                continue
            if base_row["outcome"] == "ok" and fresh_row["outcome"] != "ok":
                fatal.append(f"{label}: outcome regressed "
                             f"ok -> {fresh_row['outcome']}")
                continue
            base_wall = base_row.get("wall_ms", 0.0)
            fresh_wall = fresh_row.get("wall_ms", 0.0)
            if base_wall > 1.0 and fresh_wall > args.threshold * base_wall:
                advisory.append(
                    f"{label}: wall_ms {base_wall:.1f} -> {fresh_wall:.1f} "
                    f"(>{args.threshold:g}x)")
            base_speedup = base_row.get("metrics", {}).get("speedup")
            fresh_speedup = fresh_row.get("metrics", {}).get("speedup")
            if base_speedup is not None:
                if fresh_speedup is None:
                    fatal.append(f"{label}: speedup metric disappeared")
                elif fresh_speedup < args.speedup_floor:
                    fatal.append(
                        f"{label}: speedup {fresh_speedup:.2f} below the "
                        f"{args.speedup_floor:g}x floor")
                elif fresh_speedup * args.threshold < base_speedup:
                    advisory.append(
                        f"{label}: speedup {base_speedup:.2f} -> "
                        f"{fresh_speedup:.2f}")

    for line in advisory:
        print(f"bench_diff: ADVISORY {line}")
    for line in fatal:
        print(f"bench_diff: REGRESSION {line}", file=sys.stderr)
    if fatal or (args.strict_timing and advisory):
        return 1
    checked = sum(len(r.get("instances", [])) for r in baseline.values())
    print(f"bench_diff: ok ({len(baseline)} reports, {checked} instances, "
          f"{len(advisory)} advisories)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
