#!/usr/bin/env python3
"""Prints a top-N self-time table from a Chrome trace-event JSON file.

Replays each thread's B/E events under stack discipline and attributes to
every span its *self* time — wall duration minus the durations of its direct
children — then aggregates by span name across all threads (and, for a
merged multi-process trace, across all pids):

    name            count    total_ms     self_ms    avg_us    p50_us    p99_us
    dtm.run_local    6573      1203.5      1203.5     183.1     170.2     401.7
    game.chunk         64      1241.2        37.7     589.4     522.0    1830.9

p50/p99 are exact per-name wall-duration quantiles (every duration is kept,
no bucketing).  Instant events ("i") are counted but carry no time.  Usage:

    trace_summary.py TRACE.json [--top N] [--json]

--json emits the full aggregation (no top-N cut) as one JSON object:
    {"spans": [{"name": ..., "count": ..., "total_ms": ..., "self_ms": ...,
                "avg_us": ..., "p50_us": ..., "p99_us": ...}, ...],
     "instants": {...}, "dropped_spans": N}
"""

import argparse
import json
import sys
from collections import defaultdict


class Agg:
    __slots__ = ("count", "total_us", "self_us", "durations_us")

    def __init__(self):
        self.count = 0
        self.total_us = 0.0
        self.self_us = 0.0
        self.durations_us = []


def exact_percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), int(-(-q * len(ordered) // 1))))
    return ordered[rank - 1]


def summarize(events):
    by_name = defaultdict(Agg)
    instants = defaultdict(int)
    # (pid, tid) -> stack of [name, start_ts, child_us]
    stacks = defaultdict(list)

    for ev in events:
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "I"):
            continue
        key = (ev.get("pid"), ev.get("tid"))
        if ph in ("i", "I"):
            instants[ev.get("name", "?")] += 1
            continue
        if ph == "B":
            stacks[key].append([ev.get("name", "?"), ev.get("ts", 0), 0.0])
            continue
        stack = stacks[key]
        if not stack:
            continue  # unbalanced; trace_lint reports this
        name, start, child_us = stack.pop()
        dur = max(0.0, ev.get("ts", 0) - start)
        agg = by_name[name]
        agg.count += 1
        agg.total_us += dur
        agg.self_us += max(0.0, dur - child_us)
        agg.durations_us.append(dur)
        if stack:
            stack[-1][2] += dur
    return by_name, instants


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="rows to print (default 15)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full aggregation as JSON")
    args = parser.parse_args(argv[1:])

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("trace_summary: %s: %s" % (args.trace, e), file=sys.stderr)
        return 1
    events = doc.get("traceEvents", [])
    by_name, instants = summarize(events)
    dropped = doc.get("otherData", {}).get("dropped_spans", 0)

    rows = sorted(by_name.items(), key=lambda kv: -kv[1].self_us)
    if args.json:
        out = {
            "spans": [
                {
                    "name": name,
                    "count": agg.count,
                    "total_ms": agg.total_us / 1000.0,
                    "self_ms": agg.self_us / 1000.0,
                    "avg_us": agg.total_us / agg.count if agg.count else 0.0,
                    "p50_us": exact_percentile(agg.durations_us, 0.50),
                    "p99_us": exact_percentile(agg.durations_us, 0.99),
                }
                for name, agg in rows
            ],
            "instants": dict(sorted(instants.items())),
            "dropped_spans": dropped,
        }
        json.dump(out, sys.stdout)
        sys.stdout.write("\n")
        return 0

    print("%-28s %8s %12s %12s %10s %10s %10s" %
          ("name", "count", "total_ms", "self_ms", "avg_us", "p50_us",
           "p99_us"))
    for name, agg in rows[: args.top]:
        print("%-28s %8d %12.2f %12.2f %10.1f %10.1f %10.1f" % (
            name, agg.count, agg.total_us / 1000.0, agg.self_us / 1000.0,
            agg.total_us / agg.count if agg.count else 0.0,
            exact_percentile(agg.durations_us, 0.50),
            exact_percentile(agg.durations_us, 0.99)))
    if len(rows) > args.top:
        print("... %d more span name(s)" % (len(rows) - args.top))
    if instants:
        print("instants: " + ", ".join(
            "%s=%d" % (n, c) for n, c in sorted(instants.items())))
    if dropped:
        print("warning: %s spans dropped by ring wraparound" % dropped)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
