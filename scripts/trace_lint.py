#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file exported by the obs subsystem.

Checks, in order:
  1. the file parses as JSON and has a "traceEvents" list;
  2. every event carries the fields its phase requires (B/E/i need
     name/ts/pid/tid; metadata events need a name);
  3. per (pid, tid), timestamps are monotone non-decreasing in file order
     (the exporter emits each thread track pre-sorted);
  4. per (pid, tid), B/E events balance under stack discipline with matching
     names — every E closes the most recent open B, nothing left open at EOF.

Exit status 0 when the trace is clean, 1 with one message per problem on
stderr otherwise.  Usage: trace_lint.py TRACE.json
"""

import json
import sys

REQUIRED_PHASES = {"B", "E", "i", "I", "X", "M"}


def lint(path):
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["%s: not readable as JSON: %s" % (path, e)]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: no 'traceEvents' list" % path]

    last_ts = {}  # (pid, tid) -> last timestamp seen
    stacks = {}  # (pid, tid) -> list of open span names

    for i, ev in enumerate(events):
        where = "event %d" % i
        if not isinstance(ev, dict):
            problems.append("%s: not an object" % where)
            continue
        ph = ev.get("ph")
        if ph not in REQUIRED_PHASES:
            problems.append("%s: unknown phase %r" % (where, ph))
            continue
        if ph == "M":
            if "name" not in ev:
                problems.append("%s: metadata event without a name" % where)
            continue

        for field in ("name", "ts", "pid", "tid"):
            if field not in ev:
                problems.append("%s: %s event missing %r" % (where, ph, field))
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append("%s: non-numeric ts" % where)
            continue

        key = (ev.get("pid"), ev.get("tid"))
        ts = ev["ts"]
        if key in last_ts and ts < last_ts[key]:
            problems.append(
                "%s: timestamp %s goes backwards on pid=%s tid=%s (prev %s)"
                % (where, ts, key[0], key[1], last_ts[key])
            )
        last_ts[key] = ts

        if ph == "B":
            stacks.setdefault(key, []).append(ev.get("name"))
        elif ph == "E":
            stack = stacks.get(key, [])
            if not stack:
                problems.append(
                    "%s: E event %r on pid=%s tid=%s with no open B"
                    % (where, ev.get("name"), key[0], key[1])
                )
            else:
                opened = stack.pop()
                name = ev.get("name")
                # Chrome permits nameless E events; when named, it must match.
                if name is not None and name != opened:
                    problems.append(
                        "%s: E event %r closes B event %r on pid=%s tid=%s"
                        % (where, name, opened, key[0], key[1])
                    )

    for (pid, tid), stack in sorted(stacks.items(), key=lambda kv: str(kv[0])):
        for name in stack:
            problems.append(
                "unclosed B event %r on pid=%s tid=%s" % (name, pid, tid)
            )
    return problems


def main(argv):
    if len(argv) != 2:
        print("usage: trace_lint.py TRACE.json", file=sys.stderr)
        return 2
    problems = lint(argv[1])
    for p in problems:
        print("trace_lint: %s" % p, file=sys.stderr)
    if problems:
        print(
            "trace_lint: %s: %d problem(s)" % (argv[1], len(problems)),
            file=sys.stderr,
        )
        return 1
    print("trace_lint: %s: ok" % argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
