#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, smoke-run every
# benchmark binary (short measurement time), diff the bench reports against
# the committed baselines.  Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Smoke-run via the dispatcher from build/bench so the BENCH_<name>.json
# reports land there (bench_main fork/execs every sibling bench_* binary).
(cd build/bench && ./bench_main --benchmark_min_time=0.01 >/dev/null)
python3 scripts/bench_diff.py --fresh build/bench

# Traced smoke, after bench_diff so tracing overhead cannot depress the
# speedup rows the diff checks: one fig3 pass and one differential-oracle
# check with span tracing on.  Both exported Chrome traces must lint clean
# (valid JSON, monotone timestamps, balanced begin/end events).
(cd build/bench && ./bench_main --filter fig3 --benchmark_min_time=0.01 \
    --trace=trace_fig3.json --metrics=metrics_fig3.json >/dev/null)
python3 scripts/trace_lint.py build/bench/trace_fig3.json
python3 scripts/trace_summary.py build/bench/trace_fig3.json --top 8
./build/tools/lph_fuzz --check game-par-vs-ref --instances 40 \
    --trace=build/trace_fuzz.json >/dev/null
python3 scripts/trace_lint.py build/trace_fuzz.json

# Serving-layer smoke: a few hundred mixed wire requests (games, logic,
# decisions, oracle checks) through lphd in pipe mode with tracing on.
# lph_client --verify exits nonzero on any protocol error or a missing
# response; the server trace must lint clean like every other export.
./build/tools/lph_client --generate 320 --seed 7 \
    | ./build/tools/lphd --pipe --threads 4 --queue-cap 512 \
        --trace=build/trace_lphd.json \
    | ./build/tools/lph_client --verify --expect 320
python3 scripts/trace_lint.py build/trace_lphd.json

# Sanitizer passes: AddressSanitizer + UBSan over the whole suite (the `asan`
# preset), then ThreadSanitizer over the concurrency-heavy game/cache suites
# (the `tsan` preset).  Set LPH_SKIP_SANITIZERS=1 for a quick iteration loop.
if [[ "${LPH_SKIP_SANITIZERS:-0}" != "1" ]]; then
    cmake --preset asan
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure

    # Differential-oracle smoke: fixed-seed fuzzing of every decision path
    # against the naive reference oracles, plus the planted-bug selftest.
    # Runs under ASan so any divergence comes with a memory-safety check.
    ./build-asan/tools/lph_fuzz --smoke --out build-asan/fuzz-repros

    cmake --preset tsan
    cmake --build build-tsan
    ctest --test-dir build-tsan --output-on-failure \
        -R 'test_(parallel_game|view_cache|game|faults|oracle|obs|service)'
fi

echo "all checks passed"
