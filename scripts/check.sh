#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, smoke-run every
# benchmark binary (short measurement time).  Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
    echo "== $b"
    "$b" --benchmark_min_time=0.01 >/dev/null
done

# Sanitizer pass: rebuild and re-run the whole test suite under
# AddressSanitizer + UBSan (the `asan` preset).  Set LPH_SKIP_SANITIZERS=1
# for a quick iteration loop.
if [[ "${LPH_SKIP_SANITIZERS:-0}" != "1" ]]; then
    cmake --preset asan
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure
fi

echo "all checks passed"
