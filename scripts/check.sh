#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, smoke-run every
# benchmark binary (short measurement time), diff the bench reports against
# the committed baselines.  Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Smoke-run via the dispatcher from build/bench so the BENCH_<name>.json
# reports land there (bench_main fork/execs every sibling bench_* binary).
(cd build/bench && ./bench_main --benchmark_min_time=0.01 >/dev/null)
python3 scripts/bench_diff.py --fresh build/bench

# Traced smoke, after bench_diff so tracing overhead cannot depress the
# speedup rows the diff checks: one fig3 pass and one differential-oracle
# check with span tracing on.  Both exported Chrome traces must lint clean
# (valid JSON, monotone timestamps, balanced begin/end events).
(cd build/bench && ./bench_main --filter fig3 --benchmark_min_time=0.01 \
    --trace=trace_fig3.json --metrics=metrics_fig3.json >/dev/null)
python3 scripts/trace_lint.py build/bench/trace_fig3.json
python3 scripts/trace_summary.py build/bench/trace_fig3.json --top 8
./build/tools/lph_fuzz --check game-par-vs-ref --instances 40 \
    --trace=build/trace_fuzz.json >/dev/null
python3 scripts/trace_lint.py build/trace_fuzz.json

# Serving-layer smoke: a few hundred mixed wire requests (games, logic,
# decisions, oracle checks) through lphd in pipe mode with tracing on.
# lph_client --verify exits nonzero on any protocol error or a missing
# response; the server trace must lint clean like every other export.
./build/tools/lph_client --generate 320 --seed 7 \
    | ./build/tools/lphd --pipe --threads 4 --queue-cap 512 \
        --trace=build/trace_lphd.json \
    | ./build/tools/lph_client --verify --expect 320
python3 scripts/trace_lint.py build/trace_lphd.json

# Incremental-serving smoke: a seeded patch storm (graph_register + chained
# graph_patch re-queries over resident graphs) served with dirty-ball
# recomputation, then the same workload replayed as inline full recomputes.
# Every verdict must match (--against exits nonzero on any mismatch).
# --threads 1 because each patch references the digest echoed by the
# previous response, so FIFO order is part of the protocol.
./build/tools/lph_client --patch 120 --seed 5 \
    | ./build/tools/lphd --pipe --threads 1 > build/patch_replies.jsonl
./build/tools/lph_client --patch-golden 120 --seed 5 \
    | ./build/tools/lphd --pipe --threads 1 > build/patch_golden.jsonl
./build/tools/lph_client --verify --expect 120 \
    --against build/patch_golden.jsonl < build/patch_replies.jsonl

# Crash-resilience smoke: the same workload served twice — once chaos-free in
# pipe mode (the golden answers), once through a supervised two-worker daemon
# under seeded wire-level chaos (worker kills + connection drops) with a
# retrying client.  Chaos may error or sever individual attempts; it must
# never flip a verdict (--against), the client must recover every request
# (abandoned:0), and the supervisor must restart each killed worker.
./build/tools/lph_client --generate 300 --seed 11 > build/chaos_requests.jsonl
./build/tools/lphd --pipe --threads 4 < build/chaos_requests.jsonl \
    > build/chaos_golden.jsonl
rm -rf build/chaos-snap
./build/tools/lphd --port 0 --supervise 2 --snapshot-dir build/chaos-snap \
    --restart-backoff-ms 20 --min-healthy-ms 50 --max-crashes 1000 \
    --chaos-seed 1234 --chaos-kill 0.01 --chaos-drop 0.05 \
    2> build/chaos_lphd.log &
CHAOS_PID=$!
CHAOS_PORT=""
for _ in $(seq 50); do
    CHAOS_PORT=$(sed -n 's/^lphd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        build/chaos_lphd.log)
    [[ -n "$CHAOS_PORT" ]] && break
    sleep 0.1
done
[[ -n "$CHAOS_PORT" ]] || { echo "chaos smoke: lphd never came up"; exit 1; }
./build/tools/lph_client --connect "127.0.0.1:$CHAOS_PORT" --retries 8 \
    < build/chaos_requests.jsonl > build/chaos_replies.jsonl \
    2> build/chaos_client.log
kill -TERM "$CHAOS_PID" && wait "$CHAOS_PID"
./build/tools/lph_client --verify --expect 300 \
    --against build/chaos_golden.jsonl < build/chaos_replies.jsonl
grep -q '"abandoned":0' build/chaos_client.log \
    || { echo "chaos smoke: client abandoned requests"; \
         cat build/chaos_client.log; exit 1; }
grep -q '"chaos_kill":true' build/chaos_lphd.log \
    || { echo "chaos smoke: chaos never killed a worker"; exit 1; }
grep -q '"event":"worker_start".*"generation":2' build/chaos_lphd.log \
    || { echo "chaos smoke: supervisor never restarted a worker"; exit 1; }

# A daemon pointed at an unwritable metrics/trace path must refuse at startup
# with a structured error, not die mid-run after serving traffic.
if ./build/tools/lphd --pipe --metrics=/nonexistent/m.json </dev/null \
    >/dev/null 2> build/unwritable.log; then
    echo "lphd accepted an unwritable --metrics path"; exit 1
fi
grep -q '"event":"output_path_unwritable"' build/unwritable.log

# Sanitizer passes: AddressSanitizer + UBSan over the whole suite (the `asan`
# preset), then ThreadSanitizer over the concurrency-heavy game/cache suites
# (the `tsan` preset).  Set LPH_SKIP_SANITIZERS=1 for a quick iteration loop.
if [[ "${LPH_SKIP_SANITIZERS:-0}" != "1" ]]; then
    cmake --preset asan
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure

    # Differential-oracle smoke: fixed-seed fuzzing of every decision path
    # against the naive reference oracles, plus the planted-bug selftest.
    # Runs under ASan so any divergence comes with a memory-safety check.
    ./build-asan/tools/lph_fuzz --smoke --out build-asan/fuzz-repros

    cmake --preset tsan
    cmake --build build-tsan
    ctest --test-dir build-tsan --output-on-failure \
        -R 'test_(parallel_game|view_cache|game|faults|oracle|obs|service|resilience)'
fi

echo "all checks passed"
