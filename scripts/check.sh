#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, smoke-run every
# benchmark binary (short measurement time), diff the bench reports against
# the committed baselines.  Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Smoke-run from build/bench so the BENCH_<name>.json reports land there.
for b in build/bench/bench_*; do
    [[ -f "$b" && -x "$b" ]] || continue
    echo "== $b"
    (cd build/bench && "./$(basename "$b")" --benchmark_min_time=0.01 >/dev/null)
done
python3 scripts/bench_diff.py --fresh build/bench

# Sanitizer passes: AddressSanitizer + UBSan over the whole suite (the `asan`
# preset), then ThreadSanitizer over the concurrency-heavy game/cache suites
# (the `tsan` preset).  Set LPH_SKIP_SANITIZERS=1 for a quick iteration loop.
if [[ "${LPH_SKIP_SANITIZERS:-0}" != "1" ]]; then
    cmake --preset asan
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure

    # Differential-oracle smoke: fixed-seed fuzzing of every decision path
    # against the naive reference oracles, plus the planted-bug selftest.
    # Runs under ASan so any divergence comes with a memory-safety check.
    ./build-asan/tools/lph_fuzz --smoke --out build-asan/fuzz-repros

    cmake --preset tsan
    cmake --build build-tsan
    ctest --test-dir build-tsan --output-on-failure \
        -R 'test_(parallel_game|view_cache|game|faults|oracle)'
fi

echo "all checks passed"
