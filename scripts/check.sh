#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, smoke-run every
# benchmark binary (short measurement time), diff the bench reports against
# the committed baselines.  Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Smoke-run via the dispatcher from build/bench so the BENCH_<name>.json
# reports land there (bench_main fork/execs every sibling bench_* binary).
(cd build/bench && ./bench_main --benchmark_min_time=0.01 >/dev/null)
python3 scripts/bench_diff.py --fresh build/bench

# Traced smoke, after bench_diff so tracing overhead cannot depress the
# speedup rows the diff checks: one fig3 pass and one differential-oracle
# check with span tracing on.  Both exported Chrome traces must lint clean
# (valid JSON, monotone timestamps, balanced begin/end events).
(cd build/bench && ./bench_main --filter fig3 --benchmark_min_time=0.01 \
    --trace=trace_fig3.json --metrics=metrics_fig3.json >/dev/null)
python3 scripts/trace_lint.py build/bench/trace_fig3.json
python3 scripts/trace_summary.py build/bench/trace_fig3.json --top 8
./build/tools/lph_fuzz --check game-par-vs-ref --instances 40 \
    --trace=build/trace_fuzz.json >/dev/null
python3 scripts/trace_lint.py build/trace_fuzz.json

# Serving-layer smoke: a few hundred mixed wire requests (games, logic,
# decisions, oracle checks) through lphd in pipe mode with tracing on.
# lph_client --verify exits nonzero on any protocol error or a missing
# response; the server trace must lint clean like every other export.
./build/tools/lph_client --generate 320 --seed 7 \
    | ./build/tools/lphd --pipe --threads 4 --queue-cap 512 \
        --trace=build/trace_lphd.json \
    | ./build/tools/lph_client --verify --expect 320
python3 scripts/trace_lint.py build/trace_lphd.json

# Incremental-serving smoke: a seeded patch storm (graph_register + chained
# graph_patch re-queries over resident graphs) served with dirty-ball
# recomputation, then the same workload replayed as inline full recomputes.
# Every verdict must match (--against exits nonzero on any mismatch).
# --threads 1 because each patch references the digest echoed by the
# previous response, so FIFO order is part of the protocol.
./build/tools/lph_client --patch 120 --seed 5 \
    | ./build/tools/lphd --pipe --threads 1 > build/patch_replies.jsonl
./build/tools/lph_client --patch-golden 120 --seed 5 \
    | ./build/tools/lphd --pipe --threads 1 > build/patch_golden.jsonl
./build/tools/lph_client --verify --expect 120 \
    --against build/patch_golden.jsonl < build/patch_replies.jsonl

# Language-frontend + admission-control smoke: the committed cost-model
# calibration must match a fresh fit from the bench baselines, then a storm
# of user-written formulas with one hostile 8-quantifier request mixed in.
# The daemon must price and reject exactly the oversized one (a structured
# AdmissionRejected line, not a protocol error or a hang) and serve the rest.
python3 scripts/cost_calibrate.py --check
BIG_FORMULA='exists a. exists b. exists c. exists d. exists e. exists f. exists g. exists h. (a = b & O1(c))'
{ ./build/tools/lph_client --formula 'exists x. O1(x)' --count 24 --seed 9; \
  ./build/tools/lph_client --formula "$BIG_FORMULA" --count 1; } \
    > build/adm_requests.jsonl
./build/tools/lphd --pipe --threads 2 --admission \
    --metrics build/adm_metrics.json < build/adm_requests.jsonl \
    > build/adm_replies.jsonl
./build/tools/lph_client --verify --expect 25 < build/adm_replies.jsonl
grep -c '"error":"AdmissionRejected"' build/adm_replies.jsonl \
    | grep -qx 1 || { echo "admission smoke: expected exactly 1 rejection"; exit 1; }
python3 - <<'EOF'
import json
metrics = json.load(open("build/adm_metrics.json"))
assert metrics["service.admission.rejected"] == 1, metrics
assert metrics["service.admission.admitted"] == 24, metrics
assert metrics["service.admission.predicted_cost_us.count"] == 25, metrics
print("admission smoke: exactly one oversized formula rejected")
EOF

# Crash-resilience smoke: the same workload served twice — once chaos-free in
# pipe mode (the golden answers), once through a supervised two-worker daemon
# under seeded wire-level chaos (worker kills + connection drops) with a
# retrying client.  Chaos may error or sever individual attempts; it must
# never flip a verdict (--against), the client must recover every request
# (abandoned:0), and the supervisor must restart each killed worker.
./build/tools/lph_client --generate 300 --seed 11 > build/chaos_requests.jsonl
./build/tools/lphd --pipe --threads 4 < build/chaos_requests.jsonl \
    > build/chaos_golden.jsonl
rm -rf build/chaos-snap
./build/tools/lphd --port 0 --supervise 2 --snapshot-dir build/chaos-snap \
    --restart-backoff-ms 20 --min-healthy-ms 50 --max-crashes 1000 \
    --chaos-seed 1234 --chaos-kill 0.01 --chaos-drop 0.05 \
    2> build/chaos_lphd.log &
CHAOS_PID=$!
CHAOS_PORT=""
for _ in $(seq 50); do
    CHAOS_PORT=$(sed -n 's/^lphd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        build/chaos_lphd.log)
    [[ -n "$CHAOS_PORT" ]] && break
    sleep 0.1
done
[[ -n "$CHAOS_PORT" ]] || { echo "chaos smoke: lphd never came up"; exit 1; }
./build/tools/lph_client --connect "127.0.0.1:$CHAOS_PORT" --retries 8 \
    < build/chaos_requests.jsonl > build/chaos_replies.jsonl \
    2> build/chaos_client.log
kill -TERM "$CHAOS_PID" && wait "$CHAOS_PID"
./build/tools/lph_client --verify --expect 300 \
    --against build/chaos_golden.jsonl < build/chaos_replies.jsonl
grep -q '"abandoned":0' build/chaos_client.log \
    || { echo "chaos smoke: client abandoned requests"; \
         cat build/chaos_client.log; exit 1; }
grep -q '"chaos_kill":true' build/chaos_lphd.log \
    || { echo "chaos smoke: chaos never killed a worker"; exit 1; }
grep -q '"event":"worker_start".*"generation":2' build/chaos_lphd.log \
    || { echo "chaos smoke: supervisor never restarted a worker"; exit 1; }

# A daemon pointed at an unwritable metrics/trace path must refuse at startup
# with a structured error, not die mid-run after serving traffic.
if ./build/tools/lphd --pipe --metrics=/nonexistent/m.json </dev/null \
    >/dev/null 2> build/unwritable.log; then
    echo "lphd accepted an unwritable --metrics path"; exit 1
fi
grep -q '"event":"output_path_unwritable"' build/unwritable.log

# Slow-request logging: with a tiny threshold every request crosses it (one
# structured slow_request line each); with a huge threshold none may fire.
./build/tools/lph_client --generate 80 --seed 3 \
    | ./build/tools/lphd --pipe --threads 2 --slow-ms 0.0001 \
        2> build/slow_pos.log >/dev/null
grep -q '"event":"slow_request"' build/slow_pos.log \
    || { echo "slow-ms smoke: no slow_request lines at tiny threshold"; exit 1; }
./build/tools/lph_client --generate 80 --seed 3 \
    | ./build/tools/lphd --pipe --threads 2 --slow-ms 10000 \
        2> build/slow_neg.log >/dev/null
if grep -q '"event":"slow_request"' build/slow_neg.log; then
    echo "slow-ms smoke: slow_request fired under threshold"; exit 1
fi

# Cluster observability smoke: a supervised two-worker daemon under load,
# scraped by lph_top.  The probe-adjusted cluster totals must equal the
# loadgen's request count exactly (histogram merge is bit-exact), tail
# percentiles must be present for the latency and stage histograms, and the
# client's timing summary must report zero stage-sum-exceeds-wall violations.
# Afterwards the per-process traces (worker-0/worker-1/supervisor) merge into
# one lint-clean timeline.
rm -rf build/obs-traces
./build/tools/lph_client --generate 400 --seed 21 > build/obs_requests.jsonl
./build/tools/lphd --port 0 --supervise 2 --trace build/obs-traces \
    2> build/obs_lphd.log &
OBS_PID=$!
OBS_PORT=""
for _ in $(seq 50); do
    OBS_PORT=$(sed -n 's/^lphd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        build/obs_lphd.log)
    [[ -n "$OBS_PORT" ]] && break
    sleep 0.1
done
[[ -n "$OBS_PORT" ]] || { echo "obs smoke: lphd never came up"; exit 1; }
./build/tools/lph_client --connect "127.0.0.1:$OBS_PORT" \
    < build/obs_requests.jsonl > build/obs_replies.jsonl \
    2> build/obs_client.log
./build/tools/lph_client --verify --expect 400 < build/obs_replies.jsonl
./build/tools/lph_top --connect "127.0.0.1:$OBS_PORT" --workers 2 --once \
    --json > build/obs_top.json
python3 - <<'EOF'
import json
top = json.load(open("build/obs_top.json"))
cluster = top["cluster"]
assert cluster["submitted"] == 400, "submitted: %s" % cluster["submitted"]
assert cluster["completed"] == 400, "completed: %s" % cluster["completed"]
hist = cluster["histograms"]
for name in ("service.latency_us", "service.queue_us", "service.batch_us",
             "service.exec_us"):
    assert name in hist, "missing histogram %s" % name
    assert "p99" in hist[name], "missing p99 for %s" % name
merged = hist["service.latency_us"]["count"]
summed = sum(w["latency_count"] for w in top["workers"])
assert merged == summed, "merge %d != per-worker sum %d" % (merged, summed)
print("obs smoke: lph_top cluster totals and percentiles ok")
EOF
grep -q '"timing_violations":0' build/obs_client.log \
    || { echo "obs smoke: server stage sum exceeded client wall"; \
         cat build/obs_client.log; exit 1; }
kill -TERM "$OBS_PID" && wait "$OBS_PID"
python3 scripts/trace_merge.py -o build/obs_merged_trace.json build/obs-traces
python3 scripts/trace_lint.py build/obs_merged_trace.json
python3 scripts/trace_summary.py build/obs_merged_trace.json --json >/dev/null

# Sanitizer passes: AddressSanitizer + UBSan over the whole suite (the `asan`
# preset), then ThreadSanitizer over the concurrency-heavy game/cache suites
# (the `tsan` preset).  Set LPH_SKIP_SANITIZERS=1 for a quick iteration loop.
if [[ "${LPH_SKIP_SANITIZERS:-0}" != "1" ]]; then
    cmake --preset asan
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure

    # Differential-oracle smoke: fixed-seed fuzzing of every decision path
    # against the naive reference oracles, plus the planted-bug selftest.
    # Runs under ASan so any divergence comes with a memory-safety check.
    ./build-asan/tools/lph_fuzz --smoke --out build-asan/fuzz-repros

    cmake --preset tsan
    cmake --build build-tsan
    ctest --test-dir build-tsan --output-on-failure \
        -R 'test_(parallel_game|view_cache|game|faults|oracle|obs|service|resilience|lang|admission)'
fi

echo "all checks passed"
