#!/usr/bin/env python3
"""Stitches Chrome trace-event files from several processes into one timeline.

A supervised `lphd --supervise N --trace DIR` run leaves one trace per
process in DIR: worker-<slot>.trace (each with its real pid) plus
supervisor.trace (worker_start/worker_exit/backoff instants).  Every file's
timestamps count microseconds from that process's own steady-clock epoch,
and the exporter records the wall-clock instant of that epoch in
otherData.epoch_realtime_us.  This script aligns the files by shifting each
one's timestamps by (its epoch - the earliest epoch across all inputs), so
the merged file shows every process on one shared time axis with t=0 at the
earliest process start.

Events keep their original pids, so Perfetto / chrome://tracing renders one
process group per worker (named by the exporter's process_name metadata).

Usage:
    trace_merge.py -o merged.json DIR_OR_FILE [DIR_OR_FILE ...]

A directory argument expands to its *.trace files.  Inputs without an
epoch anchor are aligned as-is (shift 0) with a warning — their relative
placement is meaningless, but the file still loads.  Exit status: 0 on
success, 1 when no input file could be read.
"""

import argparse
import json
import os
import sys


def expand_inputs(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            entries = sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if name.endswith(".trace")
            )
            if not entries:
                print("trace_merge: %s: no *.trace files" % path,
                      file=sys.stderr)
            files.extend(entries)
        else:
            files.append(path)
    return files


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("trace_merge: %s: %s" % (path, e), file=sys.stderr)
        return None
    if not isinstance(doc.get("traceEvents"), list):
        print("trace_merge: %s: no 'traceEvents' list" % path, file=sys.stderr)
        return None
    return doc


def merge(docs_with_paths):
    epochs = []
    for path, doc in docs_with_paths:
        epoch = doc.get("otherData", {}).get("epoch_realtime_us")
        if not isinstance(epoch, (int, float)):
            print(
                "trace_merge: %s: no epoch_realtime_us anchor; "
                "keeping its timestamps unshifted" % path,
                file=sys.stderr,
            )
            epoch = None
        epochs.append(epoch)
    anchored = [e for e in epochs if e is not None]
    base = min(anchored) if anchored else 0

    events = []
    dropped = 0
    for (path, doc), epoch in zip(docs_with_paths, epochs):
        shift = (epoch - base) if epoch is not None else 0
        for ev in doc["traceEvents"]:
            if isinstance(ev, dict) and isinstance(ev.get("ts"), (int, float)):
                ev = dict(ev)
                ev["ts"] = ev["ts"] + shift
            events.append(ev)
        dropped += doc.get("otherData", {}).get("dropped_spans", 0)

    # Stable order helps diffing and keeps trace_lint's per-(pid,tid)
    # monotonicity check meaningful: a constant shift per file preserves each
    # track's internal order, so sorting by (pid, tid, ts) never reorders
    # B/E pairs within a track.  Metadata events (no ts) sort first per pid.
    def key(ev):
        if not isinstance(ev, dict):
            return (0, 0, 0, 1)
        return (
            ev.get("pid", 0),
            ev.get("tid", -1),
            ev.get("ts", -1),
            0 if ev.get("ph") == "M" else 1,
        )

    events.sort(key=key)
    return {
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": {
            "dropped_spans": dropped,
            "merged_from": len(docs_with_paths),
            "epoch_realtime_us": base,
        },
    }


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--out", required=True,
                        help="merged output file")
    parser.add_argument("inputs", nargs="+",
                        help="trace files or directories of *.trace files")
    args = parser.parse_args(argv[1:])

    files = expand_inputs(args.inputs)
    docs = [(p, load(p)) for p in files]
    docs = [(p, d) for p, d in docs if d is not None]
    if not docs:
        print("trace_merge: no readable inputs", file=sys.stderr)
        return 1

    merged = merge(docs)
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f)
        f.write("\n")
    print(
        "trace_merge: %s: %d event(s) from %d file(s)"
        % (args.out, len(merged["traceEvents"]), len(docs))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
